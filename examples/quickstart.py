"""Quickstart: (k, tau) similarity join and search over uncertain strings.

Run:  python examples/quickstart.py
"""

from repro import (
    JoinConfig,
    SimilaritySearcher,
    parse_uncertain,
    similarity_join,
    trie_verify,
)

# ----------------------------------------------------------------------
# 1. Build a small collection. Plain text is a fully certain string; a
#    {(char,prob),...} block is a character-level distribution, exactly
#    the paper's notation.
# ----------------------------------------------------------------------
collection = [
    parse_uncertain("jonathan smith"),
    parse_uncertain("jon{(a,0.7),(o,0.3)}than smith"),     # OCR noise on one char
    parse_uncertain("jonathan sm{(i,0.6),(y,0.4)}th"),
    parse_uncertain("jennifer smith"),
    parse_uncertain("gonathan smidt"),
    parse_uncertain("maria garcia"),
    parse_uncertain("mar{(i,0.5),(y,0.5)}a garcia"),
]

# ----------------------------------------------------------------------
# 2. Join: report pairs (R, S) with Pr(ed(R, S) <= k) > tau.
#    The default config is the paper's full QFCT pipeline: q-gram
#    filtering through inverted segment indexes, frequency-distance
#    filtering, CDF bounds, then trie-based verification.
# ----------------------------------------------------------------------
config = JoinConfig(k=2, tau=0.5, report_probabilities=True)
outcome = similarity_join(collection, config)

print("similar pairs (k=2, tau=0.5):")
for pair in outcome.pairs:
    print(
        f"  #{pair.left_id} ~ #{pair.right_id}   "
        f"Pr(ed <= 2) = {pair.probability:.3f}"
    )

print("\npipeline statistics:")
print(outcome.stats.summary())

# ----------------------------------------------------------------------
# 3. Search: one query against an indexed collection.
# ----------------------------------------------------------------------
searcher = SimilaritySearcher(collection, config)
query = parse_uncertain("jonathon smith")
hits = searcher.search(query)
print(f"\nsearch '{'jonathon smith'}' -> ids {sorted(hits.ids())}")

# ----------------------------------------------------------------------
# 4. Verify one pair exactly (trie-based verification, Section 6.2).
# ----------------------------------------------------------------------
probability = trie_verify(collection[0], collection[1], k=1)
print(f"\nPr(ed(#0, #1) <= 1) = {probability:.4f}")
