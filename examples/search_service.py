"""Similarity search as a service: one index, many queries.

Mirrors a lookup workload (e.g. matching an incoming noisy record against
a master table): the collection is indexed once with
:class:`SimilaritySearcher`, then each query — deterministic or itself
uncertain — is answered through the q-gram index, the cheap filters, and
trie verification.

Run:  python examples/search_service.py
"""

import time

from repro import JoinConfig, SimilaritySearcher, format_uncertain, parse_uncertain
from repro.datasets import dblp_like_collection
from repro.datasets.uncertainty import inject_uncertainty, random_edit
from repro.uncertain.alphabet import LOWERCASE27
from repro.util.rng import ensure_rng

COUNT = 400
K = 2
TAU = 0.1


def main() -> None:
    rng = ensure_rng(23)
    print(f"indexing {COUNT} uncertain author names...")
    collection = dblp_like_collection(COUNT, rng=23)
    config = JoinConfig(k=K, tau=TAU, report_probabilities=True)
    t0 = time.perf_counter()
    searcher = SimilaritySearcher(collection, config)
    print(f"  index built in {time.perf_counter() - t0:.2f}s")

    # Queries: noisy copies of collection members (1-2 edits), some with
    # their own character-level uncertainty.
    base_ids = [rng.randrange(COUNT) for _ in range(5)]
    queries = []
    for string_id in base_ids:
        text = collection[string_id].most_probable_instance()[0]
        for _ in range(rng.randint(1, 2)):
            text = random_edit(text, LOWERCASE27, rng)
        if rng.random() < 0.5:
            queries.append(inject_uncertainty(text, 0.15, 4, LOWERCASE27, rng))
        else:
            queries.append(parse_uncertain(text.replace("{", "").replace("}", "")))

    total = 0.0
    for query, origin in zip(queries, base_ids):
        t0 = time.perf_counter()
        outcome = searcher.search(query)
        elapsed = time.perf_counter() - t0
        total += elapsed
        print(f"\nquery (from #{origin}): {format_uncertain(query, 2)}")
        print(
            f"  {len(outcome.matches)} hits in {elapsed * 1000:.1f} ms "
            f"({outcome.stats.qgram_survivors} index candidates, "
            f"{outcome.stats.verifications} verifications)"
        )
        for match in outcome.matches[:3]:
            marker = "<-- origin" if match.string_id == origin else ""
            print(
                f"    #{match.string_id:<4} Pr={match.probability:.3f} "
                f"{format_uncertain(collection[match.string_id], 2)} {marker}"
            )

    print(f"\ntotal query time: {total * 1000:.1f} ms for {len(queries)} queries")


if __name__ == "__main__":
    main()
