"""Bioinformatics: joining uncertain protein fragments.

Sequencers emit base/residue calls with per-position confidence — exactly
the character-level uncertainty model. This example joins a collection of
protein fragments under the paper's protein-dataset defaults (k=4,
tau=0.01) and then compares the (k, tau) semantics against the
expected-edit-distance (EED) semantics of Jestes et al. on the same data,
showing where the two disagree.

Run:  python examples/protein_join.py
"""

from repro import JoinConfig, similarity_join
from repro.baselines import eed_join
from repro.datasets import protein_like_collection

COUNT = 80
K = 4
TAU = 0.01


def main() -> None:
    print(f"generating {COUNT} uncertain protein fragments (theta=0.1, gamma=5)...")
    collection = protein_like_collection(COUNT, rng=11)

    config = JoinConfig(k=K, tau=TAU, report_probabilities=True)
    print(f"(k, tau)-join with k={K}, tau={TAU}...")
    outcome = similarity_join(collection, config)
    print(
        f"  {len(outcome.pairs)} pairs in {outcome.stats.total_seconds:.2f}s; "
        f"verification ran {outcome.stats.verifications} times "
        f"({outcome.stats.false_candidates} false candidates)"
    )
    for pair in outcome.pairs[:5]:
        print(
            f"    #{pair.left_id} ~ #{pair.right_id}  "
            f"Pr(ed <= {K}) = {pair.probability:.3f}"
        )

    print(f"\nEED join with threshold {K} (Jestes et al. semantics)...")
    eed_outcome = eed_join(collection, float(K))
    print(
        f"  {len(eed_outcome.pairs)} pairs; "
        f"{eed_outcome.exact_evaluations} exact evaluations over "
        f"{eed_outcome.world_pairs_compared} world pairs"
    )

    ktau_pairs = outcome.id_pairs()
    eed_pairs = eed_outcome.id_pairs()
    only_ktau = ktau_pairs - eed_pairs
    only_eed = eed_pairs - ktau_pairs
    print("\nsemantics comparison (Section 1 of the paper):")
    print(f"  both semantics agree on {len(ktau_pairs & eed_pairs)} pairs")
    print(f"  (k,tau)-only pairs: {len(only_ktau)} — high-probability worlds are")
    print("    within k, but far-away worlds inflate the *expected* distance")
    print(f"  EED-only pairs:     {len(only_eed)} — low expected distance without")
    print("    any single world being reliably within k")


if __name__ == "__main__":
    main()
