"""Record linkage across two sources (R-S join).

Two independently curated customer tables hold noisy, uncertain name
fields. A cross-collection (k, tau) join — ``similarity_join_two`` —
links records that probably refer to the same entity, the classic data
integration workload the paper's introduction motivates.

Run:  python examples/record_linkage.py
"""

from repro import JoinConfig, format_uncertain, similarity_join_two
from repro.datasets.names import generate_author_names
from repro.datasets.uncertainty import inject_uncertainty, random_edit
from repro.uncertain.alphabet import LOWERCASE27
from repro.util.rng import ensure_rng

ENTITIES = 120
OVERLAP = 0.6     # fraction of entities present in both sources
K = 2
TAU = 0.1


def main() -> None:
    rng = ensure_rng(41)
    entities = generate_author_names(ENTITIES, rng)

    # Source A sees a subset with light noise; source B sees an
    # overlapping subset with its own noise. Each source injects its own
    # character-level uncertainty (different OCR models, say).
    def noisy(text: str) -> str:
        for _ in range(rng.randint(0, 2)):
            text = random_edit(text, LOWERCASE27, rng)
        return text

    source_a, truth_a = [], []
    source_b, truth_b = [], []
    for entity_id, name in enumerate(entities):
        in_a = rng.random() < 0.8
        in_b = (not in_a) or rng.random() < OVERLAP
        if in_a:
            source_a.append(inject_uncertainty(noisy(name), 0.2, 4, LOWERCASE27, rng))
            truth_a.append(entity_id)
        if in_b:
            source_b.append(inject_uncertainty(noisy(name), 0.2, 4, LOWERCASE27, rng))
            truth_b.append(entity_id)

    print(f"source A: {len(source_a)} records, source B: {len(source_b)} records")
    config = JoinConfig(k=K, tau=TAU, report_probabilities=True)
    outcome = similarity_join_two(source_a, source_b, config)
    print(
        f"join produced {len(outcome.pairs)} links in "
        f"{outcome.stats.total_seconds:.2f}s "
        f"({outcome.stats.verifications} verifications)"
    )

    correct = sum(
        1 for p in outcome.pairs if truth_a[p.left_id] == truth_b[p.right_id]
    )
    truly_shared = len(set(truth_a) & set(truth_b))
    print(f"  correct links:   {correct} / {len(outcome.pairs)} reported")
    print(f"  shared entities: {truly_shared} (recall {correct / truly_shared:.0%})")

    print("\nsample links:")
    for pair in outcome.pairs[:4]:
        tag = "OK " if truth_a[pair.left_id] == truth_b[pair.right_id] else "BAD"
        print(f"  [{tag}] Pr={pair.probability:.3f}")
        print(f"    A#{pair.left_id:<4}{format_uncertain(source_a[pair.left_id], 2)}")
        print(f"    B#{pair.right_id:<4}{format_uncertain(source_b[pair.right_id], 2)}")


if __name__ == "__main__":
    main()
