"""Data cleaning: deduplicate noisy, uncertain author names.

The motivating application of the paper's introduction: a bibliography
holds author names extracted by OCR / heterogeneous sources, so some
characters carry distributions rather than values. A (k, tau) similarity
self-join finds probable duplicates; a union-find over the similar pairs
yields the duplicate clusters.

Run:  python examples/author_dedup.py
"""

from collections import defaultdict

from repro import JoinConfig, format_uncertain, similarity_join, top_k_join
from repro.datasets import dblp_like_collection

COUNT = 250
K = 2
TAU = 0.1


class UnionFind:
    """Minimal disjoint-set for clustering the join output."""

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def main() -> None:
    print(f"generating {COUNT} uncertain author names (theta=0.2, gamma=5)...")
    collection = dblp_like_collection(COUNT, rng=7)

    config = JoinConfig(k=K, tau=TAU, report_probabilities=True)
    print(f"joining with k={K}, tau={TAU} (algorithm {config.algorithm_name})...")
    outcome = similarity_join(collection, config)
    stats = outcome.stats
    print(
        f"  {len(outcome.pairs)} similar pairs in {stats.total_seconds:.2f}s "
        f"(filtering {stats.filtering_seconds:.2f}s, "
        f"verification {stats.verification_seconds:.2f}s)"
    )

    clusters = UnionFind(COUNT)
    for pair in outcome.pairs:
        clusters.union(pair.left_id, pair.right_id)
    groups: dict[int, list[int]] = defaultdict(list)
    for string_id in range(COUNT):
        groups[clusters.find(string_id)].append(string_id)
    duplicate_groups = sorted(
        (members for members in groups.values() if len(members) > 1),
        key=len,
        reverse=True,
    )

    print(f"\n{len(duplicate_groups)} duplicate clusters; largest five:")
    for members in duplicate_groups[:5]:
        print(f"  cluster of {len(members)}:")
        for string_id in members[:4]:
            print(f"    #{string_id:<4} {format_uncertain(collection[string_id], 2)}")
        if len(members) > 4:
            print(f"    ... and {len(members) - 4} more")

    survivors = COUNT - sum(len(m) - 1 for m in duplicate_groups)
    print(f"\ndeduplicated: {COUNT} records -> {survivors} canonical entities")

    # When no tau is known in advance, ask for the N most probable
    # duplicates instead (adaptive-threshold variant of the same pipeline).
    top = top_k_join(collection, k=K, count=5)
    print("\nfive most probable duplicate pairs:")
    for pair in top.pairs:
        print(
            f"  #{pair.left_id} ~ #{pair.right_id}  "
            f"Pr(ed <= {K}) = {pair.probability:.3f}"
        )


if __name__ == "__main__":
    main()
