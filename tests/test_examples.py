"""Smoke tests: the shipped examples must run and produce their output.

Only the fast examples run here (the protein example's EED section takes
minutes and is exercised by the benchmark suite instead).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 180) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "similar pairs" in out
        assert "Pr(ed" in out
        assert "search" in out

    def test_record_linkage(self):
        out = run_example("record_linkage.py")
        assert "join produced" in out
        assert "correct links" in out

    def test_search_service(self):
        out = run_example("search_service.py")
        assert "index built" in out
        assert "total query time" in out

    @pytest.mark.slow
    def test_author_dedup(self):
        out = run_example("author_dedup.py", timeout=300)
        assert "duplicate clusters" in out
        assert "most probable duplicate pairs" in out
