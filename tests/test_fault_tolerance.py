"""Fault-tolerance tests: injection, retries, timeouts, checkpoint/resume.

The acceptance bar mirrors the driver-equivalence fixture: with faults
injected (crash, hang, corrupt — and a real broken process pool), the
banded join must still produce output byte-identical to the serial
driver, with every failure accounted for in the ``fault.*`` counters.
A killed run with at least one checkpointed band must resume from its
run directory to the identical pairs, probabilities, and merged
statistics while skipping the completed bands.
"""

import json
import pickle
import random
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core.config import JoinConfig
from repro.core.errors import (
    CheckpointCorruptError,
    CheckpointMismatchError,
    ConfigurationError,
    WorkerCrashError,
)
from repro.core.executor import CheckpointStore, RetryPolicy, run_bands
from repro.core.join import similarity_join
from repro.core.parallel import (
    parallel_similarity_join,
    parallel_similarity_join_two,
    plan_length_bands,
)
from repro.core.stats import JoinStatistics
from repro.util.faults import FaultPlan, FaultSpec, InjectedCrashError, inject

from tests import equivalence_spec as spec
from tests.helpers import random_collection

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "golden_driver_outputs.json").read_text()
)


def no_sleep(_seconds: float) -> None:
    """Backoff stand-in: the schedule is computed but never waited for."""


def policy(**kwargs) -> RetryPolicy:
    kwargs.setdefault("sleep", no_sleep)
    return RetryPolicy(**kwargs)


# ----------------------------------------------------------------------
# fault plan parsing and injection
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_single_spec_defaults(self):
        plan = FaultPlan.from_spec("crash@2")
        assert plan.specs == (FaultSpec("crash", 2, times=1, seconds=3600.0),)

    def test_parse_full_grammar(self):
        plan = FaultPlan.from_spec("crash@2x3, hang@0/1.5 ,corrupt@1")
        assert plan.specs == (
            FaultSpec("crash", 2, times=3),
            FaultSpec("hang", 0, times=1, seconds=1.5),
            FaultSpec("corrupt", 1),
        )

    def test_empty_and_none_are_falsy(self):
        assert not FaultPlan.from_spec(None)
        assert not FaultPlan.from_spec("   ")
        assert FaultPlan.from_spec("crash@0")

    @pytest.mark.parametrize(
        "bad", ["explode@0", "crash", "crash@-1", "crash@0x0", "hang@0/0"]
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.from_spec(bad)

    def test_matches_covers_attempts_below_times(self):
        fault = FaultSpec("crash", 1, times=2)
        assert fault.matches(1, 0) and fault.matches(1, 1)
        assert not fault.matches(1, 2)
        assert not fault.matches(0, 0)

    def test_fault_for_returns_first_match(self):
        plan = FaultPlan.from_spec("crash@1,hang@1/9")
        assert plan.fault_for(1, 0).kind == "crash"
        assert plan.fault_for(2, 0) is None

    def test_inject_crash_raises_with_coordinates(self):
        with pytest.raises(InjectedCrashError) as excinfo:
            inject(FaultSpec("crash", 3), attempt=1)
        assert excinfo.value.band == 3
        assert excinfo.value.attempt == 1

    def test_injected_crash_pickles(self):
        # The error must survive the pool's result pipe intact.
        error = InjectedCrashError(4, 2)
        clone = pickle.loads(pickle.dumps(error))
        assert (clone.band, clone.attempt) == (4, 2)

    def test_config_validates_fault_spec(self):
        with pytest.raises(ConfigurationError):
            JoinConfig(k=1, tau=0.1, fault_spec="explode@0")
        assert JoinConfig(k=1, tau=0.1, fault_spec="crash@0").fault_spec == "crash@0"

    def test_parse_shard_qualified_spec(self):
        plan = FaultPlan.from_spec("crash@s1:2x3,hang@0/1.5")
        assert plan.specs == (
            FaultSpec("crash", 2, times=3, shard=1),
            FaultSpec("hang", 0, times=1, seconds=1.5),
        )

    @pytest.mark.parametrize("bad", ["crash@s:2", "crash@s-1:2", "crash@sx:2"])
    def test_bad_shard_qualifiers_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.from_spec(bad)

    def test_shard_qualified_spec_never_fires_unnarrowed(self):
        # A qualified spec is inert until a ShardBackend narrows the
        # plan to its shard — band indices alone must not trigger it.
        plan = FaultPlan.from_spec("crash@s1:2")
        assert plan.fault_for(2, 0) is None

    def test_narrowed_keeps_own_shard_and_drops_others(self):
        plan = FaultPlan.from_spec("crash@s1:2x3,corrupt@s0:1,hang@0/1.5")
        mine = plan.narrowed(1)
        assert mine.specs == (
            FaultSpec("crash", 2, times=3),  # qualifier stripped: now live
            FaultSpec("hang", 0, times=1, seconds=1.5),
        )
        assert mine.fault_for(2, 0).kind == "crash"
        other = plan.narrowed(2)
        assert other.specs == (FaultSpec("hang", 0, times=1, seconds=1.5),)

    def test_config_accepts_shard_qualified_spec(self):
        config = JoinConfig(k=1, tau=0.1, fault_spec="crash@s1:2x3")
        assert config.fault_spec == "crash@s1:2x3"


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)

    def test_exponential_delay_schedule(self):
        p = RetryPolicy(backoff=0.1, backoff_factor=2.0)
        assert [p.delay(a) for a in range(3)] == [0.1, 0.2, 0.4]


# ----------------------------------------------------------------------
# run_bands unit tests (toy band task, in-process)
# ----------------------------------------------------------------------

CALLS: list[int] = []


def toy_band_task(payload):
    """Module-level so the pool path could pickle it; records each call."""
    band_index, values = payload
    CALLS.append(band_index)
    return band_index, list(values), JoinStatistics()


def toy_payloads(n=3):
    return [(i, (i, [f"band-{i}"])) for i in range(n)]


@pytest.fixture(autouse=True)
def _clear_calls():
    CALLS.clear()


class TestRunBands:
    def test_clean_run_executes_each_band_once(self):
        stats = JoinStatistics()
        results = run_bands(
            toy_band_task,
            toy_payloads(),
            workers=1,
            use_processes=False,
            stats=stats,
        )
        assert [band for band, _, _ in results] == [0, 1, 2]
        assert [pairs for _, pairs, _ in results] == [
            ["band-0"], ["band-1"], ["band-2"]
        ]
        assert sorted(CALLS) == [0, 1, 2]
        assert stats.fault_counts() == {}

    def test_crash_is_retried_and_counted(self):
        stats = JoinStatistics()
        results = run_bands(
            toy_band_task,
            toy_payloads(),
            workers=1,
            use_processes=False,
            policy=policy(retries=2),
            stats=stats,
            faults=FaultPlan.from_spec("crash@1"),
        )
        assert len(results) == 3
        assert stats.fault_counts() == {"fault.crashed": 1, "fault.retried": 1}
        # The injected crash fires before the task body, so only the
        # successful retry actually executed the band.
        assert CALLS.count(1) == 1

    def test_exhausted_retries_degrade_in_process(self):
        stats = JoinStatistics()
        results = run_bands(
            toy_band_task,
            toy_payloads(),
            workers=1,
            use_processes=False,
            policy=policy(retries=2),
            stats=stats,
            faults=FaultPlan.from_spec("crash@0x3"),  # attempts 0-2 crash
        )
        assert len(results) == 3
        counts = stats.fault_counts()
        assert counts["fault.crashed"] == 3
        assert counts["fault.retried"] == 2
        assert counts["fault.degraded"] == 1

    def test_degraded_failure_is_terminal(self):
        stats = JoinStatistics()
        with pytest.raises(WorkerCrashError) as excinfo:
            run_bands(
                toy_band_task,
                toy_payloads(),
                workers=1,
                use_processes=False,
                policy=policy(retries=1),
                stats=stats,
                faults=FaultPlan.from_spec("crash@2x3"),  # degraded attempt too
            )
        assert excinfo.value.band_index == 2
        assert isinstance(excinfo.value.__cause__, InjectedCrashError)
        assert stats.fault_counts()["fault.degraded"] == 1

    def test_corrupt_result_is_detected_and_retried(self):
        stats = JoinStatistics()
        results = run_bands(
            toy_band_task,
            toy_payloads(),
            workers=1,
            use_processes=False,
            policy=policy(retries=1),
            stats=stats,
            faults=FaultPlan.from_spec("corrupt@0"),
        )
        assert [band for band, _, _ in results] == [0, 1, 2]
        counts = stats.fault_counts()
        assert counts["fault.corrupt"] == 1
        assert counts["fault.retried"] == 1

    def test_hang_hits_deadline_then_degrades(self):
        # Attempts 0 and 1 sleep 5s; the 50ms SIGALRM deadline fires
        # first both times, then the degraded attempt (no deadline, no
        # scheduled fault) completes the band.
        stats = JoinStatistics()
        results = run_bands(
            toy_band_task,
            toy_payloads(1),
            workers=1,
            use_processes=False,
            policy=policy(retries=1, timeout=0.05),
            stats=stats,
            faults=FaultPlan.from_spec("hang@0x2/5"),
        )
        assert [band for band, _, _ in results] == [0]
        counts = stats.fault_counts()
        assert counts["fault.timeout"] == 2
        assert counts["fault.retried"] == 1
        assert counts["fault.degraded"] == 1

    def test_backoff_schedule_is_consulted(self):
        slept: list[float] = []
        stats = JoinStatistics()
        run_bands(
            toy_band_task,
            toy_payloads(1),
            workers=1,
            use_processes=False,
            policy=RetryPolicy(
                retries=2, backoff=0.1, backoff_factor=2.0, sleep=slept.append
            ),
            stats=stats,
            faults=FaultPlan.from_spec("crash@0x3"),
        )
        assert slept == [0.1, 0.2]

    def test_checkpoint_resume_skips_completed_bands(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.open("fp", 3)
        first = run_bands(
            toy_band_task,
            toy_payloads(),
            workers=1,
            use_processes=False,
            checkpoint=store,
        )
        assert len(CALLS) == 3
        CALLS.clear()
        stats = JoinStatistics()
        second = run_bands(
            toy_band_task,
            toy_payloads(),
            workers=1,
            use_processes=False,
            stats=stats,
            checkpoint=store,
        )
        assert CALLS == []  # nothing re-executed
        assert [(b, p) for b, p, _ in second] == [(b, p) for b, p, _ in first]
        assert stats.stage_count("fault", "resumed") == 3


# ----------------------------------------------------------------------
# golden byte-identity under injected faults
# ----------------------------------------------------------------------

FAULT_KEYS = ["QFCT-k1-probs", "QCT-k2-probs", "FCT-k3-probs", "QCT-k2-paper"]


class TestGoldenUnderFaults:
    @pytest.mark.parametrize("key", FAULT_KEYS)
    def test_crash_and_corrupt_do_not_change_output(self, key):
        config = dict(spec.config_grid())[key]
        outcome = parallel_similarity_join(
            spec.self_collection(),
            replace(config, workers=4),
            use_processes=False,
            min_parallel=0,
            policy=policy(retries=2),
            faults=FaultPlan.from_spec("crash@1x2,corrupt@0"),
        )
        assert spec.encode_pairs(outcome.pairs) == GOLDEN[key]["join"]

    def test_fault_counters_surface_in_outcome_stats(self):
        config = dict(spec.config_grid())["QFCT-k1-probs"]
        outcome = parallel_similarity_join(
            spec.self_collection(),
            replace(config, workers=4),
            use_processes=False,
            min_parallel=0,
            policy=policy(retries=2),
            faults=FaultPlan.from_spec("crash@0x3"),
        )
        counts = outcome.stats.fault_counts()
        assert counts["fault.crashed"] == 3
        assert counts["fault.retried"] == 2
        assert counts["fault.degraded"] == 1
        assert "fault.degraded" in outcome.stats.summary()

    def test_two_join_under_faults_equals_serial(self):
        rng = random.Random(41)
        left = random_collection(rng, 14, length_range=(3, 9))
        right = random_collection(rng, 18, length_range=(3, 9))
        base = JoinConfig(k=2, tau=0.1, q=2, report_probabilities=True)
        serial = parallel_similarity_join_two(
            left, right, base, use_processes=False, min_parallel=0
        )
        faulted = parallel_similarity_join_two(
            left,
            right,
            replace(base, workers=3),
            use_processes=False,
            min_parallel=0,
            policy=policy(retries=1),
            faults=FaultPlan.from_spec("crash@0,corrupt@1"),
        )
        assert faulted.pairs == serial.pairs

    def test_fault_spec_via_config_field(self):
        # The config-driven path (CLI --inject-faults) wires through too.
        config = dict(spec.config_grid())["QFCT-k1-probs"]
        outcome = parallel_similarity_join(
            spec.self_collection(),
            replace(config, workers=4, fault_spec="crash@1", retries=1),
            use_processes=False,
            min_parallel=0,
        )
        assert spec.encode_pairs(outcome.pairs) == GOLDEN["QFCT-k1-probs"]["join"]
        assert outcome.stats.stage_count("fault", "crashed") == 1


# ----------------------------------------------------------------------
# the real process pool: broken pools, crashes crossing the pipe
# ----------------------------------------------------------------------


class TestProcessPoolFaults:
    def test_broken_pool_degrades_without_duplicates(self):
        # abort kills the worker with os._exit -> BrokenProcessPool. All
        # dispatched attempts of band 0 die (x3 covers attempts 0-2), so
        # the band must finish via the in-process degraded attempt. The
        # regression this pins: pairs from bands completed before the
        # pool broke are kept, not re-emitted, so the merged list has no
        # duplicates and equals the serial driver's exactly.
        rng = random.Random(99)
        collection = random_collection(rng, 30, length_range=(3, 10))
        serial = similarity_join(collection, JoinConfig(k=2, tau=0.1, q=2))
        outcome = parallel_similarity_join(
            collection,
            JoinConfig(k=2, tau=0.1, q=2, workers=4),
            min_parallel=0,
            policy=policy(retries=2),
            faults=FaultPlan.from_spec("abort@0x3"),
        )
        assert outcome.pairs == serial.pairs
        ids = [(pair.left_id, pair.right_id) for pair in outcome.pairs]
        assert len(ids) == len(set(ids))
        counts = outcome.stats.fault_counts()
        assert counts.get("fault.degraded", 0) >= 1

    def test_worker_crash_error_crosses_the_pipe(self):
        # A crash inside a pool worker arrives in the parent as the
        # original InjectedCrashError (custom __reduce__), is retried,
        # and the join still matches the serial output.
        rng = random.Random(98)
        collection = random_collection(rng, 30, length_range=(3, 10))
        serial = similarity_join(collection, JoinConfig(k=1, tau=0.1, q=2))
        outcome = parallel_similarity_join(
            collection,
            JoinConfig(k=1, tau=0.1, q=2, workers=2),
            min_parallel=0,
            policy=policy(retries=2),
            faults=FaultPlan.from_spec("crash@1"),
        )
        assert outcome.pairs == serial.pairs
        counts = outcome.stats.fault_counts()
        assert counts.get("fault.crashed", 0) == 1
        assert counts.get("fault.retried", 0) == 1


# ----------------------------------------------------------------------
# checkpoint/resume
# ----------------------------------------------------------------------


def banded(collection, config, run_dir=None, faults=None, retries=0):
    return parallel_similarity_join(
        collection,
        config,
        use_processes=False,
        min_parallel=0,
        policy=policy(retries=retries),
        faults=faults,
        run_dir=None if run_dir is None else str(run_dir),
    )


class TestCheckpointResume:
    @pytest.fixture
    def collection(self):
        return random_collection(random.Random(55), 20, length_range=(3, 10))

    @pytest.fixture
    def config(self):
        return JoinConfig(
            k=2, tau=0.1, q=2, report_probabilities=True, workers=3
        )

    def test_interrupted_join_resumes_byte_identical(
        self, collection, config, tmp_path
    ):
        bands = plan_length_bands(
            [len(s) for s in collection], config.workers, config.k
        )
        assert len(bands) >= 2
        last = bands[-1].index
        uninterrupted = banded(collection, config)

        # First run: the last band fails every attempt including the
        # degraded one — the join dies, earlier bands are checkpointed.
        with pytest.raises(WorkerCrashError):
            banded(
                collection,
                config,
                run_dir=tmp_path,
                faults=FaultPlan.from_spec(f"crash@{last}x2"),
            )
        store = CheckpointStore(tmp_path)
        completed = store.completed_bands()
        assert completed == [band.index for band in bands[:-1]]

        # Second run, faults gone: resumes, byte-identical output.
        resumed = banded(collection, config, run_dir=tmp_path)
        assert resumed.pairs == uninterrupted.pairs
        assert [p.probability for p in resumed.pairs] == [
            p.probability for p in uninterrupted.pairs
        ]
        assert resumed.stats.stage_count("fault", "resumed") == len(completed)
        # Merged pipeline counters equal the uninterrupted run's: the
        # checkpoints carry band statistics, not just pairs.
        for name in JoinStatistics.MERGE_COUNTERS:
            assert getattr(resumed.stats, name) == getattr(
                uninterrupted.stats, name
            ), name

    def test_completed_run_resumes_every_band(
        self, collection, config, tmp_path
    ):
        first = banded(collection, config, run_dir=tmp_path)
        bands = plan_length_bands(
            [len(s) for s in collection], config.workers, config.k
        )
        again = banded(collection, config, run_dir=tmp_path)
        assert again.pairs == first.pairs
        assert again.stats.stage_count("fault", "resumed") == len(bands)

    def test_checkpointing_forces_banded_path_for_tiny_input(self, tmp_path):
        # Below min_parallel the driver normally takes the serial fast
        # path; with a run directory it must still band and checkpoint.
        collection = random_collection(random.Random(5), 6, length_range=(4, 7))
        config = JoinConfig(k=1, tau=0.1, q=2, workers=2)
        outcome = parallel_similarity_join(
            collection, config, use_processes=False, run_dir=str(tmp_path)
        )
        serial = similarity_join(collection, JoinConfig(k=1, tau=0.1, q=2))
        assert outcome.pairs == serial.pairs
        assert CheckpointStore(tmp_path).completed_bands() != []

    def test_resume_with_different_tau_rejected(
        self, collection, config, tmp_path
    ):
        banded(collection, config, run_dir=tmp_path)
        with pytest.raises(CheckpointMismatchError):
            banded(collection, replace(config, tau=0.2), run_dir=tmp_path)

    def test_resume_with_different_workers_rejected(
        self, collection, config, tmp_path
    ):
        # A different worker count yields a different band plan; silently
        # mixing plans would corrupt ownership, so it must fail loudly.
        banded(collection, config, run_dir=tmp_path)
        with pytest.raises(CheckpointMismatchError):
            banded(collection, replace(config, workers=2), run_dir=tmp_path)

    def test_truncated_band_checkpoint_detected(
        self, collection, config, tmp_path
    ):
        banded(collection, config, run_dir=tmp_path)
        store = CheckpointStore(tmp_path)
        victim = store.band_path(store.completed_bands()[0])
        victim.write_bytes(victim.read_bytes()[:10])
        with pytest.raises(CheckpointCorruptError) as excinfo:
            banded(collection, config, run_dir=tmp_path)
        assert str(victim) in str(excinfo.value)

    def test_corrupt_manifest_detected(self, collection, config, tmp_path):
        banded(collection, config, run_dir=tmp_path)
        (tmp_path / "run.json").write_text("{ half a manifest")
        with pytest.raises(CheckpointCorruptError):
            banded(collection, config, run_dir=tmp_path)

    def test_foreign_manifest_detected(self, collection, config, tmp_path):
        (tmp_path / "run.json").write_text(json.dumps({"magic": "other"}))
        with pytest.raises(CheckpointCorruptError):
            banded(collection, config, run_dir=tmp_path)

    def test_checkpoint_writes_are_atomic(self, collection, config, tmp_path):
        # No .tmp residue may survive a completed run: every write went
        # through the tmp-file + rename protocol.
        banded(collection, config, run_dir=tmp_path)
        assert list(tmp_path.glob("*.tmp")) == []
