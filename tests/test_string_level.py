"""Tests for the string-level uncertainty model and conversions."""

import pytest

from repro.distance.eed import expected_edit_distance as eed_char
from repro.distance.probability import edit_similarity_probability
from repro.uncertain.parser import parse_uncertain
from repro.uncertain.string_level import (
    StringLevelUncertain,
    expected_edit_distance,
    from_character_level,
    similarity_probability,
    to_character_level,
)


class TestConstruction:
    def test_instances_sorted_by_probability(self):
        s = StringLevelUncertain([("abc", 0.2), ("abd", 0.8)])
        assert s.instances[0] == ("abd", 0.8)

    def test_duplicates_merged(self):
        s = StringLevelUncertain([("abc", 0.5), ("abc", 0.5)])
        assert len(s) == 1
        assert s.probability("abc") == pytest.approx(1.0)

    def test_mixed_lengths_allowed(self):
        s = StringLevelUncertain([("ab", 0.5), ("abcd", 0.5)])
        assert s.lengths() == {2, 4}
        assert s.expected_length() == pytest.approx(3.0)

    def test_certain(self):
        s = StringLevelUncertain.certain("xyz")
        assert s.probability("xyz") == 1.0

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            StringLevelUncertain([("a", 0.5)])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            StringLevelUncertain([("a", 1.5), ("b", -0.5)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="instances"):
            StringLevelUncertain([])

    def test_sample_is_instance(self):
        s = StringLevelUncertain([("ab", 0.5), ("cd", 0.5)])
        assert s.sample(rng=1) in {"ab", "cd"}


class TestConversions:
    def test_character_to_string_level_exact(self):
        char = parse_uncertain("A{(C,0.6),(G,0.4)}T")
        converted = from_character_level(char)
        assert converted.probability("ACT") == pytest.approx(0.6)
        assert converted.probability("AGT") == pytest.approx(0.4)

    def test_round_trip_through_string_level(self):
        char = parse_uncertain("{(A,0.7),(C,0.3)}G{(T,0.5),(A,0.5)}")
        back = to_character_level(from_character_level(char))
        for world, prob in from_character_level(char):
            assert back.instance_probability(world) == pytest.approx(prob)

    def test_mixed_length_conversion_rejected(self):
        s = StringLevelUncertain([("ab", 0.5), ("abc", 0.5)])
        with pytest.raises(ValueError, match="mixed-length"):
            to_character_level(s)

    def test_correlated_instances_rejected_when_strict(self):
        # Pr(AA)=Pr(BB)=0.5 is not a product of marginals.
        s = StringLevelUncertain([("AA", 0.5), ("BB", 0.5)])
        with pytest.raises(ValueError, match="marginals"):
            to_character_level(s)
        approx = to_character_level(s, strict=False)
        assert approx.instance_probability("AB") == pytest.approx(0.25)


class TestSemantics:
    def test_similarity_probability_matches_character_level(self):
        left = parse_uncertain("A{(C,0.6),(G,0.4)}TA")
        right = parse_uncertain("{(A,0.7),(T,0.3)}CTA")
        for k in (0, 1, 2):
            expected = edit_similarity_probability(left, right, k)
            got = similarity_probability(
                from_character_level(left), from_character_level(right), k
            )
            assert got == pytest.approx(expected, abs=1e-9)

    def test_similarity_with_length_variation(self):
        # Only the string-level model can express deletion uncertainty.
        left = StringLevelUncertain([("abc", 0.5), ("abcd", 0.5)])
        right = StringLevelUncertain.certain("abcd")
        assert similarity_probability(left, right, 0) == pytest.approx(0.5)
        assert similarity_probability(left, right, 1) == pytest.approx(1.0)

    def test_eed_matches_character_level(self):
        left = parse_uncertain("A{(C,0.6),(G,0.4)}T")
        right = parse_uncertain("AC{(T,0.8),(G,0.2)}")
        expected = eed_char(left, right)
        got = expected_edit_distance(
            from_character_level(left), from_character_level(right)
        )
        assert got == pytest.approx(expected, abs=1e-9)

    def test_rejects_negative_k(self):
        s = StringLevelUncertain.certain("a")
        with pytest.raises(ValueError):
            similarity_probability(s, s, -1)
