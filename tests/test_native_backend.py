"""Native (compiled C) backend parity + optionality tests (ISSUE 10).

The ``native`` backend must be **bit-for-bit** identical to the pinned
pure-python reference: same bound tuples from the scalar and batch
kernels under hypothesis sweeps and knife-edge constructions, the same
byte-identical golden driver output across the full config grid, and
identical pipeline counters through the engine. Alongside the parity
sweeps, this module pins the satellite work that rode with the
backend: the availability-enumerating ``resolve_backend`` errors and
the dynamic ``REPRO_NATIVE_DISABLE`` escape hatch.

Everything except the native-marked tests must pass when the extension
was never built — the backend is optional by contract.
"""

import json
import pickle
import random
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backends import (
    BACKEND_NAMES,
    NativeBackend,
    available_backends,
    backend_availability,
    resolve_backend,
)
from repro.core.config import ConfigurationError, JoinConfig
from repro.core.context import StringFeatures
from repro.core.join import similarity_join
from repro.distance.edit import edit_distance_banded
from repro.filters import _native, batch_numpy
from repro.filters.cdf import cdf_bounds, cdf_bounds_batch
from repro.filters.frequency import (
    FrequencyProfile,
    frequency_bounds,
    frequency_bounds_batch,
)
from repro.uncertain.position import UncertainPosition
from repro.uncertain.string import UncertainString

from tests import equivalence_spec as spec
from tests.helpers import random_collection, random_uncertain, uncertain_strings

HAS_NATIVE = _native.native_available()
HAS_NUMPY = batch_numpy.numpy_available()
needs_native = pytest.mark.skipif(
    HAS_NATIVE is False, reason="native extension not built"
)

#: Every backend that can run in this interpreter; parity tests sweep
#: all of them so any pairwise disagreement is caught in one place.
ALL_BACKENDS = available_backends()


def _hexify(bounds):
    """Bounds tuples with every float as its hex string — bitwise compare."""
    lower, upper = bounds
    return (
        tuple(value.hex() for value in lower),
        tuple(value.hex() for value in upper),
    )


# ----------------------------------------------------------------------
# kernel parity: native vs. the pure-python reference
# ----------------------------------------------------------------------


@needs_native
@settings(max_examples=60, deadline=None)
@given(
    left=uncertain_strings(max_length=7),
    right=uncertain_strings(max_length=7),
    k=st.integers(min_value=0, max_value=3),
)
def test_cdf_scalar_bitwise_parity(left, right, k):
    assert _hexify(_native.cdf_bounds_native(left, right, k)) == _hexify(
        cdf_bounds(left, right, k)
    )


@needs_native
@settings(max_examples=60, deadline=None)
@given(
    left=uncertain_strings(max_length=7),
    right=uncertain_strings(max_length=7),
    k=st.integers(min_value=0, max_value=3),
)
def test_frequency_scalar_bitwise_parity(left, right, k):
    left_profile = FrequencyProfile(left)
    right_profile = FrequencyProfile(right)
    reference = frequency_bounds(left_profile, right_profile, k)
    native = _native.frequency_bounds_native(left_profile, right_profile, k)
    assert native[0] == reference[0]
    if reference[1] is None:
        assert native[1] is None
    else:
        assert native[1].hex() == reference[1].hex()


@needs_native
def test_dense_random_sweep_parity():
    """Denser deterministic sweep than hypothesis reaches per run."""
    rng = random.Random(20260808)
    for _ in range(200):
        k = rng.randint(0, 4)
        left = random_uncertain(
            rng, rng.randint(0, 9), theta=rng.choice((0.0, 0.4, 1.0))
        )
        block = [
            random_uncertain(
                rng, rng.randint(0, 9), theta=rng.choice((0.0, 0.4, 0.8))
            )
            for _ in range(rng.randint(1, 5))
        ]
        assert [
            _hexify(b) for b in _native.cdf_bounds_batch_native(left, block, k)
        ] == [_hexify(b) for b in cdf_bounds_batch(left, block, k)]
        left_profile = FrequencyProfile(left)
        profiles = [FrequencyProfile(right) for right in block]
        native_rows = _native.frequency_bounds_batch_native(
            left_profile, profiles, k
        )
        reference_rows = frequency_bounds_batch(left_profile, profiles, k)
        assert [(fd, up.hex()) for fd, up in native_rows] == [
            (fd, up.hex()) for fd, up in reference_rows
        ]


@needs_native
def test_edit_banded_parity():
    rng = random.Random(77)
    for _ in range(300):
        k = rng.randint(0, 5)
        left = "".join(rng.choice("ACGT") for _ in range(rng.randint(0, 12)))
        right = "".join(rng.choice("ACGT") for _ in range(rng.randint(0, 12)))
        assert _native.edit_banded_native(left, right, k) == (
            edit_distance_banded(left, right, k)
        )


@needs_native
def test_native_kernels_reject_negative_k():
    left = random_uncertain(random.Random(1), 4)
    with pytest.raises(ValueError):
        _native.cdf_bounds_native(left, left, -1)
    profile = FrequencyProfile(left)
    with pytest.raises(ValueError):
        _native.frequency_bounds_native(profile, profile, -1)
    with pytest.raises(ValueError):
        _native.edit_banded_native("A", "A", -1)


# ----------------------------------------------------------------------
# knife-edge parity across ALL available backends (satellite 3)
# ----------------------------------------------------------------------


def _knife_edge_pairs():
    """Constructions that sit exactly on the kernels' branch points."""
    half = UncertainPosition({"A": 0.5, "C": 0.5})
    tiny = UncertainPosition({"A": 5e-324, "C": 1.0 - 5e-324})
    subnormal = UncertainPosition({"G": 1e-300, "T": 1.0})
    pairs = []
    # Agreement probability exactly 1.0 (identical single-world slices
    # inside otherwise-uncertain strings) and exactly 0.0 (disjoint
    # supports) — the DP's two fast paths.
    pairs.append(
        (
            UncertainString([half, UncertainPosition.certain("A"), half]),
            UncertainString([half, UncertainPosition.certain("A"), half]),
        )
    )
    pairs.append(
        (
            UncertainString.from_mixed(["AA", {"C": 0.5, "G": 0.5}]),
            UncertainString.from_mixed(["TT", {"T": 0.5, "A": 0.5}]),
        )
    )
    # Subnormal / minimum-denormal per-world masses: products underflow
    # gradually and the two implementations must round identically.
    pairs.append(
        (
            UncertainString([tiny, subnormal, tiny]),
            UncertainString([subnormal, tiny, subnormal]),
        )
    )
    pairs.append(
        (
            UncertainString([tiny, tiny, tiny, tiny]),
            UncertainString.from_text("ACAC"),
        )
    )
    # Max-band-width strings: |n - m| == k exactly, so the DP's band
    # guards and the final-cell offset are exercised at their limits.
    pairs.append(
        (
            UncertainString.from_mixed(["ACGTAC", {"A": 0.5, "T": 0.5}]),
            UncertainString.from_mixed([{"A": 0.5, "T": 0.5}, "CGT"]),
        )
    )
    pairs.append(
        (
            UncertainString.from_text("ACGTACGT"),
            UncertainString([half] * 5),
        )
    )
    return pairs


@pytest.mark.parametrize("k", [0, 1, 2, 3])
def test_knife_edge_bounds_agree_across_backends(k):
    backends = [resolve_backend(name) for name in ALL_BACKENDS]
    for left, right in _knife_edge_pairs():
        reference = None
        left_profile = FrequencyProfile(left)
        right_profile = FrequencyProfile(right)
        for backend in backends:
            got = (
                _hexify(backend.cdf_bounds(left, right, k)),
                [
                    _hexify(b)
                    for b in backend.cdf_bounds_batch(left, [right, left], k)
                ],
                backend.frequency_bounds(left_profile, right_profile, k),
                [
                    (fd, up.hex())
                    for fd, up in backend.frequency_bounds_batch(
                        left_profile, [right_profile, left_profile], k
                    )
                ],
            )
            if reference is None:
                reference = got
            else:
                assert got == reference, (backend.name, left, right, k)


def test_tau_boundary_decisions_agree_across_backends():
    """τ set to an exactly-attained bound value: every backend must make
    the identical accept/reject/undecided call on the knife edge, and the
    engine's per-stage counters must match across backends."""
    collection = random_collection(
        random.Random(31), 40, length_range=(3, 9), theta=0.4
    )
    # Harvest exact bound values to use as τ knife edges.
    uppers = set()
    lowers = set()
    for i, left in enumerate(collection[:10]):
        for right in collection[i + 1 : i + 6]:
            lower, upper = cdf_bounds(left, right, 2)
            if 0.0 < upper[2] < 1.0:
                uppers.add(upper[2])
            if 0.0 < lower[2] < 1.0:
                lowers.add(lower[2])
    taus = sorted(uppers)[:2] + sorted(lowers)[:2]
    assert taus, "workload produced no fractional bounds"
    fields = (
        "length_eligible_pairs",
        "frequency_checked",
        "cdf_checked",
        "cdf_accepted",
        "cdf_rejected",
        "cdf_undecided",
        "verifications",
        "verification_hits",
        "false_candidates",
        "result_pairs",
    )
    for tau in taus:
        config = JoinConfig.for_algorithm(
            "QFCT", k=2, tau=tau, q=2, report_probabilities=True
        )
        outcomes = {
            name: similarity_join(collection, replace(config, backend=name))
            for name in ALL_BACKENDS
        }
        reference = outcomes["python"]
        for name, outcome in outcomes.items():
            assert spec.encode_pairs(outcome.pairs) == spec.encode_pairs(
                reference.pairs
            ), (name, tau)
            for field in fields:
                assert getattr(outcome.stats, field) == getattr(
                    reference.stats, field
                ), (name, tau, field)
            assert dict(outcome.stats.stage_counters) == dict(
                reference.stats.stage_counters
            ), (name, tau)


# ----------------------------------------------------------------------
# engine-level parity: golden fixture grid under backend="native"
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def golden_outputs():
    return json.loads(
        (Path(__file__).parent / "data" / "golden_driver_outputs.json").read_text()
    )


@needs_native
@pytest.mark.parametrize(
    "key,config", list(spec.config_grid()), ids=[k for k, _ in spec.config_grid()]
)
def test_native_backend_reproduces_golden_join(key, config, golden_outputs):
    collection = spec.self_collection()
    outcome = similarity_join(collection, replace(config, backend="native"))
    assert spec.encode_pairs(outcome.pairs) == golden_outputs[key]["join"]


@needs_native
@pytest.mark.parametrize("workers", [4])
def test_native_backend_parallel_golden_join(workers, golden_outputs):
    """Banded parallel driver under native: the marshalled packs must
    survive worker publication (fork or pickle) byte-identically."""
    collection = spec.self_collection()
    checked = 0
    for key, config in spec.config_grid():
        outcome = similarity_join(
            collection, replace(config, backend="native", workers=workers)
        )
        assert spec.encode_pairs(outcome.pairs) == golden_outputs[key]["join"], key
        checked += 1
    assert checked == len(list(spec.config_grid()))


@needs_native
def test_native_packs_pickle_roundtrip():
    """Spawn-mode worker publication pickles features with their packs:
    the rebuilt pack must re-derive fresh buffer addresses and produce
    identical bounds."""
    rng = random.Random(5)
    left = random_uncertain(rng, 7, theta=0.5)
    right = random_uncertain(rng, 6, theta=0.5)
    features = StringFeatures(left)
    before = _native.cdf_bounds_native(left, right, 2, left_features=features)
    assert features._native_pack is not None
    thawed = pickle.loads(pickle.dumps(features))
    assert thawed._native_pack is not None
    assert thawed._native_pack.args != features._native_pack.args
    after = _native.cdf_bounds_native(
        left, right, 2, left_features=thawed
    )
    assert _hexify(before) == _hexify(after)
    profile = FrequencyProfile(left)
    bounds = _native.frequency_bounds_native(profile, FrequencyProfile(right), 2)
    thawed_profile = pickle.loads(pickle.dumps(profile))
    rebuilt = _native.frequency_bounds_native(
        thawed_profile, FrequencyProfile(right), 2
    )
    assert bounds == rebuilt


# ----------------------------------------------------------------------
# backend selection / optionality (satellite 1)
# ----------------------------------------------------------------------


def test_backend_availability_attributes_every_backend():
    availability = backend_availability()
    assert set(availability) == set(BACKEND_NAMES)
    assert availability["python"] is None
    for name in BACKEND_NAMES:
        reason = availability[name]
        assert reason is None or isinstance(reason, str)
        assert (reason is None) == (name in available_backends())


@needs_native
def test_native_backend_resolves_when_available():
    backend = resolve_backend("native")
    assert isinstance(backend, NativeBackend)
    assert backend.supports_batch
    assert "native" in available_backends()


def test_native_disable_env_is_dynamic(monkeypatch):
    monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
    assert not _native.native_available()
    assert "REPRO_NATIVE_DISABLE" in _native.native_unavailable_reason()
    assert "native" not in available_backends()
    with pytest.raises(ConfigurationError) as excinfo:
        resolve_backend("native")
    message = str(excinfo.value)
    assert "REPRO_NATIVE_DISABLE" in message
    assert "python" in message
    # The config stays constructible — resolution is where it fails.
    config = JoinConfig.for_algorithm("QFCT", k=1, tau=0.1, backend="native")
    with pytest.raises(ConfigurationError):
        similarity_join(random_collection(random.Random(3), 6), config)
    monkeypatch.delenv("REPRO_NATIVE_DISABLE")
    reason = _native.native_unavailable_reason()
    assert reason is None or "REPRO_NATIVE_DISABLE" not in reason


def test_resolve_backend_errors_enumerate_availability(monkeypatch):
    """Unknown and unavailable backends both name what IS usable here
    and why the missing ones are missing."""
    with pytest.raises(ConfigurationError) as excinfo:
        resolve_backend("cupy")
    message = str(excinfo.value)
    assert "python" in message
    for name in BACKEND_NAMES:
        assert name in message

    monkeypatch.setattr(batch_numpy, "_np", None)

    class _NoImports:
        @staticmethod
        def import_module(name):
            raise ImportError(f"No module named {name!r}")

    monkeypatch.setattr(batch_numpy, "importlib", _NoImports)
    with pytest.raises(ConfigurationError) as excinfo:
        resolve_backend("numpy")
    message = str(excinfo.value)
    assert "numpy is not installed" in message
    assert "python" in message


def test_cli_accepts_native_backend_choice(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["join", "--help"])
    assert "native" in capsys.readouterr().out
