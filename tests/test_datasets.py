"""Tests for the synthetic dataset generators and uncertainty injection."""

import random

import pytest

from repro.core.errors import ConfigurationError, DatasetRecordError
from repro.datasets.loader import (
    LoadReport,
    iter_collection,
    load_collection,
    save_collection,
)
from repro.datasets.names import LENGTH_RANGE as NAME_RANGE, generate_author_names
from repro.datasets.presets import dblp_like_collection, protein_like_collection
from repro.datasets.protein import (
    AMINO_ACID_FREQUENCIES,
    LENGTH_RANGE as PROTEIN_RANGE,
    generate_protein_strings,
)
from repro.datasets.uncertainty import inject_uncertainty, make_uncertain_collection
from repro.uncertain.alphabet import LOWERCASE27, PROTEIN22
from repro.uncertain.parser import format_uncertain


class TestNameGenerator:
    def test_lengths_within_paper_range(self):
        names = generate_author_names(200, rng=0)
        lo, hi = NAME_RANGE
        assert all(lo <= len(name) <= hi + 4 for name in names)

    def test_alphabet_is_lowercase27(self):
        for name in generate_author_names(100, rng=1):
            LOWERCASE27.validate_text(name)

    def test_deterministic_with_seed(self):
        assert generate_author_names(10, rng=5) == generate_author_names(10, rng=5)

    def test_mean_length_near_paper_value(self):
        names = generate_author_names(500, rng=2)
        mean = sum(len(n) for n in names) / len(names)
        assert 15 <= mean <= 24  # paper reports ~19


class TestProteinGenerator:
    def test_lengths_uniform_range(self):
        strings = generate_protein_strings(200, rng=0)
        lo, hi = PROTEIN_RANGE
        assert all(lo <= len(s) <= hi for s in strings)

    def test_alphabet(self):
        for s in generate_protein_strings(50, rng=1):
            PROTEIN22.validate_text(s)

    def test_composition_roughly_matches(self):
        text = "".join(generate_protein_strings(400, rng=3))
        leucine = text.count("L") / len(text)
        assert 0.06 <= leucine <= 0.14  # target 0.10


class TestInjection:
    def test_theta_controls_uncertain_fraction(self):
        rng = random.Random(0)
        text = generate_author_names(1, rng=rng)[0]
        s = inject_uncertainty(text, theta=0.3, gamma=5, alphabet=LOWERCASE27, rng=rng)
        expected = -(-0.3 * len(text) // 1)  # ceil
        assert len(s.uncertain_indices) == int(expected)

    def test_theta_zero_is_deterministic(self):
        s = inject_uncertainty("hello world", 0.0, 5, LOWERCASE27, rng=1)
        assert s.is_certain

    def test_original_character_stays_in_support(self):
        rng = random.Random(4)
        text = "protein string sample"
        s = inject_uncertainty(text, 0.5, 5, LOWERCASE27, rng=rng)
        for i, ch in enumerate(text):
            assert s[i].probability(ch) > 0.0

    def test_original_character_is_modal(self):
        rng = random.Random(5)
        text = "some author name here"
        s = inject_uncertainty(text, 0.4, 5, LOWERCASE27, rng=rng)
        modal_hits = sum(
            1 for i, ch in enumerate(text) if i in s.uncertain_indices and s[i].top == ch
        )
        assert modal_hits >= len(s.uncertain_indices) * 0.7

    def test_gamma_close_to_target(self):
        rng = random.Random(6)
        strings = generate_author_names(30, rng=rng)
        collection = make_uncertain_collection(
            strings, theta=0.3, gamma=5, alphabet=LOWERCASE27, rng=rng
        )
        gammas = [s.gamma for s in collection if s.uncertain_indices]
        mean_gamma = sum(gammas) / len(gammas)
        assert 3.0 <= mean_gamma <= 6.0

    def test_max_uncertain_positions_cap(self):
        rng = random.Random(7)
        strings = generate_author_names(20, rng=rng)
        collection = make_uncertain_collection(
            strings, 0.5, 5, LOWERCASE27, rng=rng, max_uncertain_positions=8
        )
        assert all(len(s.uncertain_indices) <= 8 for s in collection)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            inject_uncertainty("abc", -0.1, 5, LOWERCASE27)
        with pytest.raises(ValueError):
            inject_uncertainty("abc", 0.2, 1, LOWERCASE27)


class TestPresets:
    def test_dblp_like_defaults(self):
        collection = dblp_like_collection(20, rng=0)
        assert len(collection) == 20
        assert any(not s.is_certain for s in collection)

    def test_protein_like_defaults(self):
        collection = protein_like_collection(20, rng=0)
        assert len(collection) == 20
        lo, hi = PROTEIN_RANGE
        assert all(lo <= len(s) <= hi for s in collection)


class TestLoader:
    def test_round_trip(self, tmp_path):
        collection = dblp_like_collection(10, rng=3)
        path = tmp_path / "collection.txt"
        save_collection(collection, path)
        loaded = load_collection(path)
        assert len(loaded) == len(collection)
        for original, again in zip(collection, loaded):
            assert len(original) == len(again)
            for pos_a, pos_b in zip(original, again):
                assert pos_a.chars == pos_b.chars
                for char in pos_a.chars:
                    assert pos_a.probability(char) == pytest.approx(
                        pos_b.probability(char), abs=1e-6
                    )

    def test_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# header\n\nACGT\n")
        loaded = load_collection(path)
        assert len(loaded) == 1


@pytest.fixture
def mixed_file(tmp_path):
    # Records 2 and 4 are malformed (unterminated block, probability
    # leak); 1, 3, and 5 parse.
    path = tmp_path / "mixed.txt"
    path.write_text(
        "ACGT\n"
        "A{(C,0.5)\n"
        "A{(C,0.5),(G,0.5)}T\n"
        "A{(C,0.9),(G,0.9)}\n"
        "GGTA\n"
    )
    return path


class TestLoaderOnError:
    def test_raise_is_the_default_and_aborts_on_first(self, mixed_file):
        with pytest.raises(DatasetRecordError) as excinfo:
            load_collection(mixed_file)
        assert excinfo.value.record == 2

    def test_skip_drops_bad_records(self, mixed_file):
        loaded = load_collection(mixed_file, on_error="skip")
        assert len(loaded) == 3

    def test_collect_returns_strings_and_errors(self, mixed_file):
        report = load_collection(mixed_file, on_error="collect")
        assert isinstance(report, LoadReport)
        assert len(report) == 3
        assert [error.record for error in report.errors] == [2, 4]
        for error in report.errors:
            assert error.path == str(mixed_file)
            assert isinstance(error.column, int)

    def test_collect_on_clean_file_has_no_errors(self, tmp_path):
        path = tmp_path / "clean.txt"
        save_collection(dblp_like_collection(5, rng=1), path)
        report = load_collection(path, on_error="collect")
        assert len(report) == 5
        assert report.errors == []

    def test_unknown_mode_rejected(self, mixed_file):
        with pytest.raises(ConfigurationError):
            load_collection(mixed_file, on_error="ignore")


class TestIterCollectionParity:
    """The streaming path must agree with the list path record-for-record."""

    @staticmethod
    def canonical(strings):
        return [format_uncertain(s, precision=17) for s in strings]

    def test_clean_file_matches_load(self, tmp_path):
        path = tmp_path / "clean.txt"
        save_collection(dblp_like_collection(12, rng=9), path)
        assert self.canonical(iter_collection(path)) == self.canonical(
            load_collection(path)
        )

    def test_raise_mode_matches_load(self, mixed_file):
        with pytest.raises(DatasetRecordError) as excinfo:
            list(iter_collection(mixed_file))
        assert excinfo.value.record == 2

    def test_skip_mode_matches_load(self, mixed_file):
        assert self.canonical(
            iter_collection(mixed_file, on_error="skip")
        ) == self.canonical(load_collection(mixed_file, on_error="skip"))

    def test_collect_mode_matches_load_report(self, mixed_file):
        report = load_collection(mixed_file, on_error="collect")
        errors = []
        strings = list(
            iter_collection(mixed_file, on_error="collect", errors=errors)
        )
        assert self.canonical(strings) == self.canonical(report.strings)
        assert [
            (e.path, e.record, e.column) for e in errors
        ] == [(e.path, e.record, e.column) for e in report.errors]

    def test_unknown_mode_rejected(self, mixed_file):
        with pytest.raises(ConfigurationError):
            list(iter_collection(mixed_file, on_error="ignore"))

    def test_is_lazy(self, mixed_file):
        # The generator must not touch the file until iterated: record 2
        # is malformed, so an eager parse would raise at call time.
        iterator = iter_collection(mixed_file)
        assert next(iterator) is not None
