"""Tests for the instance trie."""

import pytest

from repro.uncertain.parser import parse_uncertain
from repro.uncertain.string import UncertainString
from repro.uncertain.worlds import enumerate_worlds
from repro.verify.trie import build_trie


class TestBuildTrie:
    def test_deterministic_string_is_a_path(self):
        trie = build_trie(UncertainString.from_text("ACGT"))
        assert trie.node_count == 5  # root + 4
        leaves = list(trie.leaves())
        assert leaves[0][0] == "ACGT"
        assert leaves[0][1].prob == pytest.approx(1.0)

    def test_leaves_enumerate_worlds(self):
        s = parse_uncertain("A{(C,0.6),(G,0.4)}T{(A,0.9),(C,0.1)}")
        trie = build_trie(s)
        from_trie = {text: node.prob for text, node in trie.leaves()}
        from_worlds = dict(enumerate_worlds(s))
        assert set(from_trie) == set(from_worlds)
        for text, prob in from_worlds.items():
            assert from_trie[text] == pytest.approx(prob)

    def test_prefix_probabilities_are_marginals(self):
        s = parse_uncertain("{(A,0.7),(C,0.3)}{(G,0.5),(T,0.5)}")
        trie = build_trie(s)
        a_child = trie.root.children["A"]
        assert a_child.prob == pytest.approx(0.7)
        assert a_child.children["G"].prob == pytest.approx(0.35)

    def test_node_count_accounts_shared_prefixes(self):
        s = parse_uncertain("A{(C,0.5),(G,0.5)}{(A,0.5),(T,0.5)}")
        trie = build_trie(s)
        # root + 1 + 2 + 4
        assert trie.node_count == 8

    def test_depths(self):
        s = parse_uncertain("A{(C,0.5),(G,0.5)}")
        trie = build_trie(s)
        assert trie.root.depth == 0
        assert trie.root.children["A"].depth == 1
        assert trie.length == 2
