"""Backend parity + regression tests for the batch-kernel PR.

The ``numpy`` backend must be **bit-for-bit** identical to the pinned
pure-python reference: same bound tuples from the batch kernels under a
hypothesis sweep, byte-identical golden driver output, and identical
pipeline counters through the engine. Alongside the parity sweep, this
module pins the satellite bugfixes that rode with the backend work:
the bounded CDF memo caches, the deterministic retry jitter, and the
bench regression gate's handling of unbaselined/skipped kernels.

Everything except the numpy-marked tests must pass with numpy
uninstalled — the backend is optional by contract.
"""

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backends import (
    BACKEND_NAMES,
    NumpyBackend,
    PythonBackend,
    available_backends,
    resolve_backend,
)
from repro.core.config import ConfigurationError, JoinConfig
from repro.core.executor import RetryPolicy
from repro.core.join import similarity_join
from repro.filters import batch_numpy
from repro.filters.cdf import (
    _BOUNDARY_CACHE,
    _BOUNDARY_CACHE_MAX,
    _ZERO_CACHE,
    _ZERO_CACHE_MAX,
    _boundary_cell,
    _zero_cell,
    cdf_bounds_batch,
    clear_cdf_caches,
)
from repro.filters.frequency import FrequencyProfile, frequency_bounds_batch
from repro.report import bench

from tests import equivalence_spec as spec
from tests.helpers import random_collection, random_uncertain, uncertain_strings

HAS_NUMPY = batch_numpy.numpy_available()
needs_numpy = pytest.mark.skipif(HAS_NUMPY is False, reason="numpy not installed")


# ----------------------------------------------------------------------
# batch kernel parity: numpy vs. the pure-python reference
# ----------------------------------------------------------------------


@needs_numpy
@settings(max_examples=60, deadline=None)
@given(
    left=uncertain_strings(max_length=7),
    rights=st.lists(uncertain_strings(max_length=7), min_size=1, max_size=5),
    k=st.integers(min_value=0, max_value=3),
)
def test_cdf_batch_bitwise_parity(left, rights, k):
    assert batch_numpy.cdf_bounds_batch_numpy(left, rights, k) == cdf_bounds_batch(
        left, rights, k
    )


@needs_numpy
@settings(max_examples=60, deadline=None)
@given(
    left=uncertain_strings(max_length=7),
    rights=st.lists(uncertain_strings(max_length=7), min_size=1, max_size=5),
    k=st.integers(min_value=0, max_value=3),
)
def test_frequency_batch_bitwise_parity(left, rights, k):
    left_profile = FrequencyProfile(left)
    right_profiles = [FrequencyProfile(r) for r in rights]
    assert batch_numpy.frequency_bounds_batch_numpy(
        left_profile, right_profiles, k
    ) == frequency_bounds_batch(left_profile, right_profiles, k)


@needs_numpy
def test_random_sweep_parity_mixed_blocks():
    """Denser deterministic sweep than hypothesis reaches per run."""
    rng = random.Random(4242)
    for _ in range(120):
        k = rng.randint(0, 3)
        left = random_uncertain(rng, rng.randint(1, 9), theta=rng.choice((0.0, 0.4)))
        block = [
            random_uncertain(rng, rng.randint(1, 9), theta=rng.choice((0.0, 0.4, 0.8)))
            for _ in range(rng.randint(1, 6))
        ]
        assert batch_numpy.cdf_bounds_batch_numpy(
            left, block, k
        ) == cdf_bounds_batch(left, block, k)
        lp = FrequencyProfile(left)
        rps = [FrequencyProfile(r) for r in block]
        assert batch_numpy.frequency_bounds_batch_numpy(
            lp, rps, k
        ) == frequency_bounds_batch(lp, rps, k)


@needs_numpy
def test_cdf_batch_rejects_negative_k():
    left = random_uncertain(random.Random(1), 4)
    with pytest.raises(ValueError):
        batch_numpy.cdf_bounds_batch_numpy(left, [left], -1)


# ----------------------------------------------------------------------
# engine-level parity: golden fixture + identical counters
# ----------------------------------------------------------------------


@needs_numpy
@pytest.mark.parametrize(
    "key,config", list(spec.config_grid()), ids=[k for k, _ in spec.config_grid()]
)
def test_numpy_backend_reproduces_golden_join(key, config, golden_outputs):
    collection = spec.self_collection()
    outcome = similarity_join(collection, replace(config, backend="numpy"))
    assert spec.encode_pairs(outcome.pairs) == golden_outputs[key]["join"]


@pytest.fixture(scope="module")
def golden_outputs():
    import json
    from pathlib import Path

    return json.loads(
        (Path(__file__).parent / "data" / "golden_driver_outputs.json").read_text()
    )


@needs_numpy
@pytest.mark.parametrize("algorithm", ["QFCT", "FCT"])
def test_backends_agree_on_statistics(algorithm):
    """Same pairs AND the same filter counters — the batched path must
    route every candidate through the same stage decisions."""
    collection = random_collection(
        random.Random(9), 60, length_range=(4, 10), theta=0.3
    )
    config = JoinConfig.for_algorithm(
        algorithm, k=2, tau=0.1, q=2, report_probabilities=True
    )
    python_outcome = similarity_join(collection, replace(config, backend="python"))
    numpy_outcome = similarity_join(collection, replace(config, backend="numpy"))
    assert spec.encode_pairs(python_outcome.pairs) == spec.encode_pairs(
        numpy_outcome.pairs
    )
    fields = (
        "length_eligible_pairs",
        "frequency_checked",
        "cdf_checked",
        "cdf_accepted",
        "cdf_rejected",
        "cdf_undecided",
        "verifications",
        "verification_hits",
        "false_candidates",
        "result_pairs",
    )
    for field in fields:
        assert getattr(python_outcome.stats, field) == getattr(
            numpy_outcome.stats, field
        ), field
    assert dict(python_outcome.stats.stage_counters) == dict(
        numpy_outcome.stats.stage_counters
    )


# ----------------------------------------------------------------------
# backend selection / optionality
# ----------------------------------------------------------------------


def test_backend_names_and_resolution():
    assert set(BACKEND_NAMES) == {"python", "numpy", "native"}
    assert isinstance(resolve_backend("python"), PythonBackend)
    assert not resolve_backend("python").supports_batch
    with pytest.raises(ConfigurationError):
        resolve_backend("cupy")


def test_config_rejects_unknown_backend():
    with pytest.raises(ConfigurationError):
        JoinConfig.for_algorithm("QFCT", k=1, tau=0.1, backend="fortran")


@needs_numpy
def test_numpy_backend_resolves_when_available():
    backend = resolve_backend("numpy")
    assert isinstance(backend, NumpyBackend)
    assert backend.supports_batch
    assert "numpy" in available_backends()


def test_numpy_backend_unavailable_is_a_config_error(monkeypatch):
    """Without numpy the join must keep working on the default backend,
    and asking for numpy must fail with a clear configuration error —
    not an ImportError from deep inside a filter stage."""
    monkeypatch.setattr(batch_numpy, "_np", None)

    def refuse(name):
        raise ImportError(f"No module named {name!r}")

    monkeypatch.setattr(batch_numpy.importlib, "import_module", refuse)
    assert not batch_numpy.numpy_available()
    assert "python" in available_backends()
    assert "numpy" not in available_backends()
    with pytest.raises(ConfigurationError):
        resolve_backend("numpy")
    # The python path is untouched by the missing dependency.
    collection = random_collection(random.Random(3), 20)
    config = JoinConfig.for_algorithm("QFCT", k=1, tau=0.1, backend="python")
    outcome = similarity_join(collection, config)
    assert outcome.stats.result_pairs == len(outcome.pairs)


# ----------------------------------------------------------------------
# satellite: bounded CDF memo caches
# ----------------------------------------------------------------------


def test_boundary_cache_is_bounded():
    clear_cdf_caches()
    try:
        for distance in range(_BOUNDARY_CACHE_MAX + 300):
            _boundary_cell(distance, 2)
        assert len(_BOUNDARY_CACHE) == _BOUNDARY_CACHE_MAX
        for k in range(_ZERO_CACHE_MAX + 20):
            _zero_cell(k)
        assert len(_ZERO_CACHE) == _ZERO_CACHE_MAX
    finally:
        clear_cdf_caches()


def test_boundary_cache_eviction_is_lru():
    clear_cdf_caches()
    try:
        first = _boundary_cell(0, 1)
        for distance in range(1, _BOUNDARY_CACHE_MAX):
            _boundary_cell(distance, 1)
        # Touch the oldest entry, then overflow: the second-oldest is
        # the one evicted, the touched entry survives.
        assert _boundary_cell(0, 1) is first
        _boundary_cell(_BOUNDARY_CACHE_MAX, 1)
        assert (0, 1) in _BOUNDARY_CACHE
        assert (1, 1) not in _BOUNDARY_CACHE
    finally:
        clear_cdf_caches()


# ----------------------------------------------------------------------
# satellite: deterministic retry jitter
# ----------------------------------------------------------------------


def test_retry_default_timing_is_unchanged():
    policy = RetryPolicy(backoff=0.05, backoff_factor=2.0)
    assert policy.delay(0) == 0.05
    assert policy.delay(1) == 0.05 * 2.0
    assert policy.delay(3, band_index=7) == 0.05 * 2.0**3


def test_retry_jitter_is_deterministic_and_desynchronizes_bands():
    policy = RetryPolicy(backoff=0.05, jitter=0.5, jitter_seed=11)
    again = RetryPolicy(backoff=0.05, jitter=0.5, jitter_seed=11)
    assert policy.delay(1, band_index=3) == again.delay(1, band_index=3)
    delays = {policy.delay(1, band_index=band) for band in range(8)}
    assert len(delays) == 8  # no two bands back off in lockstep
    base = RetryPolicy(backoff=0.05).delay(1)
    for value in delays:
        assert base <= value <= base * 1.5
    reseeded = RetryPolicy(backoff=0.05, jitter=0.5, jitter_seed=12)
    assert reseeded.delay(1, band_index=3) != policy.delay(1, band_index=3)


def test_retry_jitter_fraction_range_and_validation():
    policy = RetryPolicy(jitter=1.0)
    for band in range(4):
        for attempt in range(4):
            assert 0.0 <= policy.jitter_fraction(band, attempt) < 1.0
    with pytest.raises(ConfigurationError):
        RetryPolicy(jitter=-0.1)


# ----------------------------------------------------------------------
# satellite: bench regression gate vs. unbaselined / skipped kernels
# ----------------------------------------------------------------------


def _doc(kernels=(), joins=(), skipped=()):
    return {
        "kernels": {name: {"ns_per_op": ns} for name, ns in kernels},
        "join": {name: {"pairs_per_sec": pps} for name, pps in joins},
        "skipped_kernels": list(skipped),
    }


def test_gate_fails_on_unbaselined_kernel():
    baseline = _doc(kernels=[("cdf_filter", 100.0)])
    current = _doc(kernels=[("cdf_filter", 100.0), ("new_kernel", 5.0)])
    failures = bench.check_regressions(current, baseline)
    assert any("new_kernel" in f and "no baseline" in f for f in failures)
    assert bench.check_regressions(current, baseline, allow_new_kernels=True) == []
    assert bench.unbaselined_entries(current, baseline) == ["kernel new_kernel"]


def test_gate_fails_on_unbaselined_join():
    baseline = _doc(joins=[("workers1", 1000.0)])
    current = _doc(joins=[("workers1", 1000.0), ("workers8", 900.0)])
    failures = bench.check_regressions(current, baseline)
    assert any("workers8" in f for f in failures)


def test_gate_tolerates_skipped_optional_kernels():
    baseline = _doc(
        kernels=[("cdf_batch_numpy", 50.0), ("cdf_filter", 100.0)]
    )
    current = _doc(
        kernels=[("cdf_filter", 100.0)], skipped=["cdf_batch_numpy"]
    )
    assert bench.check_regressions(current, baseline) == []
    # ... but a non-skipped disappearance still fails.
    gone = _doc(kernels=[("cdf_filter", 100.0)])
    failures = bench.check_regressions(gone, baseline)
    assert any("cdf_batch_numpy" in f and "missing" in f for f in failures)


def test_gate_still_catches_slowdowns():
    baseline = _doc(kernels=[("cdf_filter", 100.0)], joins=[("workers1", 1000.0)])
    current = _doc(kernels=[("cdf_filter", 500.0)], joins=[("workers1", 100.0)])
    failures = bench.check_regressions(current, baseline, tolerance=2.0)
    assert len(failures) == 2


def test_backend_speedup_pairs_ratio():
    kernels = {
        "frequency_batch_python": {"ns_per_op": 300.0},
        "frequency_batch_numpy": {"ns_per_op": 100.0},
        "cdf_dp_uncertain": {"ns_per_op": 800.0},
        "cdf_dp_uncertain_native": {"ns_per_op": 100.0},
    }
    assert bench.backend_speedups(kernels) == {
        "frequency_filter:numpy": 3.0,
        "cdf_dp_uncertain:native": 8.0,
    }


def test_gate_fails_when_native_is_slower_than_python():
    # Baseline-free invariant: a built native backend must not lose to
    # the interpreter on the CDF kernels.
    current = _doc(
        kernels=[("cdf_dp_uncertain", 100.0), ("cdf_dp_uncertain_native", 150.0)]
    )
    baseline = _doc(
        kernels=[("cdf_dp_uncertain", 100.0), ("cdf_dp_uncertain_native", 150.0)]
    )
    failures = bench.check_regressions(current, baseline)
    assert any(
        "cdf_dp_uncertain_native" in f and "slower than the python" in f
        for f in failures
    )
    faster = _doc(
        kernels=[("cdf_dp_uncertain", 100.0), ("cdf_dp_uncertain_native", 20.0)]
    )
    assert bench.check_regressions(faster, faster) == []


def test_gate_tolerates_skipped_optional_joins():
    baseline = _doc(joins=[("workers1", 1000.0), ("workers1_native", 3000.0)])
    current = _doc(joins=[("workers1", 1000.0)])
    current["skipped_joins"] = ["workers1_native"]
    assert bench.check_regressions(current, baseline) == []
    # ... but an unexplained disappearance still fails.
    gone = _doc(joins=[("workers1", 1000.0)])
    failures = bench.check_regressions(gone, baseline)
    assert any("workers1_native" in f and "missing" in f for f in failures)
