"""Serve-layer tests: parity, degradation ladder, admission, HTTP faults.

The acceptance bar for ``repro-join serve``: every *completed* answer
is byte-identical (through the wire encoding) to the offline drivers,
every non-completed request surfaces as an explicit typed error —
shed (503), deadline-expired (504 with partial results), injected
drop/corrupt/crash — and the server always drains cleanly. Requests
never hang and never leak across the admission limits.
"""

import http.client
import json
import threading

import pytest

from repro.core.config import JoinConfig
from repro.core.deadline import Deadline
from repro.core.errors import ConfigurationError, ServiceOverloadedError
from repro.core.join import similarity_join
from repro.core.search import SimilaritySearcher
from repro.datasets.presets import dblp_like_collection
from repro.serve.admission import AdmissionController
from repro.serve.http import ServerRunner
from repro.serve.loadgen import percentile, run_load
from repro.serve.protocol import (
    ERROR_STATUS,
    encode_document,
    error_document,
    parse_request,
)
from repro.serve.service import JoinService, ServeOptions
from repro.uncertain.parser import format_uncertain, parse_uncertain


@pytest.fixture(scope="module")
def collection():
    return dblp_like_collection(36, theta=0.2, rng=11, max_uncertain_positions=4)


@pytest.fixture(scope="module")
def config():
    return JoinConfig.for_algorithm(
        "QFCT", k=2, tau=0.1, q=3, report_probabilities=True
    )


@pytest.fixture()
def service(collection, config):
    return JoinService(collection, config, ServeOptions())


def texts(collection, n=6):
    # precision=12: the parser's probability-sum tolerance is 1e-6, so
    # the default 6-significant-digit rendering can fail to re-parse.
    return [format_uncertain(s, precision=12) for s in collection[:n]]


class TestSearchParity:
    def test_search_matches_offline_searcher(self, service, collection, config):
        searcher = SimilaritySearcher(collection, config)
        for text in texts(collection):
            document = service.search(text)
            assert document["degraded"] is False
            offline = sorted(
                (m.string_id, m.probability)
                for m in searcher.search(parse_uncertain(text)).matches
            )
            served = sorted(
                (m["id"], m["probability"]) for m in document["matches"]
            )
            assert served == offline
            assert document["count"] == len(offline)

    def test_wire_encoding_is_deterministic(self, service, collection):
        text = texts(collection)[0]
        assert encode_document(service.search(text)) == encode_document(
            service.search(text)
        )

    def test_per_request_tau_tightens_the_answer(self, service, collection):
        text = texts(collection)[0]
        base = service.search(text)
        tight = service.search(text, tau=0.9)
        assert tight["tau"] == 0.9
        assert tight["count"] <= base["count"]
        base_ids = {m["id"] for m in base["matches"]}
        assert {m["id"] for m in tight["matches"]} <= base_ids

    def test_per_request_k_uses_variant_algorithm(
        self, service, collection, config
    ):
        text = texts(collection)[0]
        document = service.search(text, k=1)
        assert document["k"] == 1
        # The segment index is built for the native k, so a k=1 request
        # drops the q-gram filter: FCT instead of QFCT.
        assert document["algorithm"] == "FCT"
        offline_config = JoinConfig.for_algorithm(
            "FCT", k=1, tau=config.tau, report_probabilities=True
        )
        searcher = SimilaritySearcher(
            list(collection), offline_config
        )
        offline = sorted(
            (m.string_id, m.probability)
            for m in searcher.search(parse_uncertain(text)).matches
        )
        assert sorted(
            (m["id"], m["probability"]) for m in document["matches"]
        ) == offline

    def test_bad_query_is_a_typed_bad_request(self, service):
        document = service.search("not a valid uncertain string {")
        assert document["error"]["type"] == "bad_request"

    def test_bad_tau_is_a_typed_bad_request(self, service, collection):
        document = service.search(texts(collection)[0], tau=1.5)
        assert document["error"]["type"] == "bad_request"


class TestTopk:
    def test_topk_is_sorted_and_bounded(self, service, collection):
        text = texts(collection)[0]
        document = service.topk(text, 5)
        assert document["requested"] == 5
        assert len(document["matches"]) <= 5
        probabilities = [m["probability"] for m in document["matches"]]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_topk_head_agrees_with_search(self, service, collection):
        text = texts(collection)[0]
        search = service.search(text, tau=1e-9)
        topk = service.topk(text, 3)
        best_by_search = sorted(
            ((m["probability"], m["id"]) for m in search["matches"]),
            reverse=True,
        )[: len(topk["matches"])]
        best_by_topk = [
            (m["probability"], m["id"]) for m in topk["matches"]
        ]
        assert best_by_topk == best_by_search

    def test_topk_count_must_be_positive(self, service, collection):
        document = service.topk(texts(collection)[0], 0)
        assert document["error"]["type"] == "bad_request"


class TestMiniJoin:
    def test_mini_join_matches_offline_join(self, service, collection, config):
        payload = texts(collection, 8)
        document = service.mini_join(payload)
        offline = similarity_join(
            [parse_uncertain(t) for t in payload], config
        )
        expected = sorted(
            (p.left_id, p.right_id, p.probability) for p in offline.pairs
        )
        served = [
            (p["left"], p["right"], p["probability"])
            for p in document["pairs"]
        ]
        assert served == expected
        assert document["degraded"] is False


class TestDegradation:
    def test_degraded_search_is_flagged_and_deterministic(
        self, collection, config, monkeypatch
    ):
        # Force "under pressure" from the first candidate: the real
        # trigger is a clock race, so the deterministic way to exercise
        # tier 1 is to make every deadline report pressure.
        monkeypatch.setattr(
            Deadline, "under_pressure", lambda self, margin: margin > 0
        )
        options = ServeOptions(degrade_margin=0.5)
        service = JoinService(collection, config, options)
        text = texts(collection)[0]
        first = service.search(text, timeout=60.0)
        second = service.search(text, timeout=60.0)
        assert first["degraded"] is True
        assert first == second  # sha256-derived per-pair seeds
        assert all(m["probability"] is None for m in first["matches"])
        assert service.stats.serve_counts()["serve.degraded"] >= 2

    def test_degraded_topk_ranks_by_estimate(
        self, collection, config, monkeypatch
    ):
        monkeypatch.setattr(
            Deadline, "under_pressure", lambda self, margin: margin > 0
        )
        options = ServeOptions(degrade_margin=0.5)
        service = JoinService(collection, config, options)
        document = service.topk(texts(collection)[0], 3, timeout=60.0)
        assert document["degraded"] is True
        probabilities = [m["probability"] for m in document["matches"]]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_expired_deadline_is_a_typed_504_with_partials(
        self, service, collection
    ):
        document = service.search(texts(collection)[0], timeout=1e-6)
        error = document["error"]
        assert error["type"] == "deadline_exceeded"
        assert error["partial"] is True
        assert isinstance(error["matches"], list)
        assert ERROR_STATUS["deadline_exceeded"] == 504


class TestAdmission:
    def test_validates_limits(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(max_in_flight=0)
        with pytest.raises(ConfigurationError):
            AdmissionController(queue_limit=-1)

    def test_sheds_when_saturated(self):
        admission = AdmissionController(
            max_in_flight=1, queue_limit=0, queue_timeout=0.05
        )
        with admission.admit():
            assert admission.in_flight == 1
            with pytest.raises(ServiceOverloadedError):
                with admission.admit():
                    pass  # pragma: no cover
        assert admission.in_flight == 0
        assert admission.shed == 1

    def test_queue_timeout_sheds_waiters(self):
        admission = AdmissionController(
            max_in_flight=1, queue_limit=4, queue_timeout=0.05
        )
        with admission.admit():
            with pytest.raises(ServiceOverloadedError):
                with admission.admit():
                    pass  # pragma: no cover
        assert admission.shed == 1

    def test_drained_waits_for_in_flight(self):
        admission = AdmissionController(max_in_flight=2)
        ticket = admission.admit()
        ticket.__enter__()
        release = threading.Timer(0.05, ticket.__exit__, args=(None,) * 3)
        release.start()
        assert admission.drained(Deadline(5.0))
        release.join()

    def test_drained_times_out(self):
        admission = AdmissionController(max_in_flight=2)
        with admission.admit():
            assert not admission.drained(Deadline(0.05))


class TestProtocol:
    def test_error_document_requires_known_type(self):
        with pytest.raises(ValueError):
            error_document("no_such_type", "boom")

    def test_parse_request_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            parse_request("search", b'{"query": "a", "bogus": 1}')

    def test_parse_request_rejects_bad_json(self):
        with pytest.raises(ConfigurationError):
            parse_request("search", b"{nope")

    def test_parse_request_type_checks_fields(self):
        with pytest.raises(ConfigurationError):
            parse_request("search", b'{"query": 7}')
        with pytest.raises(ConfigurationError):
            parse_request("topk", b'{"query": "a", "count": true}')
        with pytest.raises(ConfigurationError):
            parse_request("mini-join", b'{"strings": []}')

    def test_status_map_is_closed_and_sane(self):
        assert ERROR_STATUS["overloaded"] == 503
        assert ERROR_STATUS["bad_request"] == 400
        assert ERROR_STATUS["internal_error"] == 500


def _post(host, port, path, payload, timeout=30.0):
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request(
            "POST", path, body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, response.read(), dict(response.getheaders())
    finally:
        connection.close()


def _get(host, port, path, timeout=10.0):
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


class TestHTTP:
    def test_http_search_is_byte_identical_to_direct_call(
        self, service, collection
    ):
        text = texts(collection)[0]
        expected = encode_document(service.search(text))
        runner = ServerRunner(service).start()
        try:
            host, port = runner.address
            status, body, _ = _post(host, port, "/search", {"query": text})
            assert status == 200
            assert body == expected
        finally:
            assert runner.shutdown()

    def test_http_error_taxonomy(self, service, collection):
        runner = ServerRunner(service).start()
        try:
            host, port = runner.address
            status, body, _ = _post(host, port, "/nope", {"query": "x"})
            assert status == 404
            status, body, _ = _post(host, port, "/search", {"bogus": 1})
            assert status == 400
            assert json.loads(body)["error"]["type"] == "bad_request"
            connection = http.client.HTTPConnection(host, port, timeout=10.0)
            connection.request(
                "POST", "/search", body=b"{nope",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            response.read()
            connection.close()
        finally:
            assert runner.shutdown()

    def test_http_sheds_with_retry_after_when_saturated(
        self, collection, config
    ):
        options = ServeOptions(
            max_in_flight=1, queue_limit=0, queue_timeout=0.05,
            retry_after=0.75,
        )
        service = JoinService(collection, config, options)
        runner = ServerRunner(service).start()
        try:
            host, port = runner.address
            # Hold the only slot directly, then issue a real request.
            with runner.httpd.admission.admit():
                status, body, headers = _post(
                    host, port, "/search",
                    {"query": texts(collection)[0]},
                )
            assert status == 503
            assert json.loads(body)["error"]["type"] == "overloaded"
            assert headers.get("Retry-After") == "0.75"
            assert service.stats.serve_counts()["serve.shed"] == 1
        finally:
            assert runner.shutdown()

    def test_http_request_faults(self, collection, config):
        options = ServeOptions(
            fault_spec="drop@0,corrupt-resp@1,crash@2"
        )
        service = JoinService(collection, config, options)
        text = texts(collection)[0]
        expected = encode_document(service.search(text))
        runner = ServerRunner(service).start()
        try:
            host, port = runner.address
            with pytest.raises(
                (http.client.HTTPException, ConnectionError, OSError)
            ):
                _post(host, port, "/search", {"query": text})
            status, body, _ = _post(host, port, "/search", {"query": text})
            assert status == 200 and body != expected
            with pytest.raises((json.JSONDecodeError, UnicodeDecodeError)):
                json.loads(body)
            status, body, _ = _post(host, port, "/search", {"query": text})
            assert status == 500
            assert json.loads(body)["error"]["type"] == "internal_error"
            # Faulted indices consumed; the next request is clean.
            status, body, _ = _post(host, port, "/search", {"query": text})
            assert status == 200 and body == expected
        finally:
            assert runner.shutdown()

    def test_health_endpoints(self, service):
        runner = ServerRunner(service).start()
        try:
            host, port = runner.address
            assert _get(host, port, "/healthz")[0] == 200
            status, body = _get(host, port, "/readyz")
            assert status == 200 and json.loads(body)["status"] == "ready"
            service.draining = True
            status, body = _get(host, port, "/readyz")
            assert status == 503
            assert json.loads(body)["error"]["type"] == "draining"
            service.draining = False
            status, body = _get(host, port, "/stats")
            document = json.loads(body)
            assert document["admission"]["in_flight"] == 0
            assert "serve" in document["counters"]
        finally:
            assert runner.shutdown()

    def test_concurrent_hammer_accounts_for_every_request(
        self, collection, config
    ):
        service = JoinService(collection, config, ServeOptions())
        document = run_load(
            service, texts(collection), clients=4, requests=16,
            topk_every=4, topk_count=3,
        )
        assert document["completed"] == 16
        assert document["dropped"] == 0
        assert document["errors"] == 0
        assert document["unaccounted"] == 0
        assert document["drained"] is True


class TestPercentile:
    def test_nearest_rank(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0
        assert percentile([3.0, 1.0, 2.0], 0.99) == 3.0
