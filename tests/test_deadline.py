"""Deadline tests: monotonic budgets, scopes, pipeline + executor hooks.

The serve layer's whole robustness story hangs off
:mod:`repro.core.deadline`: budgets must be monotonic-clock anchored,
scopes strictly per-thread, the engine's refinement path must honour
the innermost active scope without deadlines threaded through call
signatures, and the band executor's per-band timeout must still fire
when band code runs off the main thread (where ``SIGALRM`` never
arms — the regression that motivated the cooperative fallback).
"""

import threading
import time

import pytest

from repro.core.config import JoinConfig
from repro.core.deadline import (
    Deadline,
    active_deadline,
    check_active,
    deadline_scope,
)
from repro.core.errors import DeadlineExceededError
from repro.core.executor import RetryPolicy, run_bands
from repro.core.search import SimilaritySearcher
from repro.core.stats import JoinStatistics
from repro.datasets.presets import dblp_like_collection
from repro.util.faults import FaultPlan


class TestDeadline:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            Deadline(0)
        with pytest.raises(ValueError):
            Deadline(-1.5)

    def test_limitless_deadline_never_expires(self):
        deadline = Deadline(None)
        assert deadline.remaining() == float("inf")
        assert not deadline.expired()
        deadline.check()  # never raises
        assert not deadline.under_pressure(1.0)

    def test_remaining_counts_down_and_floors_at_zero(self):
        deadline = Deadline(60.0)
        first = deadline.remaining()
        assert 0.0 < first <= 60.0
        assert deadline.remaining() <= first
        tiny = Deadline(0.001)
        time.sleep(0.01)
        assert tiny.remaining() == 0.0
        assert tiny.expired()

    def test_check_raises_typed_error_with_budget_and_elapsed(self):
        deadline = Deadline(0.001)
        time.sleep(0.01)
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check()
        assert excinfo.value.budget == 0.001
        assert excinfo.value.elapsed >= 0.001

    def test_under_pressure_is_a_fraction_of_the_budget(self):
        generous = Deadline(60.0)
        assert not generous.under_pressure(0.25)
        assert generous.under_pressure(1.0)  # remaining < budget already
        spent = Deadline(0.001)
        time.sleep(0.01)
        assert spent.under_pressure(0.25)
        # margin 0 never triggers: remaining() is never negative.
        assert not spent.under_pressure(0.0)

    def test_after_alias(self):
        assert Deadline.after(5.0).budget == 5.0
        assert Deadline.after(None).budget is None


class TestScopes:
    def test_no_scope_is_a_cheap_no_op(self):
        assert active_deadline() is None
        check_active()  # no scope: never raises

    def test_scope_nesting_innermost_wins(self):
        outer, inner = Deadline(60.0), Deadline(30.0)
        with deadline_scope(outer):
            assert active_deadline() is outer
            with deadline_scope(inner):
                assert active_deadline() is inner
            assert active_deadline() is outer
        assert active_deadline() is None

    def test_check_active_enforces_innermost_scope(self):
        with deadline_scope(Deadline(0.001)):
            time.sleep(0.01)
            with pytest.raises(DeadlineExceededError):
                check_active()

    def test_scope_is_popped_even_on_error(self):
        with pytest.raises(RuntimeError):
            with deadline_scope(Deadline(60.0)):
                raise RuntimeError("boom")
        assert active_deadline() is None

    def test_scopes_do_not_leak_across_threads(self):
        seen: list["Deadline | None"] = []
        with deadline_scope(Deadline(60.0)):
            worker = threading.Thread(
                target=lambda: seen.append(active_deadline())
            )
            worker.start()
            worker.join()
        assert seen == [None]


class TestPipelineIntegration:
    def test_search_raises_under_an_expired_scope(self):
        # The engine's refinement path calls check_active() per
        # candidate, so a served request's deadline bounds real work
        # without being threaded through the call signatures.
        collection = dblp_like_collection(30, theta=0.2, rng=5)
        config = JoinConfig(k=2, tau=0.05, q=3, report_probabilities=True)
        searcher = SimilaritySearcher(collection, config)
        expired = Deadline(0.001)
        time.sleep(0.01)
        with deadline_scope(expired):
            with pytest.raises(DeadlineExceededError):
                searcher.search(collection[0])

    def test_search_completes_under_a_generous_scope(self):
        collection = dblp_like_collection(30, theta=0.2, rng=5)
        config = JoinConfig(k=2, tau=0.05, q=3, report_probabilities=True)
        searcher = SimilaritySearcher(collection, config)
        baseline = searcher.search(collection[0]).matches
        with deadline_scope(Deadline(60.0)):
            scoped = searcher.search(collection[0]).matches
        assert scoped == baseline


def _checking_band_task(payload):
    """A band task with one cooperative check point (module-level so
    the pool path could pickle it)."""
    band_index, values = payload
    check_active()
    return band_index, list(values), JoinStatistics()


class TestExecutorOffMainThread:
    def test_band_timeout_fires_off_the_main_thread(self):
        # Regression: the per-band SIGALRM deadline only arms in the
        # main thread, so a band driven from a server thread used to
        # run with *no* deadline at all. The cooperative scope fallback
        # must convert the expired budget into the same BandTimeoutError
        # retry/degradation accounting as the signal path.
        stats = JoinStatistics()
        outcome: dict = {}

        def drive() -> None:
            try:
                outcome["results"] = run_bands(
                    _checking_band_task,
                    [(0, (0, ["band-0"]))],
                    workers=1,
                    use_processes=False,
                    policy=RetryPolicy(retries=1, timeout=0.05, sleep=lambda _s: None),
                    stats=stats,
                    faults=FaultPlan.from_spec("hang@0/0.3"),
                )
            except BaseException as exc:  # pragma: no cover - diagnostics
                outcome["error"] = exc

        worker = threading.Thread(target=drive, name="off-main-band")
        worker.start()
        worker.join(timeout=30.0)
        assert not worker.is_alive()
        assert "error" not in outcome, outcome.get("error")
        assert [band for band, _, _ in outcome["results"]] == [0]
        counts = stats.fault_counts()
        # The hang out-sleeps the 50ms budget; the first cooperative
        # check point after it raises, and the clean retry completes.
        assert counts["fault.timeout"] == 1
        assert counts["fault.retried"] == 1

    def test_band_without_timeout_is_unaffected_off_main_thread(self):
        stats = JoinStatistics()
        results: list = []
        worker = threading.Thread(
            target=lambda: results.extend(
                run_bands(
                    _checking_band_task,
                    [(0, (0, ["band-0"]))],
                    workers=1,
                    use_processes=False,
                    policy=RetryPolicy(retries=0, timeout=None),
                    stats=stats,
                )
            )
        )
        worker.start()
        worker.join(timeout=30.0)
        assert [band for band, _, _ in results] == [0]
        assert stats.fault_counts() == {}
