"""Tests for similarity search over an indexed collection."""

import random

import pytest

from repro.baselines.brute import brute_force_search
from repro.core.config import JoinConfig
from repro.core.search import SimilaritySearcher, similarity_search
from repro.uncertain.string import UncertainString

from tests.helpers import random_collection, random_uncertain


class TestSearchCorrectness:
    @pytest.mark.parametrize("algorithm", ["QFCT", "FCT", "QT"])
    def test_matches_brute_force(self, algorithm):
        rng = random.Random(len(algorithm))
        collection = random_collection(rng, 12, length_range=(4, 7))
        config = JoinConfig.for_algorithm(algorithm, k=1, tau=0.1, q=2)
        searcher = SimilaritySearcher(collection, config)
        for _ in range(4):
            query = random_uncertain(rng, rng.randint(4, 7))
            got = searcher.search(query).ids()
            expected = {i for i, _ in brute_force_search(collection, query, 1, 0.1)}
            assert got == expected

    def test_deterministic_query(self):
        rng = random.Random(42)
        collection = random_collection(rng, 10, length_range=(4, 6))
        query = UncertainString.from_text("ACGTA")
        config = JoinConfig(k=2, tau=0.05, q=2)
        got = similarity_search(collection, query, config).ids()
        expected = {i for i, _ in brute_force_search(collection, query, 2, 0.05)}
        assert got == expected

    def test_probabilities_reported(self):
        rng = random.Random(3)
        collection = random_collection(rng, 8, length_range=(4, 6))
        query = random_uncertain(rng, 5)
        config = JoinConfig(k=2, tau=0.1, q=2, report_probabilities=True)
        outcome = similarity_search(collection, query, config)
        truth = dict(brute_force_search(collection, query, 2, 0.1))
        for match in outcome.matches:
            assert match.probability == pytest.approx(
                truth[match.string_id], abs=1e-9
            )


class TestSearcherReuse:
    def test_many_queries_one_index(self):
        rng = random.Random(6)
        collection = random_collection(rng, 10, length_range=(4, 6))
        searcher = SimilaritySearcher(collection, JoinConfig(k=1, tau=0.1, q=2))
        results = [
            searcher.search(random_uncertain(rng, 5)).ids() for _ in range(5)
        ]
        assert len(results) == 5  # no state corruption across queries

    def test_empty_collection(self):
        searcher = SimilaritySearcher([], JoinConfig(k=1, tau=0.1))
        outcome = searcher.search(UncertainString.from_text("AC"))
        assert outcome.matches == []


class TestProfileCacheReuse:
    """Regression: collection profiles must be built once, not per query."""

    @staticmethod
    def _counting_profile(monkeypatch):
        import repro.core.pipeline as pipeline
        from repro.filters.frequency import FrequencyProfile

        built = []
        real = FrequencyProfile

        def counting(string):
            built.append(string)
            return real(string)

        monkeypatch.setattr(pipeline, "FrequencyProfile", counting)
        return built

    def test_collection_profiles_built_at_most_once(self, monkeypatch):
        rng = random.Random(21)
        collection = random_collection(rng, 12, length_range=(4, 6))
        # FCT: every length-eligible string hits the frequency filter.
        config = JoinConfig.for_algorithm("FCT", k=2, tau=0.05, q=2)
        searcher = SimilaritySearcher(collection, config)
        built = self._counting_profile(monkeypatch)
        queries = [random_uncertain(rng, 5) for _ in range(3)]
        for query in queries:
            for _ in range(3):  # each query repeated
                searcher.search(query)
        by_string = {}
        for string in built:
            if string in collection:
                by_string[id(string)] = by_string.get(id(string), 0) + 1
        assert by_string, "expected collection profiles to be built"
        assert all(count == 1 for count in by_string.values()), (
            "a collection string's profile was rebuilt across searches"
        )

    def test_query_profile_is_not_leaked_across_queries(self, monkeypatch):
        """The -1 pseudo-id must be rebuilt per search call."""
        rng = random.Random(22)
        collection = random_collection(rng, 8, length_range=(5, 5))
        config = JoinConfig.for_algorithm("FCT", k=1, tau=0.05, q=2)
        searcher = SimilaritySearcher(collection, config)
        built = self._counting_profile(monkeypatch)
        queries = [random_uncertain(rng, 5) for _ in range(4)]
        for query in queries:
            searcher.search(query)
        query_builds = [s for s in built if s not in collection]
        # one profile per distinct query, none reused from a stale -1 slot
        assert len(query_builds) == len(queries)
        assert [id(s) for s in query_builds] == [id(q) for q in queries]

    def test_results_unchanged_by_caching(self):
        rng = random.Random(23)
        collection = random_collection(rng, 10, length_range=(4, 6))
        config = JoinConfig.for_algorithm("FCT", k=1, tau=0.1, q=2)
        searcher = SimilaritySearcher(collection, config)
        for _ in range(3):
            query = random_uncertain(rng, 5)
            expected = {
                i for i, _ in brute_force_search(collection, query, 1, 0.1)
            }
            assert searcher.search(query).ids() == expected
            assert searcher.search(query).ids() == expected
