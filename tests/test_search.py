"""Tests for similarity search over an indexed collection."""

import random

import pytest

from repro.baselines.brute import brute_force_search
from repro.core.config import JoinConfig
from repro.core.search import SimilaritySearcher, similarity_search
from repro.uncertain.string import UncertainString

from tests.helpers import random_collection, random_uncertain


class TestSearchCorrectness:
    @pytest.mark.parametrize("algorithm", ["QFCT", "FCT", "QT"])
    def test_matches_brute_force(self, algorithm):
        rng = random.Random(len(algorithm))
        collection = random_collection(rng, 12, length_range=(4, 7))
        config = JoinConfig.for_algorithm(algorithm, k=1, tau=0.1, q=2)
        searcher = SimilaritySearcher(collection, config)
        for _ in range(4):
            query = random_uncertain(rng, rng.randint(4, 7))
            got = searcher.search(query).ids()
            expected = {i for i, _ in brute_force_search(collection, query, 1, 0.1)}
            assert got == expected

    def test_deterministic_query(self):
        rng = random.Random(42)
        collection = random_collection(rng, 10, length_range=(4, 6))
        query = UncertainString.from_text("ACGTA")
        config = JoinConfig(k=2, tau=0.05, q=2)
        got = similarity_search(collection, query, config).ids()
        expected = {i for i, _ in brute_force_search(collection, query, 2, 0.05)}
        assert got == expected

    def test_probabilities_reported(self):
        rng = random.Random(3)
        collection = random_collection(rng, 8, length_range=(4, 6))
        query = random_uncertain(rng, 5)
        config = JoinConfig(k=2, tau=0.1, q=2, report_probabilities=True)
        outcome = similarity_search(collection, query, config)
        truth = dict(brute_force_search(collection, query, 2, 0.1))
        for match in outcome.matches:
            assert match.probability == pytest.approx(
                truth[match.string_id], abs=1e-9
            )


class TestSearcherReuse:
    def test_many_queries_one_index(self):
        rng = random.Random(6)
        collection = random_collection(rng, 10, length_range=(4, 6))
        searcher = SimilaritySearcher(collection, JoinConfig(k=1, tau=0.1, q=2))
        results = [
            searcher.search(random_uncertain(rng, 5)).ids() for _ in range(5)
        ]
        assert len(results) == 5  # no state corruption across queries

    def test_empty_collection(self):
        searcher = SimilaritySearcher([], JoinConfig(k=1, tau=0.1))
        outcome = searcher.search(UncertainString.from_text("AC"))
        assert outcome.matches == []
