"""Tests for the overlapping q-gram count filter."""

import random

import pytest

from repro.distance.probability import edit_similarity_probability
from repro.filters.overlap import OverlapCountFilter, window_support_keys
from repro.uncertain.parser import parse_uncertain
from repro.uncertain.string import UncertainString

from tests.helpers import random_collection


class TestWindowSupports:
    def test_deterministic_supports_are_singletons(self):
        keys = window_support_keys(UncertainString.from_text("ACGT"), 2)
        assert len(keys) == 3
        assert keys[0] == (frozenset("A"), frozenset("C"))

    def test_uncertain_position_widens_support(self):
        s = parse_uncertain("A{(C,0.5),(G,0.5)}T")
        keys = window_support_keys(s, 2)
        assert keys[0][1] == frozenset("CG")

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            window_support_keys(UncertainString.from_text("A"), 0)


class TestThreshold:
    def test_classic_formula(self):
        f = OverlapCountFilter(k=1, q=2)
        # max(6, 6) - 2 + 1 - 1*2 = 3
        assert f.threshold(6, 6) == 3

    def test_deterministic_identical_strings_pass(self):
        f = OverlapCountFilter(k=1, q=2)
        s = UncertainString.from_text("ACGTACGT")
        assert not f.decide(s, s).rejected

    def test_disjoint_strings_rejected(self):
        f = OverlapCountFilter(k=1, q=2)
        a = UncertainString.from_text("AAAAAAAA")
        b = UncertainString.from_text("CCCCCCCC")
        assert f.decide(a, b).rejected


class TestSafety:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_never_rejects_a_possible_pair(self, seed):
        # Necessary-condition property: a rejected pair must have
        # Pr(ed <= k) == 0 in every joint world.
        rng = random.Random(seed)
        f = OverlapCountFilter(k=1, q=2)
        rejected = 0
        for _ in range(60):
            a, b = random_collection(rng, 2, length_range=(4, 7), theta=0.4)
            decision = f.decide(a, b)
            if decision.rejected and abs(len(a) - len(b)) <= 1:
                rejected += 1
                assert edit_similarity_probability(a, b, 1) == 0.0
        # the filter did fire at least once in this configuration
        assert rejected > 0

    def test_vacuous_for_short_strings(self):
        f = OverlapCountFilter(k=2, q=3)
        a = UncertainString.from_text("ACG")
        assert f.threshold(3, 3) <= 0
        assert not f.decide(a, a).rejected


class TestIndexSizeMeasure:
    def test_overlapping_entries_count_instances(self):
        f = OverlapCountFilter(k=1, q=2)
        s = parse_uncertain("A{(C,0.5),(G,0.5)}T")
        # windows: A{C,G} (2 instances) and {C,G}T (2 instances)
        assert f.index_entry_count(s) == 4

    def test_deterministic_is_window_count(self):
        f = OverlapCountFilter(k=1, q=3)
        assert f.index_entry_count(UncertainString.from_text("ACGTAC")) == 4
