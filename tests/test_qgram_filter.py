"""Tests for q-gram filtering with probabilistic pruning (Section 3).

Includes the full Table 1 reproduction: r = GGATCC joined against the four
uncertain strings with m=3, q=2, k=1, tau=0.25 under the table's
symmetric selection window.
"""

import random

import pytest

from repro.distance.probability import edit_similarity_probability
from repro.filters.base import FilterVerdict
from repro.filters.qgram import QGramFilter
from repro.uncertain.parser import parse_uncertain
from repro.uncertain.string import UncertainString

from tests.helpers import random_collection

R_TABLE1 = UncertainString.from_text("GGATCC")

# Table 1's collection, identified from the narrative alphas (Section 3.1):
# S1 matches no segment; S2 matches one; S3 has alphas (1, 0, 0.2);
# S4 has alphas (0.8, 0.5, 0).
S1 = parse_uncertain("A{(C,0.5),(G,0.5)}A{(C,0.5),(G,0.5)}AC")
S2 = parse_uncertain("AA{(G,0.9),(T,0.1)}G{(C,0.3),(G,0.2),(T,0.5)}C")
S3 = parse_uncertain("G{(A,0.8),(G,0.2)}CT{(A,0.8),(C,0.1),(T,0.1)}C")
S4 = parse_uncertain("{(G,0.8),(T,0.2)}GA{(C,0.3),(G,0.2),(T,0.5)}CT")

TAU_TABLE1 = 0.25


@pytest.fixture
def table1_filter():
    return QGramFilter(k=1, q=2, selection="window")


class TestTable1:
    def test_s1_matches_no_segments(self, table1_filter):
        outcome = table1_filter.evaluate(R_TABLE1, S1)
        assert outcome.alphas == (0.0, 0.0, 0.0)
        assert outcome.decision(TAU_TABLE1).rejected

    def test_s2_matches_one_segment(self, table1_filter):
        outcome = table1_filter.evaluate(R_TABLE1, S2)
        assert outcome.matched_segments == 1
        assert outcome.required == 2
        assert outcome.decision(TAU_TABLE1).rejected

    def test_s3_alphas_and_bound(self, table1_filter):
        outcome = table1_filter.evaluate(R_TABLE1, S3)
        assert outcome.alphas == pytest.approx((1.0, 0.0, 0.2))
        assert outcome.upper == pytest.approx(0.2)
        # 0.2 < tau = 0.25: rejected despite surviving Lemma 4.
        assert outcome.decision(TAU_TABLE1).rejected

    def test_s4_alphas_and_bound(self, table1_filter):
        outcome = table1_filter.evaluate(R_TABLE1, S4)
        assert outcome.alphas == pytest.approx((0.8, 0.5, 0.0))
        assert outcome.upper == pytest.approx(0.4)
        decision = outcome.decision(TAU_TABLE1)
        assert decision.verdict is FilterVerdict.UNDECIDED


class TestUpperBoundSoundness:
    def test_bound_dominates_exact_probability_deterministic_r(self):
        # Theorem 1 is provably an upper bound when R is deterministic.
        rng = random.Random(31)
        qfilter = QGramFilter(k=1, q=2)
        for _ in range(60):
            r = UncertainString.from_text(
                "".join(rng.choice("ACGT") for _ in range(rng.randint(4, 7)))
            )
            s = random_collection(rng, 1, length_range=(4, 7))[0]
            if abs(len(r) - len(s)) > 1:
                continue
            outcome = qfilter.evaluate(r, s)
            exact = edit_similarity_probability(r, s, 1)
            assert outcome.upper >= exact - 1e-9

    def test_zero_probability_pairs_fail_necessary_condition(self):
        # Lemma 4 in contrapositive: if the filter reports a total miss,
        # the exact probability must be 0.
        rng = random.Random(7)
        qfilter = QGramFilter(k=1, q=2)
        checked = 0
        for _ in range(80):
            pair = random_collection(rng, 2, length_range=(4, 7))
            left, right = pair
            if abs(len(left) - len(right)) > 1:
                continue
            outcome = qfilter.evaluate(left, right)
            if outcome.matched_segments < outcome.required:
                checked += 1
                assert edit_similarity_probability(left, right, 1) == 0.0
        assert checked > 0  # the scenario actually occurred


class TestFilterMechanics:
    def test_length_gap_rejected(self):
        qfilter = QGramFilter(k=1)
        a = UncertainString.from_text("AAAA")
        b = UncertainString.from_text("AAAAAAA")
        assert qfilter.decide(a, b, 0.1).rejected

    def test_markov_bound_mode_is_looser(self):
        markov = QGramFilter(k=1, q=2, selection="window", bound_mode="markov")
        paper = QGramFilter(k=1, q=2, selection="window", bound_mode="paper")
        assert markov.evaluate(R_TABLE1, S4).upper >= paper.evaluate(R_TABLE1, S4).upper

    def test_short_strings_pass_vacuously(self):
        # Strings shorter than k + 1 cannot be pruned by the pigeonhole.
        qfilter = QGramFilter(k=4, q=3)
        a = UncertainString.from_text("AB"[0])
        b = UncertainString.from_text("C")
        outcome = qfilter.evaluate(a, b)
        assert outcome.required <= 0
        assert outcome.upper == 1.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            QGramFilter(k=-1)
        with pytest.raises(ValueError):
            QGramFilter(k=1, q=0)
        with pytest.raises(ValueError):
            QGramFilter(k=1, bound_mode="bogus")
