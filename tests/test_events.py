"""Tests for the event-counting DP (Section 3.1)."""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters.events import exactly_counts, markov_tail_bound, tail_probability

PROBS = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=0,
    max_size=8,
)


def brute_exactly(alphas, y):
    """Reference: sum over all event subsets of size y."""
    total = 0.0
    for chosen in itertools.combinations(range(len(alphas)), y):
        chosen_set = set(chosen)
        prob = 1.0
        for i, alpha in enumerate(alphas):
            prob *= alpha if i in chosen_set else (1.0 - alpha)
        total += prob
    return total


class TestExactlyCounts:
    @given(PROBS)
    @settings(max_examples=150)
    def test_matches_subset_enumeration(self, alphas):
        pmf = exactly_counts(alphas)
        for y in range(len(alphas) + 1):
            assert pmf[y] == pytest.approx(brute_exactly(alphas, y), abs=1e-9)

    @given(PROBS)
    @settings(max_examples=100)
    def test_pmf_sums_to_one(self, alphas):
        assert sum(exactly_counts(alphas)) == pytest.approx(1.0)

    def test_empty_event_list(self):
        assert exactly_counts([]) == [1.0]

    def test_certain_events(self):
        pmf = exactly_counts([1.0, 1.0, 1.0])
        assert pmf == pytest.approx([0.0, 0.0, 0.0, 1.0])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            exactly_counts([1.5])


class TestTailProbability:
    @given(PROBS, st.integers(min_value=-1, max_value=9))
    @settings(max_examples=200)
    def test_matches_pmf_tail(self, alphas, threshold):
        expected = sum(
            brute_exactly(alphas, y)
            for y in range(max(threshold, 0), len(alphas) + 1)
        )
        if threshold <= 0:
            expected = 1.0
        assert tail_probability(alphas, threshold) == pytest.approx(expected, abs=1e-9)

    def test_threshold_one_closed_form(self):
        # Lemma 3/5: 1 - prod(1 - alpha_x).
        alphas = [0.2, 0.5, 0.1]
        expected = 1.0 - math.prod(1 - a for a in alphas)
        assert tail_probability(alphas, 1) == pytest.approx(expected)

    def test_paper_example_s3(self):
        # Table 1 / Section 3.1: S3 has alphas (1, 0, 0.2), m=3, k=1 ->
        # need >= 2 matches; the paper derives upper bound 0.2 < tau.
        assert tail_probability([1.0, 0.0, 0.2], 2) == pytest.approx(0.2)

    def test_paper_example_s4(self):
        # Table 1: S4 has alphas (0.8, 0.5, 0); the paper derives 0.4 and
        # keeps (r, S4) as a candidate pair.
        assert tail_probability([0.8, 0.5, 0.0], 2) == pytest.approx(0.4)

    def test_threshold_above_m_is_zero(self):
        assert tail_probability([0.9, 0.9], 3) == 0.0


class TestMarkovBound:
    @given(PROBS, st.integers(min_value=1, max_value=9))
    @settings(max_examples=200)
    def test_dominates_independent_tail(self, alphas, threshold):
        # Markov is valid under any dependence, hence >= the independent
        # tail probability.
        markov = markov_tail_bound(alphas, threshold)
        independent = tail_probability(alphas, threshold)
        assert markov >= independent - 1e-9

    def test_closed_form(self):
        assert markov_tail_bound([0.5, 0.25], 2) == pytest.approx(0.375)

    def test_vacuous_threshold(self):
        assert markov_tail_bound([0.1], 0) == 1.0
