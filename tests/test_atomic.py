"""Tests for the shared crash-atomic write helper.

The contract under test: whatever fails mid-write — the data write,
the fsync, the rename — a reader at the target path sees either the
complete previous content or the complete new content, and no tmp
litter survives the failure.
"""

import os
import random

import pytest

from repro.index.persistence import load_index, save_index
from repro.util.atomic import atomic_write_bytes, atomic_write_text

from tests.helpers import random_collection
from tests.test_index_persistence import build


class TestAtomicWrite:
    def test_creates_and_overwrites(self, tmp_path):
        target = tmp_path / "doc.bin"
        atomic_write_bytes(target, b"first")
        assert target.read_bytes() == b"first"
        atomic_write_bytes(target, b"second", fsync=True)
        assert target.read_bytes() == b"second"
        assert list(tmp_path.iterdir()) == [target]

    def test_text_round_trips_utf8(self, tmp_path):
        target = tmp_path / "doc.txt"
        atomic_write_text(target, "naïve ω")
        assert target.read_text(encoding="utf-8") == "naïve ω"

    def test_failed_rename_preserves_target_and_cleans_tmp(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "doc.bin"
        atomic_write_bytes(target, b"intact")

        def exploding_replace(src, dst):
            raise OSError("disk gone")

        monkeypatch.setattr("repro.util.atomic.os.replace", exploding_replace)
        with pytest.raises(OSError):
            atomic_write_bytes(target, b"never visible")
        assert target.read_bytes() == b"intact"
        assert list(tmp_path.iterdir()) == [target]

    def test_failed_fsync_preserves_target_and_cleans_tmp(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "doc.bin"
        atomic_write_bytes(target, b"intact")
        real_fsync = os.fsync

        def exploding_fsync(fd):
            real_fsync(fd)
            raise OSError("power interrupted")

        monkeypatch.setattr("repro.util.atomic.os.fsync", exploding_fsync)
        with pytest.raises(OSError):
            atomic_write_bytes(target, b"never visible", fsync=True)
        assert target.read_bytes() == b"intact"
        assert list(tmp_path.iterdir()) == [target]

    def test_tmp_name_is_pid_unique(self, tmp_path, monkeypatch):
        # Two processes saving the same target must not truncate each
        # other's in-flight tmp file; the name carries the pid so each
        # writer owns its own. Capture the name by failing the rename.
        target = tmp_path / "doc.bin"

        seen = []

        def capturing_replace(src, dst):
            seen.append(os.fspath(src))
            raise OSError("stop here")

        monkeypatch.setattr("repro.util.atomic.os.replace", capturing_replace)
        with pytest.raises(OSError):
            atomic_write_bytes(target, b"x")
        assert seen and seen[0].endswith(f".tmp.{os.getpid()}")


class TestSaveIndexCrashMidWrite:
    def test_crash_during_save_keeps_previous_snapshot_loadable(
        self, tmp_path, monkeypatch
    ):
        # Regression: a save that dies between writing bytes and the
        # atomic rename must leave the previously committed snapshot
        # fully loadable — not a truncated JSON document.
        rng = random.Random(31)
        first = build(random_collection(rng, 8, length_range=(4, 7)))
        path = tmp_path / "index.json"
        save_index(first, path)
        expected = [
            (c.string_id, c.alphas, c.upper)
            for query in random_collection(rng, 3, length_range=(4, 7))
            for c in first.query(query, 0.05)
        ]

        def exploding_replace(src, dst):
            raise OSError("crashed before rename")

        monkeypatch.setattr("repro.util.atomic.os.replace", exploding_replace)
        second = build(random_collection(rng, 12, length_range=(4, 7)))
        with pytest.raises(OSError):
            save_index(second, path)
        monkeypatch.undo()

        reloaded = load_index(path)
        rng = random.Random(31)
        random_collection(rng, 8, length_range=(4, 7))
        observed = [
            (c.string_id, c.alphas, c.upper)
            for query in random_collection(rng, 3, length_range=(4, 7))
            for c in reloaded.query(query, 0.05)
        ]
        assert observed == expected
        assert list(tmp_path.iterdir()) == [path]
