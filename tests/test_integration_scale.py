"""Moderate-scale integration: variants agree on realistic datasets.

Brute force is infeasible at this scale, but all algorithm variants must
agree with each other (they share only the exact verifier), and the
incremental joiner must agree with the batch driver.
"""

import pytest

from repro.core.config import JoinConfig
from repro.core.incremental import IncrementalJoiner
from repro.core.join import similarity_join
from repro.datasets.presets import dblp_like_collection, protein_like_collection


@pytest.fixture(scope="module")
def dblp100():
    # <= 4 uncertain positions keeps the naive-verifier test affordable.
    return dblp_like_collection(100, rng=2024, max_uncertain_positions=4)


@pytest.fixture(scope="module")
def protein80():
    return protein_like_collection(80, rng=2024, max_uncertain_positions=5)


class TestCrossVariantAgreement:
    def test_all_variants_agree_on_dblp(self, dblp100):
        results = {}
        for algorithm in ("QFCT", "QCT", "QFT", "FCT"):
            config = JoinConfig.for_algorithm(algorithm, k=2, tau=0.1)
            results[algorithm] = similarity_join(dblp100, config).id_pairs()
        assert len({frozenset(pairs) for pairs in results.values()}) == 1
        assert results["QFCT"]  # non-trivial workload

    def test_variants_agree_on_protein(self, protein80):
        full = similarity_join(
            protein80, JoinConfig.for_algorithm("QFCT", k=4, tau=0.01)
        ).id_pairs()
        reduced = similarity_join(
            protein80, JoinConfig.for_algorithm("FCT", k=4, tau=0.01)
        ).id_pairs()
        assert full == reduced
        assert full

    def test_incremental_agrees_with_batch(self, dblp100):
        config = JoinConfig(k=2, tau=0.1)
        batch = similarity_join(dblp100, config).id_pairs()
        joiner = IncrementalJoiner(config)
        streamed = set()
        for string in dblp100:
            streamed.update(p.ids for p in joiner.add(string))
        assert streamed == batch

    def test_naive_verifier_agrees_with_trie(self, dblp100):
        trie = similarity_join(
            dblp100, JoinConfig(k=2, tau=0.1, verification="trie")
        ).id_pairs()
        naive = similarity_join(
            dblp100, JoinConfig(k=2, tau=0.1, verification="naive")
        ).id_pairs()
        assert trie == naive
