"""Tests for trie-based and naive verification (Sections 6.2, 7.7)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.probability import edit_similarity_probability
from repro.uncertain.parser import parse_uncertain
from repro.uncertain.string import UncertainString
from repro.verify.naive import naive_verify, naive_verify_threshold
from repro.verify.trie import build_trie
from repro.verify.trie_verify import (
    VerificationStats,
    trie_verify,
    trie_verify_threshold,
)

from tests.helpers import random_uncertain, uncertain_strings


class TestAgreementWithReference:
    @given(
        uncertain_strings(max_length=6),
        uncertain_strings(max_length=6),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=150, deadline=None)
    def test_trie_equals_enumeration(self, left, right, k):
        expected = edit_similarity_probability(left, right, k)
        assert trie_verify(left, right, k) == pytest.approx(expected, abs=1e-9)

    @given(
        uncertain_strings(max_length=6),
        uncertain_strings(max_length=6),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=100, deadline=None)
    def test_naive_equals_enumeration(self, left, right, k):
        expected = edit_similarity_probability(left, right, k)
        assert naive_verify(left, right, k) == pytest.approx(expected, abs=1e-9)

    def test_trie_handles_length_gap(self):
        a = UncertainString.from_text("AC")
        b = UncertainString.from_text("ACGTT")
        assert trie_verify(a, b, 2) == 0.0
        assert trie_verify(a, b, 3) == 1.0


class TestThresholdDecisions:
    @given(
        uncertain_strings(max_length=5),
        uncertain_strings(max_length=5),
        st.integers(min_value=0, max_value=3),
        st.floats(min_value=0.0, max_value=0.95, allow_nan=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_early_stop_matches_exact_decision(self, left, right, k, tau):
        exact = edit_similarity_probability(left, right, k)
        if abs(exact - tau) < 1e-9:
            return  # knife-edge float ties are unspecified
        assert trie_verify_threshold(left, right, k, tau) == (exact > tau)
        assert naive_verify_threshold(left, right, k, tau) == (exact > tau)

    def test_accept_short_circuits(self):
        # Identical certain prefix pushes the accumulated mass over tau
        # before all of S's worlds are expanded.
        s = parse_uncertain("AAAA{(C,0.5),(G,0.5)}{(C,0.5),(G,0.5)}")
        stats = VerificationStats()
        assert trie_verify_threshold(s, s, 2, 0.1, stats=stats)
        assert stats.early_stop


class TestTrieReuse:
    def test_prebuilt_trie_shared_across_candidates(self):
        rng = random.Random(5)
        left = random_uncertain(rng, 6, theta=0.4)
        trie = build_trie(left)
        for _ in range(5):
            right = random_uncertain(rng, 6, theta=0.4)
            expected = edit_similarity_probability(left, right, 2)
            assert trie_verify(left, right, 2, left_trie=trie) == pytest.approx(
                expected, abs=1e-9
            )

    def test_wrong_trie_rejected(self):
        a = UncertainString.from_text("ACGT")
        b = UncertainString.from_text("ACG")
        with pytest.raises(ValueError, match="left_trie"):
            trie_verify(b, a, 1, left_trie=build_trie(a))


class TestOnDemandPruning:
    def test_dissimilar_prefixes_are_pruned(self):
        # S's subtree under a hopeless prefix must not be expanded.
        left = UncertainString.from_text("AAAAAAA")
        right = parse_uncertain("{(C,0.5),(G,0.5)}CCCC{(C,0.5),(G,0.5)}C")
        stats = VerificationStats()
        result = trie_verify(left, right, 1, stats=stats)
        assert result == 0.0
        assert stats.pruned_prefixes > 0
        # 4 worlds exist but none should reach leaf depth.
        assert stats.leaf_instances == 0

    def test_stats_count_leaves_for_similar_pair(self):
        s = parse_uncertain("ACGT{(A,0.5),(C,0.5)}")
        stats = VerificationStats()
        trie_verify(s, s, 4, stats=stats)
        assert stats.leaf_instances == 2  # both worlds of S reach the leaves


class TestValidation:
    def test_rejects_negative_k(self):
        a = UncertainString.from_text("A")
        with pytest.raises(ValueError):
            trie_verify(a, a, -1)
        with pytest.raises(ValueError):
            naive_verify(a, a, -1)
