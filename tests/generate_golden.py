"""Generate the driver-equivalence golden fixture.

Run against the *seed* (pre-refactor) drivers exactly once::

    PYTHONPATH=src:. python tests/generate_golden.py

The output ``tests/data/golden_driver_outputs.json`` pins the pairs,
order, and probability floats every later refactor of the drivers must
reproduce byte-for-byte (see ``tests/test_driver_equivalence.py``).
Regenerating it against refactored code would defeat the fixture's
purpose — only do that when the workload spec itself changes and the
seed behaviour has been re-verified some other way.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.incremental import IncrementalJoiner
from repro.core.join import similarity_join
from repro.core.join_two import similarity_join_two
from repro.core.search import SimilaritySearcher

from tests import equivalence_spec as spec

OUT = Path(__file__).parent / "data" / "golden_driver_outputs.json"


def main() -> None:
    self_coll = spec.self_collection()
    left = spec.left_collection()
    right = spec.right_collection()
    search_coll = spec.search_collection()
    queries = spec.search_queries()
    arrival = spec.incremental_order()

    golden: dict[str, dict] = {}
    for key, config in spec.config_grid():
        joiner = IncrementalJoiner(config)
        incremental_pairs = []
        for original in arrival:
            incremental_pairs.extend(joiner.add(self_coll[original]))
        searcher = SimilaritySearcher(search_coll, config)
        golden[key] = {
            "join": spec.encode_pairs(similarity_join(self_coll, config).pairs),
            "join_two": spec.encode_pairs(
                similarity_join_two(left, right, config).pairs
            ),
            "search": [
                spec.encode_matches(searcher.search(query).matches)
                for query in queries
            ],
            "incremental": spec.encode_pairs(incremental_pairs),
        }
        print(f"{key}: join={len(golden[key]['join'])} "
              f"join_two={len(golden[key]['join_two'])} "
              f"incremental={len(golden[key]['incremental'])}")

    OUT.parent.mkdir(parents=True, exist_ok=True)
    OUT.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
