"""Tests for repro.uncertain.position."""

import random

import pytest

from repro.uncertain.position import UncertainPosition


class TestConstruction:
    def test_from_mapping(self):
        pos = UncertainPosition({"A": 0.7, "C": 0.3})
        assert pos.probability("A") == pytest.approx(0.7)
        assert pos.probability("C") == pytest.approx(0.3)

    def test_from_pairs(self):
        pos = UncertainPosition((("A", 0.5), ("G", 0.5)))
        assert set(pos.chars) == {"A", "G"}

    def test_certain_constructor(self):
        pos = UncertainPosition.certain("Q")
        assert pos.is_certain
        assert pos.top == "Q"
        assert pos.probability("Q") == 1.0

    def test_sorted_most_probable_first(self):
        pos = UncertainPosition({"A": 0.2, "C": 0.5, "G": 0.3})
        assert pos.chars == ("C", "G", "A")

    def test_ties_broken_by_character(self):
        pos = UncertainPosition({"G": 0.5, "A": 0.5})
        assert pos.chars == ("A", "G")

    def test_zero_probability_alternatives_dropped(self):
        pos = UncertainPosition({"A": 1.0, "C": 0.0})
        assert pos.chars == ("A",)
        assert pos.is_certain

    def test_probabilities_normalized(self):
        # Tiny float drift within tolerance is renormalized exactly.
        pos = UncertainPosition({"A": 0.3 + 1e-9, "C": 0.7})
        assert sum(pos.probs) == pytest.approx(1.0, abs=1e-15)

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            UncertainPosition({"A": 0.5, "C": 0.4})

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            UncertainPosition({"A": 1.2, "C": -0.2})

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            UncertainPosition((("A", 0.5), ("A", 0.5)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            UncertainPosition({})

    def test_rejects_multichar(self):
        with pytest.raises(ValueError, match="single character"):
            UncertainPosition({"AB": 1.0})


class TestAgreement:
    def test_agreement_identical_certain(self):
        a = UncertainPosition.certain("A")
        assert a.agreement(a) == 1.0

    def test_agreement_disjoint(self):
        a = UncertainPosition.certain("A")
        c = UncertainPosition.certain("C")
        assert a.agreement(c) == 0.0

    def test_agreement_formula(self):
        # p1 = sum_c P(x=c) P(y=c) (Theorem 4's match probability).
        x = UncertainPosition({"A": 0.6, "C": 0.4})
        y = UncertainPosition({"A": 0.5, "G": 0.5})
        assert x.agreement(y) == pytest.approx(0.6 * 0.5)

    def test_agreement_symmetric(self):
        x = UncertainPosition({"A": 0.6, "C": 0.4})
        y = UncertainPosition({"A": 0.1, "C": 0.2, "G": 0.7})
        assert x.agreement(y) == pytest.approx(y.agreement(x))


class TestSampling:
    def test_sample_respects_support(self):
        rng = random.Random(7)
        pos = UncertainPosition({"A": 0.5, "C": 0.5})
        draws = {pos.sample(rng) for _ in range(50)}
        assert draws <= {"A", "C"}

    def test_sample_frequency_tracks_probability(self):
        rng = random.Random(7)
        pos = UncertainPosition({"A": 0.9, "C": 0.1})
        hits = sum(pos.sample(rng) == "A" for _ in range(2000))
        assert 1650 <= hits <= 1990


class TestProtocol:
    def test_equality_and_hash(self):
        a = UncertainPosition({"A": 0.5, "C": 0.5})
        b = UncertainPosition({"C": 0.5, "A": 0.5})
        assert a == b
        assert hash(a) == hash(b)

    def test_len_is_support_size(self):
        assert len(UncertainPosition({"A": 0.5, "C": 0.5})) == 2

    def test_repr_round_trips_certain(self):
        assert "certain" in repr(UncertainPosition.certain("A"))
