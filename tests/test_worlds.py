"""Tests for possible-world enumeration."""

import random

import pytest

from repro.uncertain.parser import parse_uncertain
from repro.uncertain.string import UncertainString
from repro.uncertain.worlds import (
    enumerate_joint_worlds,
    enumerate_worlds,
    sample_world,
    world_count,
)


@pytest.fixture
def two_uncertain():
    return parse_uncertain("{(A,0.6),(C,0.4)}G{(T,0.9),(A,0.1)}")


class TestEnumerateWorlds:
    def test_counts(self, two_uncertain):
        worlds = list(enumerate_worlds(two_uncertain))
        assert len(worlds) == 4
        assert world_count(two_uncertain) == 4

    def test_probabilities_sum_to_one(self, two_uncertain):
        assert sum(p for _, p in enumerate_worlds(two_uncertain)) == pytest.approx(1.0)

    def test_each_world_probability_is_product(self, two_uncertain):
        worlds = dict(enumerate_worlds(two_uncertain))
        assert worlds["AGT"] == pytest.approx(0.6 * 0.9)
        assert worlds["CGA"] == pytest.approx(0.4 * 0.1)

    def test_deterministic_string_single_world(self):
        worlds = list(enumerate_worlds(UncertainString.from_text("AC")))
        assert worlds == [("AC", 1.0)]

    def test_order_is_most_probable_first_per_position(self, two_uncertain):
        worlds = [w for w, _ in enumerate_worlds(two_uncertain)]
        assert worlds[0] == "AGT"  # modal instance first

    def test_limit_guard(self):
        s = parse_uncertain("{(A,0.5),(C,0.5)}" * 4)
        with pytest.raises(ValueError, match="refusing"):
            list(enumerate_worlds(s, limit=8))
        assert len(list(enumerate_worlds(s, limit=None))) == 16


class TestJointWorlds:
    def test_joint_probabilities_sum_to_one(self, two_uncertain):
        other = parse_uncertain("A{(C,0.3),(G,0.7)}")
        total = sum(p for _, _, p in enumerate_joint_worlds(two_uncertain, other))
        assert total == pytest.approx(1.0)

    def test_joint_is_product_of_marginals(self, two_uncertain):
        other = parse_uncertain("A{(C,0.3),(G,0.7)}")
        for left, right, prob in enumerate_joint_worlds(two_uncertain, other):
            expected = two_uncertain.instance_probability(
                left
            ) * other.instance_probability(right)
            assert prob == pytest.approx(expected)

    def test_joint_limit_guard(self, two_uncertain):
        with pytest.raises(ValueError, match="joint"):
            list(enumerate_joint_worlds(two_uncertain, two_uncertain, limit=8))


class TestSampling:
    def test_sample_world_valid(self, two_uncertain):
        rng = random.Random(11)
        for _ in range(10):
            text = sample_world(two_uncertain, rng)
            assert two_uncertain.instance_probability(text) > 0
