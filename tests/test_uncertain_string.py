"""Tests for repro.uncertain.string."""

import random

import pytest

from repro.uncertain.parser import parse_uncertain
from repro.uncertain.position import UncertainPosition
from repro.uncertain.string import UncertainString


@pytest.fixture
def mixed():
    # The paper's S3 from Table 1: A{C,G}A{C,G}AC with 0.5/0.5 pdfs.
    return parse_uncertain("A{(C,0.5),(G,0.5)}A{(C,0.5),(G,0.5)}AC")


class TestConstruction:
    def test_from_text(self):
        s = UncertainString.from_text("GATTACA")
        assert len(s) == 7
        assert s.is_certain
        assert s.world_count() == 1

    def test_from_mixed(self):
        s = UncertainString.from_mixed(["GG", {"A": 0.8, "T": 0.2}, "C"])
        assert len(s) == 4
        assert s.uncertain_indices == (2,)

    def test_rejects_non_positions(self):
        with pytest.raises(TypeError):
            UncertainString(["A"])  # type: ignore[list-item]


class TestSequenceProtocol:
    def test_int_indexing(self, mixed):
        assert mixed[0].top == "A"
        assert not mixed[1].is_certain

    def test_slice_returns_uncertain_string(self, mixed):
        head = mixed[:3]
        assert isinstance(head, UncertainString)
        assert len(head) == 3

    def test_substring_window(self, mixed):
        win = mixed.substring(2, 3)
        assert len(win) == 3
        assert win[0].top == "A"

    def test_substring_out_of_range(self, mixed):
        with pytest.raises(ValueError):
            mixed.substring(4, 5)

    def test_concatenation(self, mixed):
        joined = mixed + mixed
        assert len(joined) == 2 * len(mixed)
        assert joined.world_count() == mixed.world_count() ** 2


class TestUncertaintyStructure:
    def test_theta(self, mixed):
        assert mixed.theta == pytest.approx(2 / 6)

    def test_gamma(self, mixed):
        assert mixed.gamma == pytest.approx(2.0)

    def test_world_count(self, mixed):
        assert mixed.world_count() == 4

    def test_certain_string_gamma_is_one(self):
        assert UncertainString.from_text("AC").gamma == 1.0


class TestProbabilities:
    def test_instance_probability(self, mixed):
        assert mixed.instance_probability("ACAGAC") == pytest.approx(0.25)
        assert mixed.instance_probability("ATAGAC") == 0.0
        assert mixed.instance_probability("AC") == 0.0  # wrong length

    def test_instance_probabilities_sum_to_one(self, mixed):
        total = sum(
            mixed.instance_probability(w) for w in mixed.support_strings()
        )
        assert total == pytest.approx(1.0)

    def test_match_probability_window(self, mixed):
        # window [1..2] = {C,G} A
        assert mixed.match_probability("CA", 1) == pytest.approx(0.5)
        assert mixed.match_probability("GA", 1) == pytest.approx(0.5)
        assert mixed.match_probability("TA", 1) == 0.0

    def test_match_probability_out_of_range_is_zero(self, mixed):
        assert mixed.match_probability("ACC", 5) == 0.0
        assert mixed.match_probability("A", -1) == 0.0

    def test_agreement_probability_matches_enumeration(self, mixed):
        other = parse_uncertain("A{(C,0.7),(G,0.3)}AGAC")
        expected = sum(
            mixed.instance_probability(w) * other.instance_probability(w)
            for w in mixed.support_strings()
        )
        assert mixed.agreement_probability(other) == pytest.approx(expected)

    def test_agreement_probability_length_mismatch(self, mixed):
        assert mixed.agreement_probability(mixed[:3]) == 0.0

    def test_can_match(self, mixed):
        assert mixed.can_match("GAC", 3)
        assert not mixed.can_match("TTT", 0)


class TestInstances:
    def test_most_probable_instance(self):
        s = parse_uncertain("A{(C,0.7),(G,0.3)}T")
        text, prob = s.most_probable_instance()
        assert text == "ACT"
        assert prob == pytest.approx(0.7)

    def test_sample_is_valid_world(self, mixed):
        rng = random.Random(3)
        for _ in range(20):
            assert mixed.instance_probability(mixed.sample(rng)) > 0


class TestCharFrequencies:
    def test_char_count_bounds(self, mixed):
        # 'A': three certain occurrences, no uncertain ones.
        assert mixed.char_count_bounds("A") == (3, 3)
        # 'C': one certain + two uncertain positions.
        assert mixed.char_count_bounds("C") == (1, 3)
        # 'G': only at the two uncertain positions.
        assert mixed.char_count_bounds("G") == (0, 2)
        assert mixed.char_count_bounds("T") == (0, 0)

    def test_char_position_probs(self, mixed):
        assert mixed.char_position_probs("C") == [0.5, 0.5]
        assert mixed.char_position_probs("A") == []

    def test_support_alphabet(self, mixed):
        assert mixed.support_alphabet() == {"A", "C", "G"}


class TestProtocol:
    def test_equality_and_hash(self, mixed):
        clone = parse_uncertain("A{(C,0.5),(G,0.5)}A{(C,0.5),(G,0.5)}AC")
        assert mixed == clone
        assert hash(mixed) == hash(clone)

    def test_inequality(self, mixed):
        assert mixed != UncertainString.from_text("ACAGAC")

    def test_repr_contains_notation(self, mixed):
        assert "{(C,0.5),(G,0.5)}" in repr(mixed)
