"""Tests for JoinStatistics bookkeeping."""

import pytest

from repro.core.stats import JoinStatistics
from repro.filters.qgram import QGramOutcome


class TestTimers:
    def test_timer_created_on_demand_and_reused(self):
        stats = JoinStatistics()
        first = stats.timer("qgram")
        assert stats.timer("qgram") is first

    def test_seconds_zero_for_unknown_stage(self):
        assert JoinStatistics().seconds("nope") == 0.0

    def test_filtering_seconds_aggregates_stages(self):
        stats = JoinStatistics()
        stats.timer("qgram").add(1.0)
        stats.timer("frequency").add(0.5)
        stats.timer("cdf").add(0.25)
        stats.timer("index").add(0.25)
        stats.timer("verification").add(9.0)
        assert stats.filtering_seconds == pytest.approx(2.0)
        assert stats.verification_seconds == pytest.approx(9.0)

    def test_summary_mentions_all_counters(self):
        stats = JoinStatistics(total_strings=5, result_pairs=2)
        text = stats.summary()
        for fragment in ("strings", "qgram", "frequency", "cdf", "result pairs"):
            assert fragment in text


class TestQGramOutcome:
    def test_segment_count(self):
        outcome = QGramOutcome(
            alphas=(0.5, 0.0, 1.0), matched_segments=2, required=2, upper=0.5
        )
        assert outcome.segment_count == 3

    def test_decision_reasons_are_informative(self):
        failing = QGramOutcome(
            alphas=(0.0, 0.0, 0.0), matched_segments=0, required=2, upper=0.0
        )
        assert "Lemma 4" in failing.decision(0.1).reason
        bounded = QGramOutcome(
            alphas=(0.3, 0.3, 0.3), matched_segments=3, required=2, upper=0.05
        )
        assert "Theorem 2" in bounded.decision(0.1).reason


class TestMerge:
    def test_counters_summed_and_timers_folded(self):
        a = JoinStatistics(total_strings=5, result_pairs=1)
        a.qgram_survivors = 3
        a.verifications = 2
        a.timer("qgram").add(1.0)
        a.timer("total").add(9.0)
        b = JoinStatistics(total_strings=7, result_pairs=4)
        b.qgram_survivors = 4
        b.verifications = 1
        b.length_survivors = 6
        b.timer("qgram").add(0.5)
        b.timer("verification").add(2.0)
        b.timer("total").add(3.0)
        a.merge(b)
        assert a.qgram_survivors == 7
        assert a.verifications == 3
        assert a.length_survivors == 6
        assert a.seconds("qgram") == pytest.approx(1.5)
        assert a.seconds("verification") == pytest.approx(2.0)
        # wall clock is the merging driver's own measurement
        assert a.seconds("total") == pytest.approx(9.0)
        # total_strings / result_pairs are the caller's responsibility
        assert a.total_strings == 5
        assert a.result_pairs == 1

    def test_include_total_folds_the_total_stopwatch(self):
        a = JoinStatistics()
        a.timer("total").add(1.0)
        b = JoinStatistics()
        b.timer("total").add(2.0)
        a.merge(b, include_total=True)
        assert a.seconds("total") == pytest.approx(3.0)

    def test_merge_covers_every_declared_counter(self):
        a = JoinStatistics()
        b = JoinStatistics()
        for name in JoinStatistics.MERGE_COUNTERS:
            setattr(b, name, 2)
        a.merge(b)
        for name in JoinStatistics.MERGE_COUNTERS:
            assert getattr(a, name) == 2, name


class TestNoQGramSummary:
    """Regression: length-filter output must not masquerade as q-gram."""

    def _join_stats(self, algorithm):
        import random

        from repro.core.config import JoinConfig
        from repro.core.join import similarity_join
        from tests.helpers import random_collection

        rng = random.Random(11)
        collection = random_collection(rng, 10, length_range=(4, 6))
        config = JoinConfig.for_algorithm(algorithm, k=1, tau=0.1, q=2)
        return similarity_join(collection, config).stats

    def test_qgram_disabled_uses_length_counter(self):
        stats = self._join_stats("FCT")
        assert stats.qgram_survivors == 0
        assert stats.qgram_rejected == 0
        assert stats.length_survivors > 0
        # with k=1 over a dense length range the filter passes everything
        assert stats.length_survivors == stats.length_eligible_pairs

    def test_summary_labels_length_filter_line(self):
        stats = self._join_stats("FCT")
        text = stats.summary()
        assert "length survivors" in text
        assert "no q-gram index" in text
        assert "qgram survivors:      0 (rejected 0)" in text

    def test_qgram_enabled_does_not_touch_length_counter(self):
        stats = self._join_stats("QFCT")
        assert stats.length_survivors == 0
        assert "length survivors" not in stats.summary()
