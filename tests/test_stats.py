"""Tests for JoinStatistics bookkeeping."""

import pytest

from repro.core.stats import JoinStatistics
from repro.filters.qgram import QGramOutcome


class TestTimers:
    def test_timer_created_on_demand_and_reused(self):
        stats = JoinStatistics()
        first = stats.timer("qgram")
        assert stats.timer("qgram") is first

    def test_seconds_zero_for_unknown_stage(self):
        assert JoinStatistics().seconds("nope") == 0.0

    def test_filtering_seconds_aggregates_stages(self):
        stats = JoinStatistics()
        stats.timer("qgram").add(1.0)
        stats.timer("frequency").add(0.5)
        stats.timer("cdf").add(0.25)
        stats.timer("index").add(0.25)
        stats.timer("verification").add(9.0)
        assert stats.filtering_seconds == pytest.approx(2.0)
        assert stats.verification_seconds == pytest.approx(9.0)

    def test_summary_mentions_all_counters(self):
        stats = JoinStatistics(total_strings=5, result_pairs=2)
        text = stats.summary()
        for fragment in ("strings", "qgram", "frequency", "cdf", "result pairs"):
            assert fragment in text


class TestQGramOutcome:
    def test_segment_count(self):
        outcome = QGramOutcome(
            alphas=(0.5, 0.0, 1.0), matched_segments=2, required=2, upper=0.5
        )
        assert outcome.segment_count == 3

    def test_decision_reasons_are_informative(self):
        failing = QGramOutcome(
            alphas=(0.0, 0.0, 0.0), matched_segments=0, required=2, upper=0.0
        )
        assert "Lemma 4" in failing.decision(0.1).reason
        bounded = QGramOutcome(
            alphas=(0.3, 0.3, 0.3), matched_segments=3, required=2, upper=0.05
        )
        assert "Theorem 2" in bounded.decision(0.1).reason
