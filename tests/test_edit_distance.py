"""Tests for the edit-distance kernels."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.edit import (
    edit_distance,
    edit_distance_banded,
    edit_distance_within,
)

WORDS = st.text(alphabet="abc", min_size=0, max_size=10)


class TestEditDistance:
    @pytest.mark.parametrize(
        "left, right, expected",
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("gumbo", "gambol", 2),
            ("identical", "identical", 0),
            ("abc", "cba", 2),
            ("ab", "ba", 2),
        ],
    )
    def test_known_distances(self, left, right, expected):
        assert edit_distance(left, right) == expected

    def test_symmetry(self):
        assert edit_distance("abcde", "badec") == edit_distance("badec", "abcde")

    @given(WORDS, WORDS)
    @settings(max_examples=150)
    def test_metric_properties(self, a, b):
        d = edit_distance(a, b)
        assert d == edit_distance(b, a)
        assert (d == 0) == (a == b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(WORDS, WORDS, WORDS)
    @settings(max_examples=100)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @given(WORDS, WORDS, st.text(alphabet="abc", min_size=1, max_size=3))
    @settings(max_examples=100)
    def test_prefix_append_changes_distance_boundedly(self, a, b, suffix):
        base = edit_distance(a, b)
        assert edit_distance(a + suffix, b) <= base + len(suffix)


class TestBandedKernel:
    @given(WORDS, WORDS, st.integers(min_value=0, max_value=5))
    @settings(max_examples=200)
    def test_agrees_with_full_dp(self, a, b, k):
        full = edit_distance(a, b)
        banded = edit_distance_banded(a, b, k)
        if full <= k:
            assert banded == full
        else:
            assert banded == k + 1

    def test_length_gap_shortcut(self):
        assert edit_distance_banded("a", "abcdef", 2) == 3

    def test_k_zero_is_equality_test(self):
        assert edit_distance_banded("abc", "abc", 0) == 0
        assert edit_distance_banded("abc", "abd", 0) == 1

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            edit_distance_banded("a", "b", -1)


class TestWithinPredicate:
    @given(WORDS, WORDS, st.integers(min_value=0, max_value=4))
    @settings(max_examples=150)
    def test_matches_definition(self, a, b, k):
        assert edit_distance_within(a, b, k) == (edit_distance(a, b) <= k)

    def test_early_termination_on_long_dissimilar_strings(self):
        # Behavior check (timing is benchmarked, not asserted): wildly
        # different long strings must come back False.
        rng = random.Random(0)
        a = "".join(rng.choice("ab") for _ in range(500))
        b = "".join(rng.choice("yz") for _ in range(500))
        assert not edit_distance_within(a, b, 3)
