"""Tests for the two-collection (R-S) join."""

import random

import pytest

from repro.core.config import JoinConfig
from repro.core.join_two import similarity_join_two
from repro.distance.probability import edit_similarity_probability
from repro.uncertain.string import UncertainString

from tests.helpers import random_collection


def brute_two(left, right, k, tau):
    out = set()
    for i, r in enumerate(left):
        for j, s in enumerate(right):
            if abs(len(r) - len(s)) > k:
                continue
            if edit_similarity_probability(r, s, k) > tau:
                out.add((i, j))
    return out


class TestCorrectness:
    @pytest.mark.parametrize("algorithm", ["QFCT", "FCT"])
    def test_matches_brute_force(self, algorithm):
        rng = random.Random(len(algorithm) * 7)
        left = random_collection(rng, 8, length_range=(4, 7))
        right = random_collection(rng, 10, length_range=(4, 7))
        config = JoinConfig.for_algorithm(algorithm, k=1, tau=0.1, q=2)
        outcome = similarity_join_two(left, right, config)
        assert outcome.id_pairs() == brute_two(left, right, 1, 0.1)

    def test_pair_ids_reference_their_collections(self):
        a = UncertainString.from_text("ACGT")
        b = UncertainString.from_text("ACGA")
        outcome = similarity_join_two([a], [b, a], JoinConfig(k=1, tau=0.5, q=2))
        assert outcome.id_pairs() == {(0, 0), (0, 1)}

    def test_not_symmetric_in_id_spaces(self):
        # Unlike the self-join there is no left_id < right_id constraint.
        a = UncertainString.from_text("AAAA")
        outcome = similarity_join_two([a, a], [a], JoinConfig(k=0, tau=0.5, q=2))
        assert outcome.id_pairs() == {(0, 0), (1, 0)}

    def test_probabilities_reported(self):
        rng = random.Random(5)
        left = random_collection(rng, 5, length_range=(4, 6))
        right = random_collection(rng, 6, length_range=(4, 6))
        config = JoinConfig(k=2, tau=0.1, q=2, report_probabilities=True)
        outcome = similarity_join_two(left, right, config)
        for pair in outcome.pairs:
            expected = edit_similarity_probability(
                left[pair.left_id], right[pair.right_id], 2
            )
            assert pair.probability == pytest.approx(expected, abs=1e-9)


class TestStats:
    def test_statistics_accumulated_across_queries(self):
        rng = random.Random(2)
        left = random_collection(rng, 6, length_range=(4, 6))
        right = random_collection(rng, 8, length_range=(4, 6))
        outcome = similarity_join_two(left, right, JoinConfig(k=1, tau=0.1, q=2))
        stats = outcome.stats
        assert stats.total_strings == 14
        assert stats.result_pairs == len(outcome.pairs)
        assert stats.total_seconds > 0
        assert stats.frequency_checked >= stats.frequency_survivors

    def test_empty_sides(self):
        config = JoinConfig(k=1, tau=0.1)
        assert similarity_join_two([], [], config).pairs == []
        a = [UncertainString.from_text("ACGT")]
        assert similarity_join_two(a, [], config).pairs == []
        assert similarity_join_two([], a, config).pairs == []
