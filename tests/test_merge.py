"""Tests for the sorted-posting merges of Section 4."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.merge import join_sorted_lists, merge_weighted_postings


def dict_reference_merge(lists):
    out = {}
    for weight, postings in lists:
        for string_id, prob in postings:
            out[string_id] = out.get(string_id, 0.0) + weight * prob
    return out


POSTING_LISTS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            ),
            max_size=10,
        ).map(lambda ps: sorted({i: p for i, p in ps}.items())),
    ),
    max_size=6,
)


class TestMergeWeightedPostings:
    def test_empty(self):
        assert merge_weighted_postings([]) == []

    def test_single_list_scaled_by_weight(self):
        merged = merge_weighted_postings([(0.5, [(1, 0.4), (7, 1.0)])])
        assert merged == [(1, pytest.approx(0.2)), (7, pytest.approx(0.5))]

    def test_union_accumulates_across_lists(self):
        merged = merge_weighted_postings(
            [
                (1.0, [(1, 0.5), (3, 0.5)]),
                (0.5, [(1, 1.0), (2, 1.0)]),
            ]
        )
        assert merged == [
            (1, pytest.approx(1.0)),
            (2, pytest.approx(0.5)),
            (3, pytest.approx(0.5)),
        ]

    @given(POSTING_LISTS)
    @settings(max_examples=150)
    def test_matches_dict_reference(self, lists):
        merged = merge_weighted_postings(lists)
        reference = dict_reference_merge(lists)
        assert [i for i, _ in merged] == sorted(reference)
        for string_id, alpha in merged:
            assert alpha == pytest.approx(reference[string_id], abs=1e-9)

    @given(POSTING_LISTS)
    @settings(max_examples=60)
    def test_output_sorted_and_unique(self, lists):
        merged = merge_weighted_postings(lists)
        ids = [i for i, _ in merged]
        assert ids == sorted(set(ids))


class TestJoinSortedLists:
    def test_tags_segment_indices(self):
        joined = join_sorted_lists(
            [
                [(1, 0.5), (2, 0.25)],
                [],
                [(2, 0.75)],
            ]
        )
        assert joined == [
            (1, [(0, 0.5)]),
            (2, [(0, 0.25), (2, 0.75)]),
        ]

    def test_counts_support_lemma5(self):
        rng = random.Random(3)
        lists = []
        membership = {}
        for segment in range(4):
            postings = []
            for string_id in range(10):
                if rng.random() < 0.4:
                    postings.append((string_id, rng.random()))
                    membership.setdefault(string_id, set()).add(segment)
            lists.append(postings)
        joined = dict(join_sorted_lists(lists))
        for string_id, segments in membership.items():
            assert {seg for seg, _ in joined[string_id]} == segments

    def test_empty_lists(self):
        assert join_sorted_lists([[], []]) == []

    def test_no_lists(self):
        assert join_sorted_lists([]) == []

    def test_disjoint_segments_one_tag_each(self):
        # Non-overlapping segment lists: every id surfaces exactly once,
        # tagged with exactly its own segment, in global id order.
        joined = join_sorted_lists(
            [
                [(4, 0.9), (9, 0.1)],
                [(2, 0.3)],
                [(7, 0.6)],
            ]
        )
        assert joined == [
            (2, [(1, 0.3)]),
            (4, [(0, 0.9)]),
            (7, [(2, 0.6)]),
            (9, [(0, 0.1)]),
        ]

    def test_id_in_every_segment(self):
        joined = join_sorted_lists([[(5, 0.1)], [(5, 0.2)], [(5, 0.3)]])
        assert joined == [(5, [(0, 0.1), (1, 0.2), (2, 0.3)])]


class TestMergeEdgeCases:
    """The operand shapes the ISSUE calls out, pinned directly."""

    def test_all_operands_empty(self):
        assert merge_weighted_postings([(1.0, []), (0.5, [])]) == []

    def test_empty_operands_among_nonempty(self):
        merged = merge_weighted_postings(
            [(1.0, []), (0.5, [(3, 1.0)]), (0.25, [])]
        )
        assert merged == [(3, 0.5)]

    def test_zero_weight_operand_still_surfaces_ids(self):
        # A zero-weight list contributes alpha 0 but must still emit the
        # id: downstream segment counting treats presence as a match.
        merged = merge_weighted_postings([(0.0, [(2, 1.0)])])
        assert merged == [(2, 0.0)]

    def test_duplicate_id_across_all_operands_emitted_once(self):
        merged = merge_weighted_postings(
            [(0.5, [(1, 0.2)]), (0.25, [(1, 0.4)]), (1.0, [(1, 0.1)])]
        )
        assert len(merged) == 1
        string_id, alpha = merged[0]
        assert string_id == 1
        assert alpha == pytest.approx(0.5 * 0.2 + 0.25 * 0.4 + 1.0 * 0.1)

    def test_accumulation_order_is_operand_order(self):
        # Byte-identity across index backends hinges on this: for a tied
        # id the heap pops operands in list order, so the alpha sum is
        # the exact left-to-right float sum — not merely approximately
        # equal. Weights are chosen so the sum rounds differently under
        # reassociation.
        lists = [
            (0.1, [(0, 0.3)]),
            (0.2, [(0, 0.7)]),
            (0.3, [(0, 0.9)]),
        ]
        expected = 0.0
        for weight, postings in lists:
            expected += weight * postings[0][1]
        [(string_id, alpha)] = merge_weighted_postings(lists)
        assert string_id == 0
        assert alpha == expected  # bit-exact, not approx
