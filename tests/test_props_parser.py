"""Hypothesis round-trip tests for the uncertain-string text format."""

import pytest
from hypothesis import given, settings

from repro.uncertain.parser import format_uncertain, parse_uncertain

from tests.helpers import uncertain_strings


class TestRoundTrip:
    @given(uncertain_strings(alphabet="ACGT", max_length=8, max_uncertain=4))
    @settings(max_examples=200)
    def test_format_parse_preserves_distributions(self, string):
        again = parse_uncertain(format_uncertain(string, precision=12))
        assert len(again) == len(string)
        for pos_a, pos_b in zip(string, again):
            # Order may flip for probabilities that become exact ties
            # after rounding; the distribution itself must be preserved.
            assert set(pos_a.chars) == set(pos_b.chars)
            for char in pos_a.chars:
                assert pos_b.probability(char) == pytest.approx(
                    pos_a.probability(char), abs=1e-9
                )

    @given(uncertain_strings(alphabet="ACGT", max_length=6, max_uncertain=3))
    @settings(max_examples=100)
    def test_round_trip_preserves_world_probabilities(self, string):
        again = parse_uncertain(format_uncertain(string, precision=12))
        for world in string.support_strings():
            assert again.instance_probability(world) == pytest.approx(
                string.instance_probability(world), abs=1e-9
            )

    @given(uncertain_strings(alphabet="ACGT", max_length=6, max_uncertain=2))
    @settings(max_examples=100)
    def test_formatted_text_has_balanced_braces(self, string):
        text = format_uncertain(string)
        assert text.count("{") == text.count("}")
        assert text.count("(") == text.count(")")
