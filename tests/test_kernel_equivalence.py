"""Property tests: optimized kernels vs. frozen reference kernels.

The PR-5 rewrites (flat-buffer CDF DP, two-row banded edit distance,
merged-support frequency bounds, certain×certain fast path) claim to be
pure mechanical optimizations. These tests hold them to the strongest
version of that claim: **float-for-float equality** (``==``, never
``approx``) against the pre-optimization copies frozen in
``tests/helpers.py``, over randomized θ/γ/k workloads.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.context import StringFeatures
from repro.distance.edit import edit_distance, edit_distance_banded
from repro.filters.cdf import cdf_bounds
from repro.filters.frequency import (
    FrequencyProfile,
    expected_negative,
    expected_positive_negative,
    fd_lower_bound,
    merged_support,
)
from repro.verify.naive import naive_verify

from tests.helpers import (
    random_uncertain,
    reference_cdf_bounds,
    reference_edit_distance_banded,
    reference_expected_negative,
    reference_expected_positive_negative,
    reference_fd_lower_bound,
    uncertain_strings,
)

KS = st.integers(min_value=0, max_value=3)

STRINGS = uncertain_strings(alphabet="ACGT", min_length=1, max_length=7)

PROP = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestCdfBoundsEquivalence:
    @given(STRINGS, STRINGS, KS)
    @PROP
    def test_matches_reference_bit_for_bit(self, left, right, k):
        assert cdf_bounds(left, right, k) == reference_cdf_bounds(
            left, right, k
        )

    @given(STRINGS, STRINGS, KS)
    @PROP
    def test_features_do_not_change_the_answer(self, left, right, k):
        plain = cdf_bounds(left, right, k)
        with_features = cdf_bounds(
            left,
            right,
            k,
            left_features=StringFeatures(left),
            right_features=StringFeatures(right),
        )
        assert with_features == plain

    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_randomized_theta_gamma_sweep(self, k):
        rng = random.Random(5150 + k)
        for theta in (0.0, 0.2, 0.6, 1.0):
            for gamma in (2, 3):
                for _ in range(12):
                    left = random_uncertain(
                        rng, rng.randint(1, 9), theta=theta, gamma=gamma
                    )
                    right = random_uncertain(
                        rng, rng.randint(1, 9), theta=theta, gamma=gamma
                    )
                    assert cdf_bounds(left, right, k) == reference_cdf_bounds(
                        left, right, k
                    ), (left, right, k)


class TestCertainFastPath:
    """Certain×certain pairs short-circuit to the banded integer kernel."""

    @given(
        st.text(alphabet="ACGT", min_size=1, max_size=9),
        st.text(alphabet="ACGT", min_size=1, max_size=9),
        KS,
    )
    @PROP
    def test_equals_reference_dp_on_certain_pairs(self, a, b, k):
        from repro.uncertain.string import UncertainString

        left = UncertainString.from_text(a)
        right = UncertainString.from_text(b)
        assert cdf_bounds(left, right, k) == reference_cdf_bounds(
            left, right, k
        )

    @given(
        st.text(alphabet="AC", min_size=1, max_size=7),
        st.text(alphabet="AC", min_size=1, max_size=7),
        st.integers(min_value=0, max_value=2),
    )
    @PROP
    def test_agrees_with_naive_verify(self, a, b, k):
        """For one-world strings the bounds ARE the exact probability."""
        from repro.uncertain.string import UncertainString

        left = UncertainString.from_text(a)
        right = UncertainString.from_text(b)
        lower, upper = cdf_bounds(left, right, k)
        exact = naive_verify(left, right, k)
        assert lower[k] == exact
        assert upper[k] == exact


class TestBandedEditEquivalence:
    @given(
        st.text(alphabet="abcd", max_size=12),
        st.text(alphabet="abcd", max_size=12),
        st.integers(min_value=0, max_value=4),
    )
    @PROP
    def test_matches_reference(self, a, b, k):
        assert edit_distance_banded(a, b, k) == reference_edit_distance_banded(
            a, b, k
        )

    @given(
        st.text(alphabet="ab", max_size=9),
        st.text(alphabet="ab", max_size=9),
        st.integers(min_value=0, max_value=4),
    )
    @PROP
    def test_matches_full_dp_within_band(self, a, b, k):
        banded = edit_distance_banded(a, b, k)
        exact = edit_distance(a, b)
        assert banded == (exact if exact <= k else k + 1)


class TestFrequencyEquivalence:
    @staticmethod
    def _profiles(seed):
        rng = random.Random(seed)
        return [
            FrequencyProfile(
                random_uncertain(
                    rng,
                    rng.randint(1, 8),
                    theta=rng.choice([0.0, 0.3, 0.8]),
                    gamma=rng.choice([2, 3]),
                )
            )
            for _ in range(20)
        ]

    def test_merged_support_equals_sorted_union(self):
        profiles = self._profiles(901)
        for left in profiles:
            for right in profiles:
                assert list(merged_support(left, right)) == sorted(
                    left.chars() | right.chars()
                )

    def test_fd_lower_bound_matches_reference(self):
        profiles = self._profiles(902)
        for left in profiles:
            for right in profiles:
                assert fd_lower_bound(left, right) == reference_fd_lower_bound(
                    left, right
                )

    def test_expected_negative_matches_reference_floats(self):
        profiles = self._profiles(903)
        for left in profiles:
            for right in profiles:
                assert expected_negative(left, right) == (
                    reference_expected_negative(left, right)
                )

    def test_expected_positive_negative_matches_reference_floats(self):
        profiles = self._profiles(904)
        for left in profiles:
            for right in profiles:
                assert expected_positive_negative(left, right) == (
                    reference_expected_positive_negative(left, right)
                )
