"""Failure injection: malformed inputs must fail loudly, never corrupt.

Database components are judged by how they behave on bad input; these
tests pin down the error contract of the public surface.
"""

import math

import pytest

from repro.core.config import JoinConfig
from repro.core.errors import DatasetRecordError, ReproError
from repro.core.join import similarity_join
from repro.datasets.loader import load_collection
from repro.filters.frequency import poisson_binomial_pmf
from repro.index.inverted import SegmentInvertedIndex
from repro.uncertain.parser import UncertainStringSyntaxError, parse_uncertain
from repro.uncertain.position import UncertainPosition
from repro.uncertain.string import UncertainString
from repro.util.rng import ensure_rng
from repro.util.timing import Stopwatch


class TestBadDistributions:
    def test_nan_probability_rejected(self):
        with pytest.raises(ValueError):
            UncertainPosition({"A": math.nan, "C": 0.5})

    def test_infinite_probability_rejected(self):
        with pytest.raises(ValueError):
            UncertainPosition({"A": math.inf})

    def test_tiny_leak_rejected(self):
        with pytest.raises(ValueError):
            UncertainPosition({"A": 0.5, "C": 0.49})  # sums to 0.99

    def test_empty_uncertain_string_joins_cleanly(self):
        # Zero-length strings are odd but legal; the pipeline must not
        # crash on them.
        empty = UncertainString([])
        other = UncertainString.from_text("A")
        outcome = similarity_join([empty, other], JoinConfig(k=1, tau=0.5, q=2))
        assert outcome.id_pairs() == {(0, 1)}


class TestBadFiles:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_collection(tmp_path / "nope.txt")

    def test_corrupt_line_reports_file_record_and_column(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("ACGT\nA{(C,0.5)\n")
        with pytest.raises(DatasetRecordError) as excinfo:
            load_collection(path)
        error = excinfo.value
        assert error.path == str(path)
        assert error.record == 2
        assert error.column == 1  # the unterminated '{'
        assert "offset" in str(error)
        assert isinstance(error.__cause__, UncertainStringSyntaxError)

    def test_probability_overflow_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("A{(C,0.9),(G,0.9)}\n")
        with pytest.raises(DatasetRecordError):
            load_collection(path)


class TestIndexMisuse:
    def test_out_of_order_insert_detected(self):
        index = SegmentInvertedIndex(k=1, q=2)
        index.add(5, UncertainString.from_text("ACGTA"))
        with pytest.raises(ValueError, match="ascending"):
            index.add(5, UncertainString.from_text("ACGTA"))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SegmentInvertedIndex(k=-1)
        with pytest.raises(ValueError):
            SegmentInvertedIndex(k=1, q=0)


class TestUtilityContracts:
    def test_rng_rejects_garbage(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")  # type: ignore[arg-type]

    def test_stopwatch_rejects_negative_add(self):
        with pytest.raises(ValueError):
            Stopwatch().add(-1.0)

    def test_poisson_binomial_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            poisson_binomial_pmf([-0.1])

    def test_parse_error_is_value_error(self):
        # Callers catching ValueError must catch syntax errors too.
        assert issubclass(UncertainStringSyntaxError, ValueError)
        with pytest.raises(ValueError):
            parse_uncertain("{(")

    def test_dataset_record_error_is_value_error_and_repro_error(self):
        # The taxonomy keeps the historical ValueError contract: a
        # caller catching either base sees malformed-record failures.
        assert issubclass(DatasetRecordError, ValueError)
        assert issubclass(DatasetRecordError, ReproError)
