"""Out-of-core index store: unit and parity tests (DESIGN.md §6i).

Three layers:

* store-level unit tests — build/open round-trips, header validation,
  crash-safe builds, rank-limited posting cuts, pickling by path,
  bounded caches;
* MemoryStore ↔ SqliteStore equivalence — the reference image and the
  SQLite file must answer every store query identically;
* golden-grid parity — the store-backed drivers must reproduce the
  committed ``tests/data/golden_driver_outputs.json`` byte-for-byte
  across every algorithm variant × k, like every other driver.
"""

import json
import os
import pickle
import random
import sqlite3
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core.config import JoinConfig
from repro.core.engine import JoinEngine
from repro.core.errors import (
    CheckpointCorruptError,
    CheckpointMismatchError,
    ConfigurationError,
)
from repro.core.join import similarity_join
from repro.core.merge import merge_run
from repro.core.search import SimilaritySearcher
from repro.core.topk import top_k_join
from repro.store import (
    MemoryStore,
    SqliteStore,
    StoreCollection,
    StoreContext,
    StoreIndexSource,
    StoreStringCache,
    build_sqlite_store,
    collection_digest,
    parallel_store_join,
    store_similarity_join,
)
from repro.uncertain.parser import format_uncertain

from tests import equivalence_spec as spec
from tests.helpers import random_collection

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "golden_driver_outputs.json").read_text()
)
GRID = list(spec.config_grid())
KEYS = [key for key, _ in GRID]

K, Q = 2, 2


def canonical(strings):
    return [format_uncertain(s, precision=17) for s in strings]


@pytest.fixture(scope="module")
def collection():
    return random_collection(random.Random(977), 60, length_range=(3, 12))


@pytest.fixture(scope="module")
def memory_store(collection):
    return MemoryStore(collection, k=K, q=Q)


@pytest.fixture(scope="module")
def sqlite_store(collection, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "index.db"
    build_sqlite_store(iter(collection), path, k=K, q=Q)
    return SqliteStore(path)


@pytest.fixture(params=["memory", "sqlite"])
def store(request, memory_store, sqlite_store):
    return memory_store if request.param == "memory" else sqlite_store


class TestStoreBuild:
    def test_meta_matches_reference(self, memory_store, sqlite_store):
        assert sqlite_store.meta == memory_store.meta

    def test_digest_is_canonical_sha(self, collection, sqlite_store):
        assert sqlite_store.meta.digest == collection_digest(collection)

    def test_counts(self, collection, store):
        assert len(store) == len(collection)
        assert store.meta.count == len(collection)
        assert store.meta.entry_count > 0

    def test_empty_collection(self, tmp_path):
        path = tmp_path / "empty.db"
        meta = build_sqlite_store(iter(()), path, k=1, q=2)
        assert (meta.count, meta.entry_count) == (0, 0)
        store = SqliteStore(path)
        assert len(store) == 0
        assert list(store.ids_in_visit_order()) == []
        outcome = store_similarity_join(store, JoinConfig(k=1, tau=0.1, q=2))
        assert outcome.pairs == []

    def test_invalid_parameters(self, tmp_path):
        with pytest.raises(ValueError, match="k must be non-negative"):
            build_sqlite_store(iter(()), tmp_path / "x.db", k=-1, q=2)
        with pytest.raises(ValueError, match="q must be positive"):
            build_sqlite_store(iter(()), tmp_path / "x.db", k=1, q=0)

    def test_crash_mid_build_leaves_no_store(self, collection, tmp_path):
        path = tmp_path / "index.db"

        def exploding():
            yield from collection[:5]
            raise RuntimeError("ingest died")

        with pytest.raises(RuntimeError, match="ingest died"):
            build_sqlite_store(exploding(), path, k=K, q=Q)
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_rebuild_replaces_atomically(self, collection, tmp_path):
        path = tmp_path / "index.db"
        build_sqlite_store(iter(collection[:10]), path, k=K, q=Q)
        first = SqliteStore(path).meta
        build_sqlite_store(iter(collection), path, k=K, q=Q)
        second = SqliteStore(path).meta
        assert first.count == 10 and second.count == len(collection)
        assert list(tmp_path.iterdir()) == [path]


class TestStoreOpen:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SqliteStore(tmp_path / "absent.db")

    def test_not_a_database(self, tmp_path):
        path = tmp_path / "garbage.db"
        path.write_bytes(b"not a sqlite file, not even close" * 40)
        with pytest.raises(CheckpointCorruptError):
            SqliteStore(path)

    def test_database_without_store_header(self, tmp_path):
        path = tmp_path / "other.db"
        connection = sqlite3.connect(path)
        connection.execute("CREATE TABLE t (x INTEGER)")
        connection.commit()
        connection.close()
        with pytest.raises(CheckpointCorruptError):
            SqliteStore(path)

    @pytest.mark.parametrize("key,value", [("magic", "nope"), ("format", "999")])
    def test_bad_header_field(self, collection, tmp_path, key, value):
        path = tmp_path / "index.db"
        build_sqlite_store(iter(collection[:5]), path, k=K, q=Q)
        connection = sqlite3.connect(path)
        connection.execute(
            "UPDATE meta SET value = ? WHERE key = ?", (value, key)
        )
        connection.commit()
        connection.close()
        with pytest.raises(CheckpointCorruptError):
            SqliteStore(path)

    def test_cache_size_validated(self, collection, tmp_path):
        path = tmp_path / "index.db"
        build_sqlite_store(iter(collection[:5]), path, k=K, q=Q)
        with pytest.raises(ValueError, match="cache_size"):
            SqliteStore(path, cache_size=0)


class TestStoreCompatibility:
    def test_qgram_mismatch_rejected(self, store):
        with pytest.raises(CheckpointMismatchError, match="rebuild"):
            store.meta.check_compatible(JoinConfig(k=K + 1, tau=0.1, q=Q))

    def test_matching_config_accepted(self, store):
        store.meta.check_compatible(JoinConfig(k=K, tau=0.1, q=Q))

    def test_non_qgram_config_ignores_kq(self, store):
        config = JoinConfig(k=K + 1, tau=0.1, q=Q + 1, filters=("frequency", "cdf"))
        assert not config.uses_qgram
        store.meta.check_compatible(config)


class TestStoreEquivalence:
    """MemoryStore and SqliteStore must answer identically."""

    def test_visit_order(self, memory_store, sqlite_store):
        assert list(sqlite_store.ids_in_visit_order()) == list(
            memory_store.ids_in_visit_order()
        )
        assert list(sqlite_store.lengths_in_visit_order()) == list(
            memory_store.lengths_in_visit_order()
        )

    def test_string_hydration_is_float_exact(
        self, collection, memory_store, sqlite_store
    ):
        n = len(collection)
        assert canonical(sqlite_store.strings_at_ranks(0, n)) == canonical(
            memory_store.strings_at_ranks(0, n)
        )
        ids = list(range(0, n, 3))
        got = sqlite_store.strings_by_ids(ids)
        assert canonical([got[i] for i in ids]) == canonical(
            [collection[i] for i in ids]
        )

    def test_posting_lists_at_every_rank_limit(
        self, memory_store, sqlite_store
    ):
        lengths = sorted(set(memory_store.lengths_in_visit_order()))
        count = len(memory_store)
        checked = 0
        for length in lengths:
            words = sorted(
                {
                    word
                    for (l, _), lists in memory_store._lists.items()
                    if l == length
                    for word in lists
                }
            )
            for segment_index in range(4):
                for limit in (0, 1, count // 2, count):
                    expected = memory_store.posting_lists(
                        length, segment_index, words, limit
                    )
                    got = sqlite_store.posting_lists(
                        length, segment_index, words, limit
                    )
                    assert {w: list(p) for w, p in got.items()} == {
                        w: list(p) for w, p in expected.items()
                    }
                    assert sqlite_store.has_segment(
                        length, segment_index, limit
                    ) == memory_store.has_segment(length, segment_index, limit)
                    checked += 1
        assert checked > 0

    def test_pickle_round_trip_carries_path_only(self, sqlite_store):
        payload = pickle.dumps(sqlite_store)
        assert len(payload) < 2000  # no postings, no strings
        clone = pickle.loads(payload)
        assert clone.meta == sqlite_store.meta
        assert list(clone.ids_in_visit_order()) == list(
            sqlite_store.ids_in_visit_order()
        )


class TestStoreStringCache:
    def test_bounded_with_block_readahead(self, collection, sqlite_store):
        cache = StoreStringCache(sqlite_store, capacity=8, read_block=4)
        ranks = list(sqlite_store.ids_in_visit_order())
        for string_id in ranks:  # sequential rank-order scan
            assert format_uncertain(
                cache[string_id], precision=17
            ) == format_uncertain(collection[string_id], precision=17)
        # One fetch per block, never one per string.
        assert cache.fetches == (len(ranks) + 3) // 4
        assert len(cache._entries) <= 8

    def test_prefetch_batches_one_read(self, sqlite_store):
        cache = StoreStringCache(sqlite_store, capacity=64)
        ids = [0, 7, 13, 22]
        cache.prefetch(ids)
        assert cache.fetches == 1
        for string_id in ids:
            cache[string_id]
        assert cache.fetches == 1  # all hits
        cache.prefetch(ids)
        assert cache.fetches == 1  # nothing missing

    def test_take_bypasses_cache(self, collection, sqlite_store):
        cache = StoreStringCache(sqlite_store, capacity=2)
        got = cache.take([5, 1, 9])
        assert canonical(got) == canonical(
            [collection[5], collection[1], collection[9]]
        )
        assert len(cache._entries) == 0


class TestStoreContext:
    def test_features_bounded_and_rebuildable(self, collection):
        context = StoreContext(capacity=4)
        features = [
            context.features(i, collection[i]) for i in range(10)
        ]
        assert len(context._features) == 4
        rebuilt = context.features(0, collection[0])
        assert rebuilt is not features[0]  # evicted, rebuilt fresh
        assert rebuilt.length == features[0].length

    def test_negative_ids_stay_fresh(self, collection):
        context = StoreContext(capacity=4)
        assert context.features(-1, collection[0]) is not context.features(
            -1, collection[0]
        )
        assert len(context._features) == 0


class TestStoreIndexSource:
    def test_visit_order_enforced(self, store):
        config = JoinConfig(k=K, tau=0.1, q=Q)
        source = StoreIndexSource(config, store)
        ids = list(store.ids_in_visit_order())
        with pytest.raises(ConfigurationError, match="visit order"):
            source.register(ids[1], 5)

    def test_engine_rejects_store_plus_index(self, store):
        from repro.index.inverted import SegmentInvertedIndex

        config = JoinConfig(k=K, tau=0.1, q=Q)
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            JoinEngine(
                config, index=SegmentInvertedIndex(k=K, q=Q), store=store
            )

    def test_engine_rejects_orphan_store_cache(self, store):
        config = JoinConfig(k=K, tau=0.1, q=Q)
        cache = StoreStringCache(store)
        with pytest.raises(ConfigurationError, match="store_cache"):
            JoinEngine(config, store_cache=cache)


class TestDriverParity:
    """Store-backed drivers vs the in-memory reference, same collection."""

    @pytest.fixture(scope="class")
    def reference(self, collection):
        return similarity_join(collection, JoinConfig(k=K, tau=0.15, q=Q))

    def test_serial_join(self, collection, store, reference):
        outcome = store_similarity_join(store, JoinConfig(k=K, tau=0.15, q=Q))
        assert outcome.pairs == reference.pairs

    def test_serial_join_tiny_cache(self, collection, sqlite_store):
        small = SqliteStore(sqlite_store.path, cache_size=4)
        config = JoinConfig(k=K, tau=0.15, q=Q)
        assert (
            store_similarity_join(small, config).pairs
            == similarity_join(collection, config).pairs
        )

    def test_non_qgram_filter_stack(self, collection, store):
        config = JoinConfig(k=K, tau=0.15, q=Q, filters=("frequency", "cdf"))
        assert (
            store_similarity_join(store, config).pairs
            == similarity_join(collection, config).pairs
        )

    def test_parallel_join(self, collection, store, reference):
        config = JoinConfig(k=K, tau=0.15, q=Q, workers=3)
        outcome = parallel_store_join(
            store, config, use_processes=False, min_parallel=0
        )
        assert outcome.pairs == reference.pairs

    def test_checkpoint_and_resume(self, collection, sqlite_store, tmp_path, reference):
        config = JoinConfig(k=K, tau=0.15, q=Q, workers=2)
        run_dir = str(tmp_path / "run")
        first = parallel_store_join(
            sqlite_store, config, use_processes=False,
            min_parallel=0, run_dir=run_dir,
        )
        resumed = parallel_store_join(
            sqlite_store, config, use_processes=False,
            min_parallel=0, run_dir=run_dir,
        )
        assert first.pairs == reference.pairs
        assert resumed.pairs == reference.pairs

    def test_sharded_join_merges_to_reference(
        self, collection, sqlite_store, tmp_path, reference
    ):
        run_dir = str(tmp_path / "sharded")
        for shard in ("0/2", "1/2"):
            parallel_store_join(
                sqlite_store,
                JoinConfig(
                    k=K, tau=0.15, q=Q, workers=2,
                    shard=shard, checkpoint_dir=run_dir,
                ),
                use_processes=False,
                min_parallel=0,
            )
        assert merge_run(run_dir).pairs == reference.pairs

    def test_search(self, collection, store):
        config = JoinConfig(k=K, tau=0.15, q=Q)
        reference = SimilaritySearcher(collection, config)
        searcher = SimilaritySearcher.from_store(store, config)
        for query in collection[:6]:
            assert (
                searcher.search(query).matches
                == reference.search(query).matches
            )
            # Per-request τ override flows through identically.
            assert (
                searcher.search(query, tau=0.4).matches
                == reference.search(query, tau=0.4).matches
            )

    def test_topk(self, collection, store):
        reference = top_k_join(collection, K, 12, q=Q)
        outcome = top_k_join(None, K, 12, q=Q, store=store)
        assert outcome.pairs == reference.pairs

    def test_topk_needs_exactly_one_input(self, collection, store):
        with pytest.raises(ValueError, match="exactly one"):
            top_k_join(collection, K, 3, q=Q, store=store)
        with pytest.raises(ValueError, match="exactly one"):
            top_k_join(None, K, 3, q=Q)

    def test_store_collection_pickles_by_path(self, sqlite_store):
        facade = StoreCollection(sqlite_store)
        _ = facade[0]  # warm the cache
        clone = pickle.loads(pickle.dumps(facade))
        assert len(clone) == len(facade)
        assert format_uncertain(clone[3], precision=17) == format_uncertain(
            facade[3], precision=17
        )


@pytest.fixture(scope="module")
def golden_stores(tmp_path_factory):
    """One SQLite store per k over the equivalence-spec collection."""
    root = tmp_path_factory.mktemp("golden-stores")
    stores = {}
    for k in spec.KS:
        path = root / f"self-k{k}.db"
        build_sqlite_store(iter(spec.self_collection()), path, k=k, q=spec.Q)
        stores[k] = SqliteStore(path)
    return stores


@pytest.fixture(scope="module")
def golden_search_stores(tmp_path_factory):
    root = tmp_path_factory.mktemp("golden-search-stores")
    stores = {}
    for k in spec.KS:
        path = root / f"search-k{k}.db"
        build_sqlite_store(
            iter(spec.search_collection()), path, k=k, q=spec.Q
        )
        stores[k] = SqliteStore(path)
    return stores


@pytest.mark.parametrize("key,config", GRID, ids=KEYS)
class TestGoldenStoreEquivalence:
    """The store-backed drivers against the committed seed fixture."""

    def test_store_join_serial(self, key, config, golden_stores):
        outcome = store_similarity_join(golden_stores[config.k], config)
        assert spec.encode_pairs(outcome.pairs) == GOLDEN[key]["join"]

    def test_store_join_banded_workers_4(self, key, config, golden_stores):
        outcome = parallel_store_join(
            golden_stores[config.k],
            replace(config, workers=4),
            use_processes=False,
            min_parallel=0,
        )
        assert spec.encode_pairs(outcome.pairs) == GOLDEN[key]["join"]

    def test_store_search(self, key, config, golden_search_stores):
        searcher = SimilaritySearcher.from_store(
            golden_search_stores[config.k], config
        )
        got = [
            spec.encode_matches(searcher.search(query).matches)
            for query in spec.search_queries()
        ]
        assert got == GOLDEN[key]["search"]


class TestCliStore:
    """`--store` end to end: same bytes out of the CLI as a collection."""

    @pytest.fixture()
    def cli_files(self, tmp_path, collection):
        from repro.cli import main
        from repro.datasets.loader import save_collection

        coll_path = tmp_path / "c.txt"
        save_collection(collection, coll_path)
        store_path = tmp_path / "c.store"
        assert main(
            ["index", "build", str(coll_path), "-o", str(store_path),
             "-k", str(K), "-q", str(Q)]
        ) == 0
        return str(coll_path), str(store_path)

    def _run(self, capsys, argv):
        from repro.cli import main

        code = main(argv)
        out = capsys.readouterr().out
        return code, out

    def test_index_info(self, cli_files, capsys, collection):
        _, store_path = cli_files
        code, out = self._run(capsys, ["index", "info", store_path])
        assert code == 0
        fields = dict(line.split("\t") for line in out.splitlines())
        assert fields["strings"] == str(len(collection))
        assert fields["k"] == str(K) and fields["q"] == str(Q)

    def test_join_parity(self, cli_files, capsys):
        coll_path, store_path = cli_files
        base = ["-k", str(K), "--tau", "0.1", "-q", str(Q), "--probabilities"]
        code, expected = self._run(capsys, ["join", coll_path, *base])
        assert code == 0
        code, got = self._run(capsys, ["join", "--store", store_path, *base])
        assert code == 0
        assert got == expected and expected.strip()

    def test_stream_parity(self, cli_files, capsys):
        coll_path, store_path = cli_files
        base = ["-k", str(K), "--tau", "0.1", "-q", str(Q), "--stream"]
        code, expected = self._run(capsys, ["join", coll_path, *base])
        assert code == 0
        code, got = self._run(capsys, ["join", "--store", store_path, *base])
        assert code == 0
        assert got == expected

    def test_search_parity(self, cli_files, capsys, collection):
        coll_path, store_path = cli_files
        query = format_uncertain(collection[5])
        base = ["-k", str(K), "--tau", "0.05", "-q", str(Q),
                "--probabilities"]
        code, expected = self._run(
            capsys, ["search", coll_path, query, *base]
        )
        assert code == 0
        code, got = self._run(
            capsys, ["search", "--store", store_path, query, *base]
        )
        assert code == 0
        assert got == expected

    def test_topk_parity(self, cli_files, capsys):
        coll_path, store_path = cli_files
        base = ["-k", str(K), "--count", "5", "-q", str(Q)]
        code, expected = self._run(capsys, ["topk", coll_path, *base])
        assert code == 0
        code, got = self._run(capsys, ["topk", "--store", store_path, *base])
        assert code == 0
        assert got == expected and expected.strip()

    def test_requires_exactly_one_input(self, cli_files, capsys):
        from repro.cli import main

        coll_path, store_path = cli_files
        base = ["-k", str(K), "--tau", "0.1", "-q", str(Q)]
        assert main(["join", *base]) == 2
        assert main(["join", coll_path, "--store", store_path, *base]) == 2
        capsys.readouterr()

    def test_mismatched_store_is_typed_failure(self, cli_files, capsys):
        from repro.cli import main

        _, store_path = cli_files
        assert main(
            ["join", "--store", store_path, "-k", str(K + 1),
             "--tau", "0.1", "-q", str(Q)]
        ) == 2
        assert "rebuild" in capsys.readouterr().err


class TestServeStore:
    """Store-backed serving: request parity and warm store reload."""

    @pytest.fixture()
    def serve_config(self):
        return JoinConfig.for_algorithm(
            "QFCT", k=K, tau=0.05, q=Q, report_probabilities=True
        )

    def test_from_store_request_parity(
        self, tmp_path, collection, serve_config
    ):
        from repro.serve.service import JoinService

        path = tmp_path / "serve.store"
        build_sqlite_store(iter(collection), path, k=K, q=Q)
        memory = JoinService(collection, serve_config)
        stored = JoinService.from_store(str(path), serve_config)
        for index in (0, 11, 37):
            query = format_uncertain(collection[index])
            assert (
                stored.search(query)["matches"]
                == memory.search(query)["matches"]
            )
            assert (
                stored.topk(query, 4)["matches"]
                == memory.topk(query, 4)["matches"]
            )
            # Non-native k: the per-request source registers from the
            # store's length bookkeeping without hydrating anything.
            assert (
                stored.search(query, k=K - 1)["matches"]
                == memory.search(query, k=K - 1)["matches"]
            )

    def test_from_store_rejects_mismatched_config(
        self, tmp_path, collection, serve_config
    ):
        from repro.serve.service import JoinService

        path = tmp_path / "serve.store"
        build_sqlite_store(iter(collection), path, k=K + 1, q=Q)
        with pytest.raises(CheckpointMismatchError, match="rebuild"):
            JoinService.from_store(str(path), serve_config)

    def test_reload_swaps_store_generations(
        self, tmp_path, collection, serve_config
    ):
        from repro.serve.service import JoinService

        first = tmp_path / "gen0.store"
        build_sqlite_store(iter(collection), first, k=K, q=Q)
        other = random_collection(random.Random(431), 30, length_range=(3, 9))
        second = tmp_path / "gen1.store"
        build_sqlite_store(iter(other), second, k=K, q=Q)

        service = JoinService.from_store(str(first), serve_config)
        document = service.reload(store_path=str(second))
        assert document["reloaded"] is True
        assert document["store"] == str(second)
        assert document["strings"] == len(other)
        assert service.generation == 1
        # Same-path reload re-opens the (atomically replaced) file.
        again = service.reload()
        assert again["reloaded"] is True and again["store"] == str(second)
        # Post-reload answers match a fresh in-memory service.
        memory = JoinService(other, serve_config)
        query = format_uncertain(other[7])
        assert (
            service.search(query)["matches"]
            == memory.search(query)["matches"]
        )
        assert service.status_document()["store"] == str(second)

    def test_failed_store_reload_keeps_generation(
        self, tmp_path, collection, serve_config
    ):
        from repro.serve.service import JoinService

        path = tmp_path / "serve.store"
        build_sqlite_store(iter(collection), path, k=K, q=Q)
        service = JoinService.from_store(str(path), serve_config)
        document = service.reload(store_path=str(tmp_path / "missing.store"))
        assert document["error"]["type"] == "reload_failed"
        assert service.generation == 0
        both = service.reload(
            collection_path=str(tmp_path / "c.txt"),
            store_path=str(path),
        )
        assert both["error"]["type"] == "reload_failed"
        query = format_uncertain(collection[3])
        assert service.search(query)["count"] >= 1
