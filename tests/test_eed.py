"""Tests for expected edit distance (the Jestes et al. measure)."""

import pytest

from repro.distance.eed import expected_edit_distance, sampled_expected_edit_distance
from repro.distance.edit import edit_distance
from repro.uncertain.parser import parse_uncertain
from repro.uncertain.string import UncertainString
from repro.uncertain.worlds import enumerate_joint_worlds


class TestExactEed:
    def test_deterministic_pair_reduces_to_edit_distance(self):
        a = UncertainString.from_text("kitten")
        b = UncertainString.from_text("sitting")
        assert expected_edit_distance(a, b) == pytest.approx(3.0)

    def test_matches_joint_world_definition(self):
        a = parse_uncertain("A{(C,0.5),(G,0.5)}T")
        b = parse_uncertain("{(A,0.7),(T,0.3)}CT")
        expected = sum(
            p * edit_distance(x, y) for x, y, p in enumerate_joint_worlds(a, b)
        )
        assert expected_edit_distance(a, b) == pytest.approx(expected)

    def test_weighted_average_example(self):
        # ed(ACT, ACT)=0 w.p. 0.6, ed(AGT, ACT)=1 w.p. 0.4.
        a = parse_uncertain("A{(C,0.6),(G,0.4)}T")
        b = UncertainString.from_text("ACT")
        assert expected_edit_distance(a, b) == pytest.approx(0.4)

    def test_pair_limit_guard(self):
        a = parse_uncertain("{(A,0.5),(C,0.5)}" * 3)
        with pytest.raises(ValueError, match="refusing"):
            expected_edit_distance(a, a, pair_limit=10)


class TestSampledEed:
    def test_converges_to_exact(self):
        a = parse_uncertain("A{(C,0.6),(G,0.4)}T{(A,0.5),(C,0.5)}")
        b = parse_uncertain("AC{(T,0.8),(G,0.2)}A")
        exact = expected_edit_distance(a, b)
        estimate = sampled_expected_edit_distance(a, b, samples=4000, rng=42)
        assert estimate == pytest.approx(exact, abs=0.08)

    def test_deterministic_pair_has_zero_variance(self):
        a = UncertainString.from_text("AAA")
        b = UncertainString.from_text("AAC")
        assert sampled_expected_edit_distance(a, b, samples=5, rng=1) == 1.0

    def test_rejects_non_positive_samples(self):
        a = UncertainString.from_text("A")
        with pytest.raises(ValueError):
            sampled_expected_edit_distance(a, a, samples=0)
