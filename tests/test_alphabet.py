"""Tests for repro.uncertain.alphabet."""

import pytest

from repro.uncertain.alphabet import DNA, LOWERCASE27, PROTEIN22, Alphabet


class TestAlphabetConstruction:
    def test_symbols_preserved_in_order(self):
        alpha = Alphabet("xyz")
        assert alpha.symbols == ("x", "y", "z")

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="distinct"):
            Alphabet("aab")

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            Alphabet("")

    def test_rejects_multicharacter_symbols(self):
        with pytest.raises(ValueError, match="single"):
            Alphabet(("ab", "c"))  # type: ignore[arg-type]


class TestAlphabetProtocol:
    def test_index_round_trip(self):
        alpha = Alphabet("ACGT")
        for i, symbol in enumerate(alpha):
            assert alpha.index(symbol) == i

    def test_index_missing_raises(self):
        with pytest.raises(KeyError):
            DNA.index("X")

    def test_contains(self):
        assert "A" in DNA
        assert "Z" not in DNA

    def test_len(self):
        assert len(DNA) == 4
        assert len(PROTEIN22) == 22
        assert len(LOWERCASE27) == 27

    def test_equality_and_hash(self):
        assert Alphabet("AC") == Alphabet("AC")
        assert Alphabet("AC") != Alphabet("CA")
        assert hash(Alphabet("AC")) == hash(Alphabet("AC"))

    def test_validate_text_accepts_members(self):
        DNA.validate_text("GATTACA")

    def test_validate_text_rejects_outsiders(self):
        with pytest.raises(ValueError, match="'x'"):
            DNA.validate_text("GATxACA")


class TestPaperAlphabets:
    def test_dblp_alphabet_size_matches_paper(self):
        # Section 7: dblp author names, |Sigma| = 27.
        assert len(LOWERCASE27) == 27
        assert " " in LOWERCASE27

    def test_protein_alphabet_size_matches_paper(self):
        # Section 7: protein dataset, |Sigma| = 22.
        assert len(PROTEIN22) == 22
