"""Shard-parallel joins, partitioned checkpoints, and the merge step.

ISSUE 7's tentpole: ``--shard i/N`` invocations each own a contiguous,
deterministic slice of the band plan, checkpoint into ``shard-i/``
subdirectories of one shared run directory, and ``merge_run`` folds
them into a result byte-identical to the serial join — for every
decomposition, with injected faults, and across a killed-and-resumed
shard. The merge must never silently combine mismatched or truncated
state, and the pool-width clamp must stay out of the fingerprint so a
run started on a wide host resumes on a narrow one.
"""

from __future__ import annotations

import json
import random
from dataclasses import replace
from pathlib import Path

import pytest

import repro.core.dispatch as dispatch
from repro.core.checkpoint import CheckpointStore, ShardCheckpointStore
from repro.core.config import JoinConfig
from repro.core.dispatch import (
    ProcessPoolBackend,
    SerialBackend,
    ShardBackend,
    effective_pool_width,
    parse_shard,
    resolve_execution_backend,
    shard_slice,
)
from repro.core.errors import (
    CheckpointCorruptError,
    CheckpointMismatchError,
    ConfigurationError,
    ShardIncompleteError,
    WorkerCrashError,
)
from repro.core.executor import RetryPolicy
from repro.core.join import similarity_join
from repro.core.merge import merge_run
from repro.core.parallel import (
    parallel_similarity_join,
    parallel_similarity_join_two,
    plan_length_bands,
)
from repro.util.faults import FaultPlan

from tests import equivalence_spec as spec
from tests.helpers import random_collection

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "golden_driver_outputs.json").read_text()
)

DECOMPOSITIONS = (2, 3, 4)


def no_sleep(_seconds: float) -> None:
    """Backoff stand-in: schedules are computed but never waited for."""


def run_shard(collection, config, run_dir, shard_index, shard_count, **kwargs):
    """One ``--shard i/N`` invocation of the self-join driver."""
    kwargs.setdefault("policy", RetryPolicy(sleep=no_sleep))
    return parallel_similarity_join(
        collection,
        replace(
            config,
            shard=f"{shard_index}/{shard_count}",
            checkpoint_dir=str(run_dir),
        ),
        use_processes=False,
        min_parallel=0,
        **kwargs,
    )


def run_all_shards(collection, config, run_dir, shard_count):
    return [
        run_shard(collection, config, run_dir, i, shard_count)
        for i in range(shard_count)
    ]


# ----------------------------------------------------------------------
# dispatch-layer units
# ----------------------------------------------------------------------


class TestParseShard:
    def test_parses_coordinates(self):
        assert parse_shard("0/1") == (0, 1)
        assert parse_shard("2/3") == (2, 3)

    @pytest.mark.parametrize(
        "bad", ["", "1", "1/", "/3", "a/3", "1/b", "-1/3", "3/3", "4/3", "0/0"]
    )
    def test_rejects_malformed_or_out_of_range(self, bad):
        with pytest.raises(ConfigurationError):
            parse_shard(bad)


class TestShardSlice:
    @pytest.mark.parametrize("total", [0, 1, 2, 5, 7, 16])
    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 5])
    def test_slices_partition_the_plan(self, total, shards):
        """Disjoint, covering, contiguous, and in shard order."""
        seen: list[int] = []
        for i in range(shards):
            seen.extend(shard_slice(total, i, shards))
        assert seen == list(range(total))

    def test_balanced_within_one(self):
        sizes = [len(shard_slice(10, i, 3)) for i in range(3)]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1


class TestEffectivePoolWidth:
    def test_clamps_to_pending_and_cores(self, monkeypatch):
        monkeypatch.setattr(dispatch.os, "cpu_count", lambda: 2)
        assert effective_pool_width(8, 10) == 2
        assert effective_pool_width(8, 1) == 1
        assert effective_pool_width(1, 10) == 1

    def test_cpu_count_unknown_degrades_to_one(self, monkeypatch):
        monkeypatch.setattr(dispatch.os, "cpu_count", lambda: None)
        assert effective_pool_width(8, 10) == 1


class TestResolveExecutionBackend:
    def test_serial_for_one_worker(self):
        assert isinstance(
            resolve_execution_backend(workers=1, use_processes=True),
            SerialBackend,
        )

    def test_pool_for_many_workers(self):
        backend = resolve_execution_backend(workers=3, use_processes=True)
        assert isinstance(backend, ProcessPoolBackend)

    def test_shard_wraps_inner_backend(self):
        backend = resolve_execution_backend(
            workers=3, use_processes=True, shard=(1, 2)
        )
        assert isinstance(backend, ShardBackend)
        assert backend.owned_positions(5) == range(2, 5)


class TestShardConfig:
    def test_shard_requires_run_directory(self):
        with pytest.raises(ConfigurationError, match="run directory"):
            JoinConfig(k=1, tau=0.1, q=2, shard="0/2")

    def test_shard_coordinates_property(self, tmp_path):
        config = JoinConfig(
            k=1, tau=0.1, q=2, shard="1/3", checkpoint_dir=str(tmp_path)
        )
        assert config.shard_coordinates == (1, 3)

    def test_bad_mp_start_rejected(self):
        with pytest.raises(ConfigurationError):
            JoinConfig(k=1, tau=0.1, q=2, mp_start="thread")


# ----------------------------------------------------------------------
# golden byte-identity across decompositions
# ----------------------------------------------------------------------


class TestShardedGolden:
    """Merged shard output equals the committed golden fixture."""

    @pytest.fixture(scope="class")
    def workload(self):
        return spec.self_collection()

    @pytest.mark.parametrize("shards", DECOMPOSITIONS)
    def test_merged_equals_golden(self, workload, shards, tmp_path):
        config = JoinConfig.for_algorithm(
            "QFCT",
            k=2,
            tau=spec.TAU,
            q=spec.Q,
            report_probabilities=True,
            workers=2,
        )
        run_all_shards(workload, config, tmp_path, shards)
        merged = merge_run(tmp_path)
        assert spec.encode_pairs(merged.pairs) == GOLDEN["QFCT-k2-probs"]["join"]
        assert merged.stats.total_strings == len(workload)
        assert merged.stats.result_pairs == len(merged.pairs)

    @pytest.mark.parametrize("shards", DECOMPOSITIONS)
    def test_paper_mode_matches_golden(self, workload, shards, tmp_path):
        config = JoinConfig.for_algorithm(
            "QFCT", k=1, tau=spec.TAU, q=spec.Q, workers=2
        )
        run_all_shards(workload, config, tmp_path, shards)
        merged = merge_run(tmp_path)
        assert spec.encode_pairs(merged.pairs) == GOLDEN["QFCT-k1-paper"]["join"]

    def test_shard_outcomes_are_partial(self, workload, tmp_path):
        config = JoinConfig(
            k=2, tau=spec.TAU, q=spec.Q, report_probabilities=True, workers=2
        )
        outcomes = run_all_shards(workload, config, tmp_path, 2)
        merged = merge_run(tmp_path)
        shard_pairs = sorted(
            pair for outcome in outcomes for pair in outcome.pairs
        )
        assert shard_pairs == merged.pairs
        assert any(
            outcome.stats.stage_count("shard", "owned") for outcome in outcomes
        )

    def test_merge_stats_equal_single_process_run(self, workload, tmp_path):
        """The fold carries full statistics, not just pairs."""
        from repro.core.stats import JoinStatistics

        config = JoinConfig(
            k=2, tau=spec.TAU, q=spec.Q, report_probabilities=True, workers=2
        )
        single = parallel_similarity_join(
            workload, config, use_processes=False, min_parallel=0
        )
        run_all_shards(workload, config, tmp_path, 3)
        merged = merge_run(tmp_path)
        assert merged.pairs == single.pairs
        for name in JoinStatistics.MERGE_COUNTERS:
            assert getattr(merged.stats, name) == getattr(
                single.stats, name
            ), name


# ----------------------------------------------------------------------
# faults and the killed-and-resumed shard
# ----------------------------------------------------------------------


class TestShardedFaults:
    @pytest.fixture(scope="class")
    def workload(self):
        return spec.self_collection()

    @pytest.fixture
    def config(self):
        return JoinConfig(
            k=2, tau=spec.TAU, q=spec.Q, report_probabilities=True, workers=2
        )

    def _owned_band(self, workload, config, shard_index, shards):
        bands = plan_length_bands(
            [len(s) for s in workload], config.workers * shards, config.k
        )
        owned = shard_slice(len(bands), shard_index, shards)
        assert owned, "decomposition left the target shard without bands"
        return bands[owned[0]].index

    def test_shard_qualified_fault_fires_only_on_its_shard(
        self, workload, config, tmp_path
    ):
        shards = 3
        band = self._owned_band(workload, config, 1, shards)
        faulted = replace(config, fault_spec=f"crash@s1:{band}")
        outcomes = run_all_shards(workload, faulted, tmp_path, shards)
        crashes = [
            outcome.stats.stage_count("fault", "crashed")
            for outcome in outcomes
        ]
        assert crashes[1] == 1
        assert crashes[0] == crashes[2] == 0
        merged = merge_run(tmp_path)
        assert spec.encode_pairs(merged.pairs) == GOLDEN["QFCT-k2-probs"]["join"]

    def test_killed_shard_resumes_and_merges_identically(
        self, workload, config, tmp_path
    ):
        shards = 3
        bands = plan_length_bands(
            [len(s) for s in workload], config.workers * shards, config.k
        )
        # Kill a shard that owns at least two bands: its LAST owned band
        # crashes on every attempt including the degraded one, so the
        # earlier owned bands are checkpointed before the shard dies.
        victim = next(
            i
            for i in range(shards)
            if len(shard_slice(len(bands), i, shards)) >= 2
        )
        owned = shard_slice(len(bands), victim, shards)
        band = bands[owned[-1]].index
        with pytest.raises(WorkerCrashError):
            run_shard(
                workload,
                replace(config, fault_spec=f"crash@s{victim}:{band}x2"),
                tmp_path,
                victim,
                shards,
                policy=RetryPolicy(retries=0, sleep=no_sleep),
            )
        for shard_index in range(shards):
            if shard_index != victim:
                run_shard(workload, config, tmp_path, shard_index, shards)
        # The run is incomplete until the killed shard is re-run.
        with pytest.raises(ShardIncompleteError):
            merge_run(tmp_path)
        resumed = run_shard(workload, config, tmp_path, victim, shards)
        assert resumed.stats.stage_count("fault", "resumed") == len(owned) - 1
        merged = merge_run(tmp_path)
        assert spec.encode_pairs(merged.pairs) == GOLDEN["QFCT-k2-probs"]["join"]


class TestPoolWidthClampRegression:
    """Resuming on a host with fewer cores than ``--workers`` works.

    The pool-width clamp is runtime-only: the band plan (and hence the
    run fingerprint) is keyed to ``config.workers``, so a checkpoint
    written on an 8-core host must resume — fingerprint-matched — on a
    1-core host with the same ``--workers``.
    """

    def test_resume_on_narrower_host_fingerprint_matches(
        self, tmp_path, monkeypatch
    ):
        collection = random_collection(random.Random(77), 20, (3, 10))
        config = JoinConfig(
            k=1, tau=0.1, q=2, report_probabilities=True, workers=4
        )
        bands = plan_length_bands(
            [len(s) for s in collection], config.workers, config.k
        )
        last = bands[-1].index
        expected = parallel_similarity_join(
            collection, config, use_processes=False, min_parallel=0
        )
        with pytest.raises(WorkerCrashError):
            parallel_similarity_join(
                collection,
                config,
                use_processes=False,
                min_parallel=0,
                policy=RetryPolicy(retries=0, sleep=no_sleep),
                faults=FaultPlan.from_spec(f"crash@{last}x2"),
                run_dir=str(tmp_path),
            )
        monkeypatch.setattr(dispatch.os, "cpu_count", lambda: 1)
        assert effective_pool_width(config.workers, len(bands)) == 1
        resumed = parallel_similarity_join(
            collection,
            config,
            min_parallel=0,
            policy=RetryPolicy(sleep=no_sleep),
            run_dir=str(tmp_path),
        )
        assert resumed.pairs == expected.pairs
        assert resumed.stats.stage_count("fault", "resumed") == len(bands) - 1


# ----------------------------------------------------------------------
# two-collection join: sharding + per-shard index snapshots
# ----------------------------------------------------------------------


def run_two_shard(left, right, config, run_dir, shard_index, shard_count):
    return parallel_similarity_join_two(
        left,
        right,
        replace(
            config,
            shard=f"{shard_index}/{shard_count}",
            checkpoint_dir=str(run_dir),
        ),
        use_processes=False,
        min_parallel=0,
        policy=RetryPolicy(sleep=no_sleep),
    )


class TestShardedTwoJoin:
    @pytest.fixture(scope="class")
    def workload(self):
        return spec.left_collection(), spec.right_collection()

    @pytest.fixture
    def config(self):
        return JoinConfig.for_algorithm(
            "QFCT",
            k=2,
            tau=spec.TAU,
            q=spec.Q,
            report_probabilities=True,
            workers=2,
        )

    def test_merged_equals_golden_and_snapshots_exist(
        self, workload, config, tmp_path
    ):
        left, right = workload
        for i in range(3):
            run_two_shard(left, right, config, tmp_path, i, 3)
        merged = merge_run(tmp_path)
        assert (
            spec.encode_pairs(merged.pairs)
            == GOLDEN["QFCT-k2-probs"]["join_two"]
        )
        snapshots = sorted(tmp_path.glob("shard-*/index-band-*.json"))
        assert snapshots, "expected per-shard index snapshots"

    def test_band_recomputed_from_snapshot_is_identical(
        self, workload, config, tmp_path
    ):
        left, right = workload
        for i in range(3):
            run_two_shard(left, right, config, tmp_path, i, 3)
        baseline = merge_run(tmp_path)
        # Kill one checkpointed band but keep its index snapshot: the
        # re-run must rebuild the band from the persisted index and
        # reproduce the identical pairs.
        store = ShardCheckpointStore(tmp_path, 0, 3)
        completed = store.completed_bands()
        assert completed
        victim = completed[0]
        assert store.index_snapshot_path(victim).exists()
        store.band_path(victim).unlink()
        with pytest.raises(ShardIncompleteError):
            merge_run(tmp_path)
        rerun = run_two_shard(left, right, config, tmp_path, 0, 3)
        assert rerun.stats.stage_count("fault", "resumed") == len(completed) - 1
        merged = merge_run(tmp_path)
        assert merged.pairs == baseline.pairs
        assert [p.probability for p in merged.pairs] == [
            p.probability for p in baseline.pairs
        ]


# ----------------------------------------------------------------------
# merge validation: nothing mismatched or truncated merges silently
# ----------------------------------------------------------------------


class TestMergeValidation:
    @pytest.fixture(scope="class")
    def workload(self):
        return spec.self_collection()

    @pytest.fixture
    def config(self):
        return JoinConfig(
            k=2, tau=spec.TAU, q=spec.Q, report_probabilities=True, workers=2
        )

    @pytest.fixture
    def complete_run(self, workload, config, tmp_path):
        run_all_shards(workload, config, tmp_path, 2)
        return tmp_path

    def test_not_a_run_directory(self, tmp_path):
        with pytest.raises(ShardIncompleteError, match="run.json"):
            merge_run(tmp_path / "nowhere")

    def test_missing_shard_directory(self, complete_run):
        manifest = (
            ShardCheckpointStore(complete_run, 1, 2).shard_manifest_path
        )
        manifest.unlink()
        with pytest.raises(ShardIncompleteError, match="shard 1"):
            merge_run(complete_run)

    def test_truncated_shard_manifest(self, complete_run):
        manifest = (
            ShardCheckpointStore(complete_run, 0, 2).shard_manifest_path
        )
        manifest.write_text(manifest.read_text()[:12])
        with pytest.raises(CheckpointCorruptError):
            merge_run(complete_run)

    def test_foreign_fingerprint_in_shard_manifest(self, complete_run):
        manifest = (
            ShardCheckpointStore(complete_run, 0, 2).shard_manifest_path
        )
        document = json.loads(manifest.read_text())
        document["fingerprint"] = "0" * 64
        manifest.write_text(json.dumps(document))
        with pytest.raises(CheckpointMismatchError, match="disagrees"):
            merge_run(complete_run)

    def test_overlapping_ownership_detected(self, complete_run):
        manifest = (
            ShardCheckpointStore(complete_run, 1, 2).shard_manifest_path
        )
        document = json.loads(manifest.read_text())
        stolen = json.loads(
            ShardCheckpointStore(complete_run, 0, 2)
            .shard_manifest_path.read_text()
        )["owned"][0]
        document["owned"] = [stolen] + document["owned"]
        manifest.write_text(json.dumps(document))
        with pytest.raises(CheckpointMismatchError, match="overlapping"):
            merge_run(complete_run)

    def test_malformed_owned_list(self, complete_run):
        manifest = (
            ShardCheckpointStore(complete_run, 0, 2).shard_manifest_path
        )
        document = json.loads(manifest.read_text())
        document["owned"] = ["zero"]
        manifest.write_text(json.dumps(document))
        with pytest.raises(CheckpointCorruptError, match="owned"):
            merge_run(complete_run)

    def test_missing_band_checkpoint(self, complete_run):
        store = ShardCheckpointStore(complete_run, 0, 2)
        band = store.completed_bands()[0]
        store.band_path(band).unlink()
        with pytest.raises(ShardIncompleteError) as excinfo:
            merge_run(complete_run)
        assert band in excinfo.value.missing

    def test_truncated_band_checkpoint(self, complete_run):
        store = ShardCheckpointStore(complete_run, 0, 2)
        victim = store.band_path(store.completed_bands()[0])
        victim.write_bytes(victim.read_bytes()[:10])
        with pytest.raises(CheckpointCorruptError):
            merge_run(complete_run)

    def test_checkpoint_from_other_plan_detected(
        self, workload, config, complete_run, tmp_path_factory
    ):
        """A ckpt written under a different fingerprint never merges."""
        other_dir = tmp_path_factory.mktemp("other")
        run_all_shards(workload, replace(config, tau=0.2), other_dir, 2)
        ours = ShardCheckpointStore(complete_run, 0, 2)
        theirs = ShardCheckpointStore(other_dir, 0, 2)
        band = ours.completed_bands()[0]
        assert band in theirs.completed_bands()
        ours.band_path(band).write_bytes(
            theirs.band_path(band).read_bytes()
        )
        with pytest.raises(CheckpointMismatchError):
            merge_run(complete_run)

    def test_mixed_decompositions_rejected_at_open(
        self, workload, config, complete_run
    ):
        """A third shard of a 3-way plan cannot join a 2-way run dir."""
        with pytest.raises(CheckpointMismatchError):
            run_shard(workload, config, complete_run, 2, 3)

    def test_flat_run_directory_merges_too(self, workload, config, tmp_path):
        serial = similarity_join(
            spec.self_collection(),
            replace(config, workers=1),
        )
        parallel_similarity_join(
            workload,
            config,
            use_processes=False,
            min_parallel=0,
            policy=RetryPolicy(sleep=no_sleep),
            run_dir=str(tmp_path),
        )
        merged = merge_run(tmp_path)
        assert merged.pairs == serial.pairs

    def test_flat_run_missing_band_is_incomplete(
        self, workload, config, tmp_path
    ):
        parallel_similarity_join(
            workload,
            config,
            use_processes=False,
            min_parallel=0,
            policy=RetryPolicy(sleep=no_sleep),
            run_dir=str(tmp_path),
        )
        store = CheckpointStore(tmp_path)
        store.band_path(store.completed_bands()[-1]).unlink()
        with pytest.raises(ShardIncompleteError):
            merge_run(tmp_path)
