"""Tests for the streaming JoinEngine, its sources, and stats parity."""

import inspect
import random

import pytest

from repro.core import incremental as incremental_module
from repro.core import join as join_module
from repro.core import join_two as join_two_module
from repro.core import search as search_module
from repro.core import topk as topk_module
from repro.core.config import JoinConfig
from repro.core.engine import (
    CandidateSource,
    JoinEngine,
    LengthBandSource,
    SegmentIndexSource,
    iter_join_pairs,
)
from repro.core.incremental import IncrementalJoiner
from repro.core.join import similarity_join
from repro.core.pipeline import StageChain
from repro.core.search import SimilaritySearcher
from repro.core.stats import JoinStatistics
from repro.uncertain.string import UncertainString

from tests.helpers import random_collection


def qfct(k=1, tau=0.1, **kwargs):
    return JoinConfig.for_algorithm("QFCT", k=k, tau=tau, q=2, **kwargs)


class TestStatsParity:
    """Search/incremental credit the same stage counters as batch join."""

    def test_incremental_visit_order_matches_batch_counters(self):
        rng = random.Random(41)
        collection = random_collection(rng, 14, length_range=(3, 7))
        config = qfct(report_probabilities=True)
        batch = similarity_join(collection, config).stats

        joiner = IncrementalJoiner(config)
        visit = sorted(
            range(len(collection)), key=lambda i: (len(collection[i]), i)
        )
        for index in visit:
            joiner.add(collection[index])

        for name in JoinStatistics.MERGE_COUNTERS:
            assert getattr(joiner.stats, name) == getattr(batch, name), name
        assert joiner.stats.stage_counters == batch.stage_counters
        assert joiner.stats.result_pairs == batch.result_pairs

    def test_search_counters_match_batch_probe_delta(self):
        # The batch join's final probe (of the last-visited string against
        # everything before it) must record exactly what a searcher over
        # the prefix records for the same query.
        rng = random.Random(42)
        collection = random_collection(rng, 14, length_range=(3, 7))
        config = qfct(report_probabilities=True)
        last = max(range(len(collection)), key=lambda i: (len(collection[i]), i))
        prefix = [s for i, s in enumerate(collection) if i != last]

        full = similarity_join(collection, config).stats
        before = similarity_join(prefix, config).stats
        outcome = SimilaritySearcher(prefix, config).search(collection[last])

        assert outcome.stats.length_eligible_pairs > 0
        for name in JoinStatistics.MERGE_COUNTERS:
            delta = getattr(full, name) - getattr(before, name)
            assert getattr(outcome.stats, name) == delta, name

    def test_search_credits_qgram_rejections(self):
        rng = random.Random(43)
        collection = random_collection(rng, 16, length_range=(3, 6))
        searcher = SimilaritySearcher(collection, qfct())
        query = random_collection(random.Random(44), 1, length_range=(4, 5))[0]
        stats = searcher.search(query).stats
        assert stats.length_eligible_pairs > 0
        assert (
            stats.length_eligible_pairs
            == stats.qgram_survivors + stats.qgram_rejected
        )

    def test_no_qgram_search_credits_length_survivors(self):
        rng = random.Random(45)
        collection = random_collection(rng, 12, length_range=(4, 6))
        config = JoinConfig.for_algorithm("FCT", k=1, tau=0.1, q=2)
        searcher = SimilaritySearcher(collection, config)
        query = random_collection(random.Random(46), 1, length_range=(4, 5))[0]
        stats = searcher.search(query).stats
        assert stats.length_survivors == stats.length_eligible_pairs > 0
        assert stats.qgram_survivors == 0
        assert stats.qgram_rejected == 0


class TestStageRegistry:
    def test_known_events_land_in_legacy_fields(self):
        stats = JoinStatistics()
        stats.record("qgram", "survivors", 3)
        stats.record("length", "eligible", 7)
        stats.record("verification", "checked")
        assert stats.qgram_survivors == 3
        assert stats.length_eligible_pairs == 7
        assert stats.verifications == 1
        assert stats.stage_count("qgram", "survivors") == 3
        assert stats.stage_counters == {}

    def test_frequency_undecided_counts_as_survival(self):
        # The frequency filter never ACCEPTs, so the chain's generic
        # "undecided" verdict must keep feeding the legacy field.
        stats = JoinStatistics()
        stats.record("frequency", "undecided", 2)
        assert stats.frequency_survivors == 2

    def test_unknown_events_accumulate_in_registry(self):
        stats = JoinStatistics()
        stats.record("bound", "rejected", 2)
        stats.record("bound", "rejected")
        assert stats.stage_counters == {"bound.rejected": 3}
        assert stats.stage_count("bound", "rejected") == 3
        assert stats.stage_count("bound", "accepted") == 0

    def test_merge_folds_registry_counters(self):
        a, b = JoinStatistics(), JoinStatistics()
        a.record("bound", "rejected", 1)
        b.record("bound", "rejected", 4)
        b.record("custom", "event", 2)
        a.merge(b)
        assert a.stage_counters == {"bound.rejected": 5, "custom.event": 2}

    def test_summary_lists_registry_counters(self):
        stats = JoinStatistics()
        stats.record("bound", "rejected", 9)
        assert "bound.rejected:" in stats.summary()
        assert "9" in stats.summary()


class TestBoundPlumbing:
    """The source's Theorem 2 upper bound reaches the stage chain."""

    def test_upper_bound_at_or_below_tau_rejects_before_any_stage(self):
        config = qfct(tau=0.5)
        chain = StageChain(config)
        stats = JoinStatistics()
        query = UncertainString.from_text("ACGT")
        candidate = UncertainString.from_text("ACGA")
        context = chain.context(0, query)
        similar, probability = chain.refine(
            context, 1, candidate, lambda: 0.5, stats, 0.25
        )
        assert not similar and probability is None
        assert stats.stage_count("bound", "rejected") == 1
        assert stats.frequency_checked == 0
        assert stats.verifications == 0

    def test_upper_bound_above_tau_proceeds_to_stages(self):
        config = qfct(tau=0.5)
        chain = StageChain(config)
        stats = JoinStatistics()
        query = UncertainString.from_text("ACGT")
        candidate = UncertainString.from_text("ACGA")
        context = chain.context(0, query)
        chain.refine(context, 1, candidate, lambda: 0.5, stats, 0.9)
        assert stats.stage_count("bound", "rejected") == 0
        assert stats.frequency_checked == 1


class TestCandidateSources:
    def test_sources_satisfy_protocol(self):
        assert isinstance(SegmentIndexSource(qfct()), CandidateSource)
        assert isinstance(LengthBandSource(1), CandidateSource)

    def test_length_band_rejects_negative_k(self):
        with pytest.raises(ValueError):
            LengthBandSource(-1)

    def test_sources_map_ranks_to_caller_ids(self):
        strings = {
            17: UncertainString.from_text("ACGT"),
            5: UncertainString.from_text("ACGA"),
            99: UncertainString.from_text("AAAAAAAAAA"),
        }
        query = UncertainString.from_text("ACGG")
        for source in (SegmentIndexSource(qfct()), LengthBandSource(1)):
            stats = JoinStatistics()
            for string_id, string in strings.items():
                source.add(string_id, string, stats)
            assert len(source) == 3
            ids = [cid for cid, _ in source.probe(query, 0.0, stats)]
            # id 99 is length-pruned; insertion (rank) order preserved.
            assert ids == [17, 5]

    def test_engine_accepts_arbitrary_ids(self):
        engine = JoinEngine(qfct(tau=0.0))
        engine.add(17, UncertainString.from_text("ACGT"))
        engine.add(5, UncertainString.from_text("ACGA"))
        query = UncertainString.from_text("ACGT")
        assert [cid for cid, _, _ in engine.probe(-1, query)] == [17, 5]


class TestDriverHygiene:
    """No driver rebuilds the index or applies filters/verifiers inline."""

    FORBIDDEN = (
        "SegmentInvertedIndex",
        "FrequencyDistanceFilter",
        "CdfBoundFilter",
        "trie_verify",
        "naive_verify",
        "build_trie",
    )
    DRIVERS = (
        join_module,
        join_two_module,
        search_module,
        incremental_module,
        topk_module,
    )

    @pytest.mark.parametrize(
        "module", DRIVERS, ids=[m.__name__.rsplit(".", 1)[-1] for m in DRIVERS]
    )
    def test_driver_has_no_inline_pipeline_code(self, module):
        source = inspect.getsource(module)
        for token in self.FORBIDDEN:
            assert token not in source, f"{module.__name__} references {token}"


class TestStreaming:
    def test_iter_join_pairs_rejects_parallel_config(self):
        with pytest.raises(ValueError, match="workers"):
            next(iter(iter_join_pairs([], qfct(workers=4))))

    def test_adaptive_tau_is_reread_per_candidate(self):
        taus = []

        def provider():
            taus.append(len(taus))
            return 0.0

        engine = JoinEngine(qfct(tau=0.0), tau=provider)
        engine.add(0, UncertainString.from_text("ACGT"))
        engine.add(1, UncertainString.from_text("ACGA"))
        list(engine.probe(-1, UncertainString.from_text("ACGT")))
        # One read for the source probe plus one per surviving candidate.
        assert len(taus) >= 2
