"""Tests for the segment inverted index (Section 4)."""

import random

import pytest

from repro.distance.probability import edit_similarity_probability
from repro.filters.qgram import QGramFilter
from repro.index.inverted import SegmentInvertedIndex
from repro.uncertain.string import UncertainString

from tests.helpers import random_collection


def build_index(collection, k=1, q=2, **kwargs):
    index = SegmentInvertedIndex(k=k, q=q, **kwargs)
    for string_id, string in enumerate(collection):
        index.add(string_id, string)
    return index


class TestMaintenance:
    def test_insertion_order_enforced(self):
        index = SegmentInvertedIndex(k=1, q=2)
        a = UncertainString.from_text("ACGTA")
        index.add(3, a)
        with pytest.raises(ValueError, match="ascending"):
            index.add(2, a)

    def test_entry_count_grows_with_worlds(self):
        rng = random.Random(1)
        certain = [UncertainString.from_text("ACGTAC")]
        uncertain = random_collection(rng, 1, length_range=(6, 6), theta=0.6)
        index_c = build_index(certain)
        index_u = build_index(uncertain)
        assert index_u.entry_count >= index_c.entry_count

    def test_indexed_lengths(self):
        index = build_index(
            [UncertainString.from_text("AAAA"), UncertainString.from_text("CCCCC")]
        )
        assert index.indexed_lengths == {4, 5}


class TestQueryAgainstPairFilter:
    """The index must compute the same alphas/bounds as the pair-at-a-time
    QGramFilter, just collection-wide."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_candidates_match_pair_filter(self, seed):
        rng = random.Random(seed)
        collection = random_collection(rng, 10, length_range=(4, 7), theta=0.4)
        k, q, tau = 1, 2, 0.05
        index = build_index(collection, k=k, q=q)
        qfilter = QGramFilter(k=k, q=q)
        for query in random_collection(rng, 3, length_range=(4, 7), theta=0.4):
            got = {c.string_id: c for c in index.query(query, tau)}
            for string_id, string in enumerate(collection):
                if abs(len(string) - len(query)) > k:
                    assert string_id not in got
                    continue
                outcome = qfilter.evaluate(query, string)
                decision = outcome.decision(tau)
                if decision.rejected:
                    assert string_id not in got
                else:
                    assert string_id in got
                    assert got[string_id].alphas == pytest.approx(
                        outcome.alphas, abs=1e-9
                    )
                    assert got[string_id].upper == pytest.approx(
                        outcome.upper, abs=1e-9
                    )


class TestCompleteness:
    @pytest.mark.parametrize("seed", [10, 11])
    def test_no_true_result_is_pruned(self, seed):
        # Any string with Pr(ed <= k) > tau must survive the index probe.
        rng = random.Random(seed)
        collection = random_collection(rng, 12, length_range=(4, 6), theta=0.3)
        k, q, tau = 1, 2, 0.1
        index = build_index(collection, k=k, q=q)
        for query in random_collection(rng, 4, length_range=(4, 6), theta=0.3):
            survivors = {c.string_id for c in index.query(query, tau)}
            for string_id, string in enumerate(collection):
                exact = (
                    edit_similarity_probability(query, string, k)
                    if abs(len(string) - len(query)) <= k
                    else 0.0
                )
                if exact > tau:
                    assert string_id in survivors

    def test_short_string_regime_returns_everything(self):
        # Length < k + 1: the pigeonhole is vacuous; all same-length
        # strings must come back as candidates.
        strings = [UncertainString.from_text(t) for t in ("AC", "GT", "CA")]
        index = build_index(strings, k=3, q=2)
        got = {c.string_id for c in index.query(UncertainString.from_text("AA"), 0.2)}
        assert got == {0, 1, 2}
