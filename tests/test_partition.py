"""Tests for the even-partition scheme."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.even import even_partition, partition_for, segment_count


class TestSegmentCount:
    def test_paper_policy(self):
        # m = max(k + 1, floor(l / q))
        assert segment_count(19, 3, 2) == 6
        assert segment_count(19, 3, 8) == 9
        assert segment_count(6, 2, 1) == 3  # Table 1: m = 3

    def test_short_string_clamped_to_length(self):
        assert segment_count(3, 3, 8) == 3

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            segment_count(0, 3, 1)
        with pytest.raises(ValueError):
            segment_count(5, 0, 1)
        with pytest.raises(ValueError):
            segment_count(5, 3, -1)


class TestEvenPartition:
    @given(
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=200)
    def test_partition_is_disjoint_and_covering(self, length, m):
        if m > length:
            with pytest.raises(ValueError):
                even_partition(length, m)
            return
        segments = even_partition(length, m)
        assert len(segments) == m
        assert segments[0].start == 0
        assert segments[-1].end == length
        for prev, cur in zip(segments, segments[1:]):
            assert cur.start == prev.end
        lengths = [seg.length for seg in segments]
        assert max(lengths) - min(lengths) <= 1
        # Later segments never shorter (paper's "last segments get q+1").
        assert lengths == sorted(lengths)

    def test_indices_are_one_based(self):
        segments = even_partition(10, 4)
        assert [seg.index for seg in segments] == [1, 2, 3, 4]

    def test_exact_division(self):
        segments = even_partition(6, 3)
        assert [(seg.start, seg.length) for seg in segments] == [
            (0, 2), (2, 2), (4, 2),
        ]

    def test_uneven_division_matches_paper_formula(self):
        # l=19, q=3 -> m=6, last 19 - 6*3 = 1 segment of length 4.
        segments = even_partition(19, 6)
        assert [seg.length for seg in segments] == [3, 3, 3, 3, 3, 4]


class TestPartitionFor:
    def test_combines_policy_and_partition(self):
        segments = partition_for(19, 3, 2)
        assert len(segments) == 6
        assert sum(seg.length for seg in segments) == 19

    def test_segment_lengths_are_q_or_q_plus_one(self):
        for length in range(12, 40):
            for seg in partition_for(length, 3, 2):
                assert seg.length in (3, 4)
