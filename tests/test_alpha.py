"""Tests for segment match probabilities and equivalent substring sets."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters.alpha import (
    OccurrenceGroup,
    _split_into_groups,
    equivalent_substring_set,
    group_probability,
    segment_match_probability,
)
from repro.uncertain.parser import parse_uncertain
from repro.uncertain.string import UncertainString
from repro.uncertain.worlds import enumerate_worlds

from tests.helpers import random_uncertain, uncertain_strings


def brute_union_probability(string, word, starts):
    """Reference Pr(at least one window of `string` equals `word`)."""
    total = 0.0
    for text, prob in enumerate_worlds(string, limit=None):
        if any(text[s : s + len(word)] == word for s in starts):
            total += prob
    return total


def brute_alpha(string, starts, segment):
    """Reference alpha_x: Pr(exists selected window of R matching S^x)."""
    total = 0.0
    for text, prob in enumerate_worlds(string, limit=None):
        for seg_text, seg_prob in enumerate_worlds(segment, limit=None):
            if any(
                text[s : s + len(seg_text)] == seg_text for s in starts
            ):
                total += prob * seg_prob
    return total


class TestGrouping:
    def test_non_overlapping_occurrences_split(self):
        groups = _split_into_groups("AB", [0, 5, 6, 10])
        assert [g.starts for g in groups] == [(0,), (5, 6), (10,)]

    def test_transitive_overlap_single_group(self):
        groups = _split_into_groups("ABCD", [0, 2, 4])
        assert [g.starts for g in groups] == [(0, 2, 4)]

    def test_unsorted_input_sorted(self):
        groups = _split_into_groups("AB", [6, 0, 5])
        assert [g.starts for g in groups] == [(0,), (5, 6)]


class TestGroupProbability:
    def test_paper_example_group(self):
        # Section 3.2: R = A{(A,0.8),(C,0.2)}AATT, w = AAA at starts {0, 1}
        # form one group with probability 0.8.
        string = parse_uncertain("A{(A,0.8),(C,0.2)}AATT")
        group = OccurrenceGroup("AAA", (0, 1))
        assert group_probability(string, group, "exact") == pytest.approx(0.8)
        assert group_probability(string, group, "beta") == pytest.approx(0.8)

    def test_single_occurrence_is_match_probability(self):
        string = parse_uncertain("A{(A,0.8),(C,0.2)}AATT")
        group = OccurrenceGroup("ACA", (0,))
        assert group_probability(string, group, "exact") == pytest.approx(0.2)

    @given(uncertain_strings(alphabet="AC", min_length=4, max_length=7, max_support=2))
    @settings(max_examples=120, deadline=None)
    def test_exact_mode_matches_enumeration(self, string):
        # Periodic word so overlapping occurrences actually interact.
        word = "AA"
        starts = [s for s in range(len(string) - 1) if string.can_match(word, s)]
        if not starts:
            return
        for group in _split_into_groups(word, starts):
            expected = brute_union_probability(string, word, list(group.starts))
            assert group_probability(string, group, "exact") == pytest.approx(
                expected, abs=1e-9
            )

    @given(uncertain_strings(alphabet="AC", min_length=4, max_length=7, max_support=2))
    @settings(max_examples=80, deadline=None)
    def test_beta_mode_within_union_bounds(self, string):
        # The beta chain approximates the union; it must stay within the
        # trivial Frechet bounds [max single, min(1, sum)].
        word = "AA"
        starts = [s for s in range(len(string) - 1) if string.can_match(word, s)]
        for group in _split_into_groups(word, starts):
            singles = [string.match_probability(word, s) for s in group.starts]
            value = group_probability(string, group, "beta")
            assert value <= min(1.0, sum(singles)) + 1e-9
            assert value >= -1e-9


class TestEquivalentSet:
    def test_paper_example_set(self):
        # Section 3.2: q(r, 1) = {(AAA, 0.8), (ACA, 0.2), (CAA, 0.2)}.
        string = parse_uncertain("A{(A,0.8),(C,0.2)}AATT")
        equivalent = equivalent_substring_set(string, [0, 1], 3)
        assert equivalent == pytest.approx(
            {"AAA": 0.8, "ACA": 0.2, "CAA": 0.2}
        )

    def test_deterministic_string_yields_unit_probabilities(self):
        string = UncertainString.from_text("GGATCC")
        equivalent = equivalent_substring_set(string, [0, 1, 2], 2)
        assert equivalent == {"GG": 1.0, "GA": 1.0, "AT": 1.0}

    def test_out_of_range_starts_ignored(self):
        string = UncertainString.from_text("ACGT")
        equivalent = equivalent_substring_set(string, [-1, 2, 99], 2)
        assert equivalent == {"GT": 1.0}

    @given(
        uncertain_strings(alphabet="AC", min_length=3, max_length=6, max_support=2),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=100, deadline=None)
    def test_each_entry_matches_union_enumeration(self, string, length):
        starts = list(range(len(string) - length + 1))
        equivalent = equivalent_substring_set(string, starts, length, "exact")
        for word, prob in equivalent.items():
            assert prob == pytest.approx(
                brute_union_probability(string, word, starts), abs=1e-9
            )


class TestSegmentMatchProbability:
    def test_naive_sum_would_exceed_one_but_alpha_is_correct(self):
        # The Section 3.2 example where the naive sum gives 1.32.
        string = parse_uncertain("A{(A,0.8),(C,0.2)}AATT")
        segment = parse_uncertain("A{(A,0.8),(C,0.2)}A")
        naive = sum(
            prob * segment.instance_probability(word)
            for start in (0, 1)
            for word, prob in enumerate_worlds(string.substring(start, 3), limit=None)
        )
        assert naive == pytest.approx(1.32)  # the paper's incorrect value
        alpha = segment_match_probability(string, [0, 1], segment, "exact")
        assert alpha == pytest.approx(0.68)

    def test_deterministic_r_reduces_to_simple_sum(self):
        # Section 3.1: alpha_x = sum of segment match probabilities of the
        # distinct substrings.
        r = UncertainString.from_text("GGATCC")
        segment = parse_uncertain("{(G,0.8),(T,0.2)}G")
        alpha = segment_match_probability(r, [0, 1], segment)
        assert alpha == pytest.approx(0.8)  # only GG matches

    @given(st.data())
    @settings(max_examples=80, deadline=None)
    def test_alpha_matches_enumeration(self, data):
        rng = random.Random(data.draw(st.integers(min_value=0, max_value=100_000)))
        string = random_uncertain(rng, rng.randint(3, 6), 0.4)
        seg_len = rng.randint(1, 3)
        segment = random_uncertain(rng, seg_len, 0.5)
        starts = list(range(len(string) - seg_len + 1))
        alpha = segment_match_probability(string, starts, segment, "exact")
        assert alpha == pytest.approx(
            brute_alpha(string, starts, segment), abs=1e-9
        )

    def test_alpha_clamped_to_one(self):
        string = UncertainString.from_text("AAAA")
        segment = UncertainString.from_text("AA")
        alpha = segment_match_probability(string, [0, 1, 2], segment)
        assert alpha == 1.0
