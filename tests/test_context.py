"""CollectionContext / StringFeatures and fork-shared dispatch tests.

Covers the per-collection feature context (PR 5's tentpole): feature
correctness, id re-keying for band workers, and the dispatch contract
of the parallel driver — band payloads must serialize only id lists
plus the config (no strings, no profiles), with the collection state
published to workers once per process on both fork and spawn start
methods.
"""

from __future__ import annotations

import multiprocessing
import pickle
import random

import pytest

import repro.core.executor as executor
import repro.core.parallel as parallel
from repro.core.config import JoinConfig
from repro.core.context import CollectionContext, StringFeatures
from repro.core.join import similarity_join
from repro.core.parallel import (
    parallel_similarity_join,
    parallel_similarity_join_two,
)
from repro.filters.frequency import FrequencyProfile
from repro.uncertain.string import UncertainString

from tests.helpers import random_collection, random_uncertain


class TestStringFeatures:
    def test_certain_string_features(self):
        string = UncertainString.from_text("ACGT")
        features = StringFeatures(string)
        assert features.length == 4
        assert features.is_certain
        assert features.certain_text == "ACGT"
        assert features.support == frozenset("ACGT")
        assert features.sorted_support == ("A", "C", "G", "T")

    def test_uncertain_string_features(self):
        rng = random.Random(31)
        string = random_uncertain(rng, 6, theta=1.0, gamma=2)
        features = StringFeatures(string)
        assert not features.is_certain
        assert features.certain_text is None
        assert len(features.position_chars) == 6
        assert features.position_probs[0] == string[0].probs
        assert features.support == string.support_alphabet()

    def test_profile_lazy_and_cached(self):
        string = UncertainString.from_text("AC")
        features = StringFeatures(string)
        assert features.profile is None
        profile = features.ensure_profile()
        assert features.profile is profile
        assert features.ensure_profile() is profile

    def test_support_views_agree_with_profile(self):
        rng = random.Random(32)
        string = random_uncertain(rng, 7, theta=0.5)
        eager = StringFeatures(string)
        lazy_support = eager.sorted_support
        profiled = StringFeatures(string)
        profiled.ensure_profile()
        assert profiled.sorted_support == lazy_support
        assert profiled.support == eager.support


class TestCollectionContext:
    def test_for_collection_builds_everything_once(self):
        collection = random_collection(random.Random(33), 8)
        context = CollectionContext.for_collection(collection)
        assert len(context) == len(collection)
        for string_id, string in enumerate(collection):
            features = context.cached(string_id)
            assert features is not None
            assert features.string is string
            assert isinstance(features.profile, FrequencyProfile)

    def test_build_profiles_false_skips_profiles(self):
        collection = random_collection(random.Random(34), 4)
        context = CollectionContext.for_collection(
            collection, build_profiles=False
        )
        assert all(
            context.cached(i).profile is None for i in range(len(collection))
        )

    def test_negative_ids_are_fresh_per_call(self):
        context = CollectionContext()
        query = UncertainString.from_text("ACA")
        first = context.features(-1, query)
        second = context.features(-1, query)
        assert first is not second
        assert len(context) == 0

    def test_nonnegative_ids_are_cached(self):
        context = CollectionContext()
        string = UncertainString.from_text("ACA")
        assert context.features(3, string) is context.features(3, string)

    def test_subcontext_rekeys_without_copying(self):
        collection = random_collection(random.Random(35), 6)
        context = CollectionContext.for_collection(collection)
        id_map = (4, 1, 3)
        sub = context.subcontext(id_map)
        assert len(sub) == 3
        for local_id, global_id in enumerate(id_map):
            assert sub.cached(local_id) is context.cached(global_id)


def _capture_payloads(monkeypatch):
    """Intercept run_bands to record the per-band payloads dispatched.

    Every execution backend funnels into ``executor.run_bands`` (looked
    up at call time), so patching it there observes the exact payloads
    any backend ships.
    """
    captured = []
    real = executor.run_bands

    def recording(task, payloads, **kwargs):
        captured.extend(payload for _, payload in payloads)
        return real(task, payloads, **kwargs)

    monkeypatch.setattr(executor, "run_bands", recording)
    return captured


class TestPayloadsShipOnlyIds:
    """The dispatch contract: payloads are ids + config, nothing else."""

    @staticmethod
    def _assert_lean(payload, config_bytes):
        blob = pickle.dumps(payload)
        # No uncertain-string (or feature/profile) class is referenced
        # anywhere in the pickle — strings travel via shared state only.
        assert b"repro.uncertain" not in blob
        assert b"repro.core.context" not in blob
        assert b"FrequencyProfile" not in blob
        # Byte budget: the config plus a few ints per member id.
        id_count = sum(
            len(field) for field in payload if isinstance(field, tuple)
        )
        assert len(blob) <= config_bytes + 128 + 12 * id_count

    def test_self_join_payloads(self, monkeypatch):
        collection = random_collection(
            random.Random(36), 24, length_range=(4, 10)
        )
        config = JoinConfig(k=1, tau=0.1, q=2, workers=3)
        captured = _capture_payloads(monkeypatch)
        parallel_similarity_join(
            collection, config, use_processes=False, min_parallel=0
        )
        assert captured, "expected banded dispatch"
        config_bytes = len(pickle.dumps(config))
        for payload in captured:
            band_index, token, member_ids, owned_high, cfg = payload
            assert isinstance(member_ids, tuple)
            assert all(isinstance(i, int) for i in member_ids)
            assert isinstance(cfg, JoinConfig)
            self._assert_lean(payload, config_bytes)

    def test_two_join_payloads(self, monkeypatch):
        rng = random.Random(37)
        left = random_collection(rng, 14, length_range=(4, 9))
        right = random_collection(rng, 14, length_range=(4, 9))
        config = JoinConfig(k=1, tau=0.1, q=2, workers=3)
        captured = _capture_payloads(monkeypatch)
        parallel_similarity_join_two(
            left, right, config, use_processes=False, min_parallel=0
        )
        assert captured, "expected banded dispatch"
        config_bytes = len(pickle.dumps(config))
        for payload in captured:
            band_index, token, left_ids, right_ids, cfg = payload
            assert all(isinstance(i, int) for i in left_ids + right_ids)
            self._assert_lean(payload, config_bytes)


class TestWorkerPublication:
    """Shared collection state reaches real worker processes intact."""

    @staticmethod
    def _workload():
        collection = random_collection(
            random.Random(38), 26, length_range=(4, 10)
        )
        config = JoinConfig(k=1, tau=0.1, q=2, workers=2)
        serial = similarity_join(collection, JoinConfig(k=1, tau=0.1, q=2))
        return collection, config, serial

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_start_method_produces_serial_results(self, method):
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {method!r} unavailable")
        collection, config, serial = self._workload()
        outcome = parallel_similarity_join(
            collection,
            config,
            min_parallel=0,
            mp_context=multiprocessing.get_context(method),
        )
        assert outcome.pairs == serial.pairs
        # The pool must have been used, not the in-process fallback.
        assert outcome.stats.stage_count("fault", "pool_unavailable") == 0

    def test_stale_token_is_rejected(self):
        token = next(parallel._TOKENS)
        parallel._publish_shared(token, ((),), (CollectionContext(),))
        with pytest.raises(RuntimeError, match="shared collection state"):
            parallel._shared_state(token + 1)
