"""Tests for the repro-join command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.datasets.loader import load_collection


@pytest.fixture
def collection_file(tmp_path):
    path = tmp_path / "names.txt"
    assert main(
        ["gen", "--kind", "dblp", "--count", "25", "--seed", "3", "-o", str(path)]
    ) == 0
    return path


class TestGen:
    def test_writes_collection(self, collection_file):
        collection = load_collection(collection_file)
        assert len(collection) == 25

    def test_protein_kind(self, tmp_path):
        path = tmp_path / "p.txt"
        assert main(
            ["gen", "--kind", "protein", "--count", "10", "--theta", "0.1",
             "-o", str(path)]
        ) == 0
        assert len(load_collection(path)) == 10


class TestJoin:
    def test_join_outputs_pairs(self, collection_file, capsys):
        assert main(
            ["join", str(collection_file), "-k", "2", "--tau", "0.1"]
        ) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l]
        for line in lines:
            left, right = line.split("\t")
            assert int(left) < int(right)

    def test_join_with_probabilities(self, collection_file, capsys):
        assert main(
            ["join", str(collection_file), "-k", "2", "--tau", "0.1",
             "--probabilities"]
        ) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l]
        for line in lines:
            parts = line.split("\t")
            assert len(parts) == 3
            assert 0.1 < float(parts[2]) <= 1.0

    def test_algorithm_variants_agree(self, collection_file, capsys):
        outputs = []
        for algorithm in ("QFCT", "FCT"):
            main(
                ["join", str(collection_file), "-k", "1", "--tau", "0.2",
                 "--algorithm", algorithm]
            )
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_stats_on_stderr(self, collection_file, capsys):
        main(["join", str(collection_file), "-k", "1", "--tau", "0.2", "--stats"])
        captured = capsys.readouterr()
        assert "result pairs" in captured.err

    def test_stream_yields_same_pairs_as_batch(self, collection_file, capsys):
        main(["join", str(collection_file), "-k", "1", "--tau", "0.2",
              "--probabilities"])
        batch = capsys.readouterr().out.splitlines()
        main(["join", str(collection_file), "-k", "1", "--tau", "0.2",
              "--probabilities", "--stream"])
        streamed = capsys.readouterr().out.splitlines()
        assert sorted(streamed) == sorted(batch)

    def test_stream_ignores_workers(self, collection_file, capsys):
        assert main(
            ["join", str(collection_file), "-k", "1", "--tau", "0.2",
             "--workers", "4", "--stream", "--stats"]
        ) == 0
        captured = capsys.readouterr()
        assert "result pairs" in captured.err


class TestResilience:
    def test_resume_round_trip_identical_output(
        self, collection_file, tmp_path, capsys
    ):
        run_dir = tmp_path / "run"
        base = ["join", str(collection_file), "-k", "1", "--tau", "0.2",
                "--probabilities"]
        assert main(base) == 0
        plain = capsys.readouterr().out
        # First checkpointed run: same output, run directory created.
        assert main(base + ["--resume", str(run_dir)]) == 0
        assert capsys.readouterr().out == plain
        assert (run_dir / "run.json").exists()
        assert list(run_dir.glob("band-*.ckpt"))
        # Second run resumes from the checkpoints, byte-identical.
        assert main(base + ["--resume", str(run_dir), "--stats"]) == 0
        captured = capsys.readouterr()
        assert captured.out == plain
        assert "fault.resumed" in captured.err

    def test_injected_faults_do_not_change_output(
        self, collection_file, tmp_path, capsys
    ):
        base = ["join", str(collection_file), "-k", "1", "--tau", "0.2"]
        assert main(base) == 0
        plain = capsys.readouterr().out
        assert main(
            base + ["--resume", str(tmp_path / "faulted"),
                    "--inject-faults", "crash@0", "--retries", "1",
                    "--stats"]
        ) == 0
        captured = capsys.readouterr()
        assert captured.out == plain
        assert "fault.crashed" in captured.err
        assert "fault.retried" in captured.err


class TestShardMerge:
    def test_sharded_run_merges_to_serial_output(
        self, collection_file, tmp_path, capsys
    ):
        base = ["join", str(collection_file), "-k", "1", "--tau", "0.2",
                "--probabilities"]
        assert main(base) == 0
        serial = capsys.readouterr().out
        run_dir = tmp_path / "run"
        for i in range(3):
            assert main(
                base + ["--shard", f"{i}/3", "--resume", str(run_dir)]
            ) == 0
            captured = capsys.readouterr()
            # Shard outcomes are partial: pairs stay off stdout; the
            # completion summary goes to stderr.
            assert captured.out == ""
            assert f"shard {i}/3 complete" in captured.err
        assert (run_dir / "shard-1" / "manifest.json").exists()
        assert main(["merge", str(run_dir)]) == 0
        assert capsys.readouterr().out == serial

    def test_shard_requires_resume(self, collection_file):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="run directory"):
            main(["join", str(collection_file), "-k", "1", "--tau", "0.2",
                  "--shard", "0/2"])

    def test_shard_rejects_stream(self, collection_file, tmp_path, capsys):
        code = main(
            ["join", str(collection_file), "-k", "1", "--tau", "0.2",
             "--shard", "0/2", "--resume", str(tmp_path / "r"), "--stream"]
        )
        assert code == 2
        assert "incompatible" in capsys.readouterr().err

    def test_merge_of_incomplete_run_fails_loudly(
        self, collection_file, tmp_path, capsys
    ):
        run_dir = tmp_path / "run"
        assert main(
            ["join", str(collection_file), "-k", "1", "--tau", "0.2",
             "--shard", "0/2", "--resume", str(run_dir)]
        ) == 0
        capsys.readouterr()
        from repro.core.errors import ShardIncompleteError

        with pytest.raises(ShardIncompleteError):
            main(["merge", str(run_dir)])

    def test_merge_collects_flat_resume_run(
        self, collection_file, tmp_path, capsys
    ):
        base = ["join", str(collection_file), "-k", "1", "--tau", "0.2"]
        run_dir = tmp_path / "flat"
        assert main(base + ["--resume", str(run_dir)]) == 0
        joined = capsys.readouterr().out
        assert main(["merge", str(run_dir)]) == 0
        assert capsys.readouterr().out == joined


class TestTopK:
    def test_outputs_requested_count_with_probabilities(
        self, collection_file, capsys
    ):
        assert main(
            ["topk", str(collection_file), "-k", "2", "--count", "5"]
        ) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l]
        assert len(lines) <= 5
        probs = [float(l.split("\t")[2]) for l in lines]
        assert probs == sorted(probs, reverse=True)

    def test_stats_on_stderr(self, collection_file, capsys):
        main(["topk", str(collection_file), "-k", "1", "--count", "3",
              "--stats"])
        assert "result pairs" in capsys.readouterr().err


class TestSearch:
    def test_search_finds_member(self, collection_file, capsys):
        collection = load_collection(collection_file)
        query = collection[0].most_probable_instance()[0]
        assert main(
            ["search", str(collection_file), query, "-k", "2", "--tau", "0.05"]
        ) == 0
        hits = {int(l.split("\t")[0]) for l in capsys.readouterr().out.splitlines() if l}
        assert 0 in hits


class TestVerify:
    def test_verify_prints_probability(self, capsys):
        assert main(
            ["verify", "banana", "ban{(a,0.7),(e,0.3)}na", "-k", "0"]
        ) == 0
        assert float(capsys.readouterr().out) == pytest.approx(0.7)

    def test_verify_certain_pair(self, capsys):
        main(["verify", "kitten", "sitting", "-k", "3"])
        assert float(capsys.readouterr().out) == pytest.approx(1.0)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["join", "x.txt", "-k", "1", "--tau", "0.1", "--algorithm", "ZZ"]
            )
