"""Tests for active-node sets: they must hold exact prefix edit distances."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.edit import edit_distance
from repro.uncertain.string import UncertainString
from repro.verify.active import advance_active_nodes, initial_active_nodes
from repro.verify.trie import TrieNode, build_trie

from tests.helpers import random_uncertain


def trie_node_strings(trie):
    """Map each trie node to its prefix string."""
    out = {}

    def walk(node: TrieNode, prefix: str) -> None:
        out[node] = prefix
        for char, child in node.children.items():
            walk(child, prefix + char)

    walk(trie.root, "")
    return out


def check_active_exactness(trie, query: str, k: int) -> None:
    """Active sets must equal {v : ed(query_prefix, str(v)) <= k} exactly."""
    strings = trie_node_strings(trie)
    active = initial_active_nodes(trie.root, k)
    for depth in range(len(query) + 1):
        prefix = query[:depth]
        expected = {
            node: edit_distance(prefix, node_string)
            for node, node_string in strings.items()
            if edit_distance(prefix, node_string) <= k
        }
        assert active == expected, f"prefix {prefix!r}"
        if depth < len(query):
            active = advance_active_nodes(active, query[depth], k)


class TestInitialActive:
    def test_contains_nodes_up_to_depth_k(self):
        trie = build_trie(UncertainString.from_text("ACGT"))
        active = initial_active_nodes(trie.root, 2)
        assert sorted(node.depth for node in active) == [0, 1, 2]
        for node, dist in active.items():
            assert dist == node.depth

    def test_k_zero_only_root(self):
        trie = build_trie(UncertainString.from_text("ACGT"))
        active = initial_active_nodes(trie.root, 0)
        assert list(active.values()) == [0]

    def test_rejects_negative_k(self):
        trie = build_trie(UncertainString.from_text("A"))
        with pytest.raises(ValueError):
            initial_active_nodes(trie.root, -1)


class TestAdvanceExactness:
    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_deterministic_trie(self, k):
        trie = build_trie(UncertainString.from_text("ACCGT"))
        check_active_exactness(trie, "AGCGT", k)

    @given(
        st.text(alphabet="AC", min_size=0, max_size=6),
        st.text(alphabet="AC", min_size=1, max_size=6),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=150, deadline=None)
    def test_exact_distances_on_path_tries(self, query, target, k):
        trie = build_trie(UncertainString.from_text(target))
        check_active_exactness(trie, query, k)

    @given(st.data())
    @settings(max_examples=80, deadline=None)
    def test_exact_distances_on_branching_tries(self, data):
        rng = random.Random(data.draw(st.integers(min_value=0, max_value=50_000)))
        string = random_uncertain(rng, rng.randint(2, 5), theta=0.6, gamma=2)
        trie = build_trie(string)
        query = "".join(rng.choice("ACGT") for _ in range(rng.randint(0, 5)))
        k = rng.randint(0, 2)
        check_active_exactness(trie, query, k)

    def test_empty_active_set_stays_empty(self):
        trie = build_trie(UncertainString.from_text("AAAA"))
        active = initial_active_nodes(trie.root, 0)
        active = advance_active_nodes(active, "C", 0)
        assert active == {}
