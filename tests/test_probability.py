"""Tests for the exact Pr(ed <= k) reference."""

import random

import pytest

from repro.distance.edit import edit_distance
from repro.distance.probability import edit_similarity_probability
from repro.uncertain.parser import parse_uncertain
from repro.uncertain.string import UncertainString
from repro.uncertain.worlds import enumerate_joint_worlds

from tests.helpers import random_uncertain


class TestExactProbability:
    def test_deterministic_pair_is_indicator(self):
        a = UncertainString.from_text("kitten")
        b = UncertainString.from_text("sitting")
        assert edit_similarity_probability(a, b, 2) == 0.0
        assert edit_similarity_probability(a, b, 3) == 1.0

    def test_matches_world_definition(self):
        a = parse_uncertain("A{(C,0.5),(G,0.5)}TA")
        b = parse_uncertain("{(A,0.7),(T,0.3)}CTA")
        for k in range(4):
            expected = sum(
                p
                for x, y, p in enumerate_joint_worlds(a, b)
                if edit_distance(x, y) <= k
            )
            assert edit_similarity_probability(a, b, k) == pytest.approx(expected)

    def test_monotone_in_k(self):
        rng = random.Random(5)
        a = random_uncertain(rng, 6)
        b = random_uncertain(rng, 6)
        probs = [edit_similarity_probability(a, b, k) for k in range(7)]
        assert all(lo <= hi + 1e-12 for lo, hi in zip(probs, probs[1:]))
        assert probs[6] == pytest.approx(1.0)  # k >= max length

    def test_length_gap_shortcut(self):
        a = UncertainString.from_text("AAAA")
        b = UncertainString.from_text("A")
        assert edit_similarity_probability(a, b, 2) == 0.0

    def test_symmetry(self):
        rng = random.Random(9)
        a = random_uncertain(rng, 5)
        b = random_uncertain(rng, 6)
        for k in (1, 2, 3):
            assert edit_similarity_probability(a, b, k) == pytest.approx(
                edit_similarity_probability(b, a, k)
            )

    def test_rejects_negative_k(self):
        a = UncertainString.from_text("A")
        with pytest.raises(ValueError):
            edit_similarity_probability(a, a, -1)

    def test_pair_limit_guard(self):
        a = parse_uncertain("{(A,0.5),(C,0.5)}" * 3)
        with pytest.raises(ValueError, match="refusing"):
            edit_similarity_probability(a, a, 1, pair_limit=10)
