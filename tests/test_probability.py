"""Tests for the exact Pr(ed <= k) reference."""

import random

import pytest

from repro.distance.edit import edit_distance
from repro.distance.probability import edit_similarity_probability
from repro.uncertain.parser import parse_uncertain
from repro.uncertain.string import UncertainString
from repro.uncertain.worlds import enumerate_joint_worlds

from tests.helpers import random_uncertain


class TestExactProbability:
    def test_deterministic_pair_is_indicator(self):
        a = UncertainString.from_text("kitten")
        b = UncertainString.from_text("sitting")
        assert edit_similarity_probability(a, b, 2) == 0.0
        assert edit_similarity_probability(a, b, 3) == 1.0

    def test_matches_world_definition(self):
        a = parse_uncertain("A{(C,0.5),(G,0.5)}TA")
        b = parse_uncertain("{(A,0.7),(T,0.3)}CTA")
        for k in range(4):
            expected = sum(
                p
                for x, y, p in enumerate_joint_worlds(a, b)
                if edit_distance(x, y) <= k
            )
            assert edit_similarity_probability(a, b, k) == pytest.approx(expected)

    def test_monotone_in_k(self):
        rng = random.Random(5)
        a = random_uncertain(rng, 6)
        b = random_uncertain(rng, 6)
        probs = [edit_similarity_probability(a, b, k) for k in range(7)]
        assert all(lo <= hi + 1e-12 for lo, hi in zip(probs, probs[1:]))
        assert probs[6] == pytest.approx(1.0)  # k >= max length

    def test_length_gap_shortcut(self):
        a = UncertainString.from_text("AAAA")
        b = UncertainString.from_text("A")
        assert edit_similarity_probability(a, b, 2) == 0.0

    def test_symmetry(self):
        rng = random.Random(9)
        a = random_uncertain(rng, 5)
        b = random_uncertain(rng, 6)
        for k in (1, 2, 3):
            assert edit_similarity_probability(a, b, k) == pytest.approx(
                edit_similarity_probability(b, a, k)
            )

    def test_rejects_negative_k(self):
        a = UncertainString.from_text("A")
        with pytest.raises(ValueError):
            edit_similarity_probability(a, a, -1)

    def test_pair_limit_guard(self):
        a = parse_uncertain("{(A,0.5),(C,0.5)}" * 3)
        with pytest.raises(ValueError, match="refusing"):
            edit_similarity_probability(a, a, 1, pair_limit=10)


class TestKnifeEdgeAccumulation:
    """Regression: fsum accumulation on pairs whose probability is tau ± 1 ulp.

    The pair below is engineered so that a naive ``+=`` accumulation of
    the matching world masses lands exactly on ``tau = 0.55`` (deciding
    dissimilar under the strict ``> tau`` rule) while the correctly
    rounded sum — ``math.fsum`` — is one ulp above ``tau`` (similar).
    Every exact verifier and both threshold verifiers must agree on the
    fsum answer.
    """

    TAU = 0.55

    @staticmethod
    def _knife_edge_pair():
        from repro.uncertain.position import UncertainPosition

        # Position B nominally holds ten 0.1-probability alternatives;
        # construction normalizes by their float sum 0.9999999999999999,
        # nudging each stored probability one ulp above 0.1. Summing ten
        # of them left-to-right rounds back down to exactly 1.0, while
        # fsum yields 1.0000000000000002 — position C's exact 0.5/0.5
        # split scales that 2-ulp gap into a 1-ulp gap around 0.55.
        c = UncertainPosition({"u": 0.5, "v": 0.5})
        b = UncertainPosition({ch: 0.1 for ch in "abcdefghij"})
        left = UncertainString.from_mixed(["x", c, b, "y"])
        right = UncertainString.from_text("xuay")
        return left, right

    def test_pair_sits_one_ulp_above_tau(self):
        import math

        left, right = self._knife_edge_pair()
        exact = edit_similarity_probability(left, right, 1)
        naive_accumulation = 0.0
        for _, _, p in sorted(
            (x, y, p)
            for x, y, p in enumerate_joint_worlds(left, right)
            if edit_distance(x, y) <= 1
        ):
            naive_accumulation += p
        # The construction invariant: += lands on tau, fsum one ulp above.
        assert naive_accumulation == self.TAU
        assert exact == self.TAU + math.ulp(self.TAU)

    def test_exact_verifiers_agree_above_tau(self):
        from repro.verify.naive import naive_verify
        from repro.verify.trie_verify import trie_verify

        left, right = self._knife_edge_pair()
        exact = edit_similarity_probability(left, right, 1)
        assert exact > self.TAU
        assert naive_verify(left, right, 1) == exact
        assert trie_verify(left, right, 1) == exact
        assert trie_verify(right, left, 1) == exact

    def test_threshold_verifiers_decide_similar(self):
        from repro.verify.naive import naive_verify_threshold
        from repro.verify.trie_verify import trie_verify_threshold

        left, right = self._knife_edge_pair()
        assert naive_verify_threshold(left, right, 1, self.TAU)
        assert trie_verify_threshold(left, right, 1, self.TAU)
        assert trie_verify_threshold(right, left, 1, self.TAU)

    def test_probability_exactly_tau_is_rejected(self):
        """The strict > tau rule: a pair AT tau must not be reported."""
        from repro.verify.naive import naive_verify_threshold
        from repro.verify.trie_verify import trie_verify_threshold

        left, right = self._knife_edge_pair()
        exact = edit_similarity_probability(left, right, 1)
        # tau == the pair's exact probability: strictly-greater fails.
        assert not naive_verify_threshold(left, right, 1, exact)
        assert not trie_verify_threshold(left, right, 1, exact)
        assert not trie_verify_threshold(right, left, 1, exact)
