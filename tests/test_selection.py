"""Tests for position-aware substring selection.

The load-bearing property is *completeness*: if ed(r, s) <= k, then for
every optimal alignment at least m - k segments of s are preserved, and a
preserved segment's image in r must start inside the selection window.
We check the end-to-end consequence: counting matching windows per
segment never reports fewer than m - k matches for truly similar pairs.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.edit import edit_distance
from repro.partition.even import partition_for
from repro.partition.selection import (
    SELECTION_MODES,
    selection_start_range,
    substring_starts,
)


def matched_segment_count(r: str, s: str, k: int, q: int, mode: str) -> int:
    """How many segments of s find a window match in r via the selection."""
    segments = partition_for(len(s), q, k)
    m = len(segments)
    matched = 0
    for seg in segments:
        piece = s[seg.start : seg.end]
        for start in substring_starts(seg, len(r), len(s), k, m, mode):
            if r[start : start + seg.length] == piece:
                matched += 1
                break
    return matched


class TestRangeShape:
    def test_paper_shift_formula(self):
        # pos=0 (first segment), |r| = |s|, k = 2: shift in [-1, 1].
        segments = partition_for(9, 3, 2)
        lo, hi = selection_start_range(segments[1], 9, 9, 2, len(segments), "shift")
        # segment 2 starts at 3: window [3 - 1, 3 + 1].
        assert (lo, hi) == (2, 4)

    def test_window_mode_is_symmetric_k(self):
        segments = partition_for(6, 2, 1)
        lo, hi = selection_start_range(segments[1], 6, 6, 1, 3, "window")
        assert (lo, hi) == (1, 3)

    def test_shift_range_bounded_by_k_plus_one(self):
        for k in range(5):
            for delta in range(-k, k + 1):
                s_len, r_len = 20, 20 + delta
                segments = partition_for(s_len, 3, k)
                for seg in segments:
                    starts = substring_starts(seg, r_len, s_len, k, len(segments), "shift")
                    assert len(starts) <= k + 1

    def test_multimatch_never_wider_than_shift(self):
        for k in (1, 2, 3):
            segments = partition_for(15, 3, k)
            for seg in segments:
                shift = set(substring_starts(seg, 16, 15, k, len(segments), "shift"))
                multi = set(substring_starts(seg, 16, 15, k, len(segments), "multimatch"))
                assert multi <= shift

    def test_clipped_to_valid_positions(self):
        segments = partition_for(6, 2, 3)
        for seg in segments:
            for mode in SELECTION_MODES:
                for start in substring_starts(seg, 6, 6, 3, len(segments), mode):
                    assert 0 <= start <= 6 - seg.length

    def test_unknown_mode_rejected(self):
        segments = partition_for(6, 2, 1)
        with pytest.raises(ValueError):
            selection_start_range(segments[0], 6, 6, 1, 3, "bogus")  # type: ignore[arg-type]


WORDS = st.text(alphabet="ab", min_size=4, max_size=14)


class TestCompleteness:
    @given(WORDS, WORDS, st.integers(min_value=1, max_value=3))
    @settings(max_examples=300)
    def test_shift_selection_complete(self, r, s, k):
        # Lemma 1: similar pairs must match >= m - k segments through the
        # selected windows.
        if abs(len(r) - len(s)) > k or edit_distance(r, s) > k:
            return
        m = len(partition_for(len(s), 2, k))
        assert matched_segment_count(r, s, k, 2, "shift") >= m - k

    @given(st.data())
    @settings(max_examples=200)
    def test_shift_selection_complete_under_random_edits(self, data):
        rng = random.Random(data.draw(st.integers(min_value=0, max_value=10_000)))
        s = "".join(rng.choice("abcd") for _ in range(rng.randint(6, 20)))
        k = rng.randint(1, 4)
        r = s
        for _ in range(rng.randint(0, k)):
            pos = rng.randrange(max(1, len(r)))
            op = rng.randrange(3)
            if op == 0 and len(r) > 1:
                r = r[:pos] + r[pos + 1 :]
            elif op == 1:
                r = r[:pos] + rng.choice("abcd") + r[pos:]
            else:
                r = r[:pos] + rng.choice("abcd") + r[pos + 1 :]
        if abs(len(r) - len(s)) > k:
            return
        m = len(partition_for(len(s), 3, k))
        assert matched_segment_count(r, s, k, 3, "shift") >= m - k
