"""Property tests: the length-banded parallel join equals the serial join.

The acceptance bar is byte-identity — same pairs, same order, same
reported probabilities (float-for-float) — across every algorithm
variant, k ∈ {1, 2, 3}, and workers ∈ {1, 2, 4}. The sweep runs the
band tasks in-process (same sharded code path, no pool) so the full
grid stays fast; dedicated tests cover the real ProcessPoolExecutor
path and the public ``config.workers`` dispatch.
"""

import random

import pytest

from repro.core.config import ALGORITHMS, JoinConfig
from repro.core.join import similarity_join
from repro.core.join_two import similarity_join_two
from repro.core.parallel import (
    LengthBand,
    parallel_similarity_join,
    parallel_similarity_join_two,
    plan_length_bands,
)

from tests.helpers import random_collection


def assert_outcomes_identical(parallel, serial):
    """Pair lists must match exactly, including probability floats."""
    assert parallel.pairs == serial.pairs
    assert [pair.probability for pair in parallel.pairs] == [
        pair.probability for pair in serial.pairs
    ]


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_all_variants_all_worker_counts(self, algorithm, k):
        rng = random.Random(hash((algorithm, k)) % 100_000)
        collection = random_collection(
            rng, 20, length_range=(3, 9), theta=0.3
        )
        base = JoinConfig.for_algorithm(
            algorithm, k=k, tau=0.1, q=2, report_probabilities=True
        )
        serial = similarity_join(collection, base)
        for workers in (1, 2, 4):
            config = JoinConfig.for_algorithm(
                algorithm,
                k=k,
                tau=0.1,
                q=2,
                report_probabilities=True,
                workers=workers,
            )
            parallel = parallel_similarity_join(
                collection, config, use_processes=False, min_parallel=0
            )
            assert_outcomes_identical(parallel, serial)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_unverified_probabilities_also_match(self, seed):
        """Paper behaviour (CDF-accepted pairs carry None) shards too."""
        rng = random.Random(seed)
        collection = random_collection(rng, 24, length_range=(3, 10))
        serial = similarity_join(collection, JoinConfig(k=2, tau=0.1, q=2))
        parallel = parallel_similarity_join(
            collection,
            JoinConfig(k=2, tau=0.1, q=2, workers=3),
            use_processes=False,
            min_parallel=0,
        )
        assert_outcomes_identical(parallel, serial)

    def test_process_pool_path(self):
        """The real ProcessPoolExecutor produces the identical pair list."""
        rng = random.Random(99)
        collection = random_collection(rng, 30, length_range=(3, 10))
        config = JoinConfig(k=2, tau=0.1, q=2, workers=2)
        serial = similarity_join(collection, JoinConfig(k=2, tau=0.1, q=2))
        parallel = parallel_similarity_join(collection, config, min_parallel=0)
        assert_outcomes_identical(parallel, serial)

    def test_probe_only_halos_remove_duplicate_filter_work(self):
        """Summed band filter counters equal the serial driver's exactly.

        Halo strings are probe-only (``index_length_cap``), so no
        halo×halo pair is ever evaluated: every length-eligible pair is
        counted once, in the band owning its shorter string.
        """
        rng = random.Random(42)
        collection = random_collection(rng, 60, length_range=(3, 12))
        serial = similarity_join(collection, JoinConfig(k=2, tau=0.1, q=2))
        parallel = parallel_similarity_join(
            collection,
            JoinConfig(k=2, tau=0.1, q=2, workers=4),
            use_processes=False,
            min_parallel=0,
        )
        assert_outcomes_identical(parallel, serial)
        for stage, counter in (
            ("length", "eligible"),
            ("qgram", "survivors"),
            ("qgram", "rejected"),
        ):
            assert parallel.stats.stage_count(stage, counter) == serial.stats.stage_count(
                stage, counter
            )

    def test_public_driver_dispatches_on_workers(self):
        """similarity_join(config.workers > 1) routes through the bands."""
        rng = random.Random(7)
        collection = random_collection(rng, 70, length_range=(3, 10))
        serial = similarity_join(collection, JoinConfig(k=1, tau=0.1, q=2))
        parallel = similarity_join(
            collection, JoinConfig(k=1, tau=0.1, q=2, workers=2)
        )
        assert_outcomes_identical(parallel, serial)

    def test_join_two_parallel_equals_serial(self):
        rng = random.Random(13)
        left = random_collection(rng, 18, length_range=(3, 9))
        right = random_collection(rng, 22, length_range=(3, 9))
        base = JoinConfig(k=2, tau=0.1, q=2, report_probabilities=True)
        serial = similarity_join_two(left, right, base)
        for workers in (2, 4):
            config = JoinConfig(
                k=2, tau=0.1, q=2, report_probabilities=True, workers=workers
            )
            parallel = parallel_similarity_join_two(
                left, right, config, use_processes=False, min_parallel=0
            )
            assert_outcomes_identical(parallel, serial)

    def test_empty_and_tiny_collections(self):
        config = JoinConfig(k=1, tau=0.1, workers=4)
        assert parallel_similarity_join([], config).pairs == []
        rng = random.Random(1)
        collection = random_collection(rng, 3, length_range=(4, 5))
        serial = similarity_join(collection, JoinConfig(k=1, tau=0.1))
        parallel = parallel_similarity_join(collection, config, min_parallel=0)
        assert_outcomes_identical(parallel, serial)


class TestBandPlanning:
    def test_bands_cover_all_lengths_disjointly(self):
        rng = random.Random(17)
        lengths = [rng.randint(2, 20) for _ in range(200)]
        k = 2
        bands = plan_length_bands(lengths, 4, k)
        assert 1 <= len(bands) <= 4
        # owned ranges are contiguous, ordered, and disjoint
        for before, after in zip(bands, bands[1:]):
            assert before.high < after.low
        owned = sorted(
            length
            for band in bands
            for length in range(band.low, band.high + 1)
        )
        assert owned[0] <= min(lengths) and owned[-1] >= max(lengths)
        # every string id appears in exactly one band as owned
        owners = {}
        for band in bands:
            for string_id in band.member_ids:
                if band.owns_length(lengths[string_id]):
                    assert string_id not in owners
                    owners[string_id] = band.index
        assert len(owners) == len(lengths)

    def test_halo_extends_k_past_owned_range(self):
        lengths = [4] * 10 + [5] * 10 + [6] * 10 + [7] * 10
        bands = plan_length_bands(lengths, 2, 1)
        assert len(bands) == 2
        first = bands[0]
        assert (first.low, first.high) == (4, 5)
        member_lengths = {lengths[i] for i in first.member_ids}
        assert member_lengths == {4, 5, 6}  # 6 is the k-wide halo

    def test_equal_lengths_never_straddle_bands(self):
        lengths = [5] * 100
        bands = plan_length_bands(lengths, 4, 2)
        assert len(bands) == 1
        assert bands[0].member_ids == tuple(range(100))

    def test_workers_one_is_single_band(self):
        bands = plan_length_bands([3, 4, 5, 9], 1, 1)
        assert len(bands) == 1
        assert (bands[0].low, bands[0].high) == (3, 9)

    def test_empty_input(self):
        assert plan_length_bands([], 4, 1) == []

    def test_band_dataclass_ownership_rule(self):
        band = LengthBand(index=0, low=3, high=5, member_ids=(0, 1))
        assert band.owns_length(3) and band.owns_length(5)
        assert not band.owns_length(6)  # halo, owned by the next band


class TestWorkersConfig:
    def test_workers_validated(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            JoinConfig(k=1, tau=0.1, workers=0)
        with pytest.raises(ValueError, match="workers must be >= 1"):
            JoinConfig(k=1, tau=0.1, workers=-2)
        with pytest.raises(ValueError, match="workers must be an int"):
            JoinConfig(k=1, tau=0.1, workers=2.5)

    def test_default_is_serial(self):
        assert JoinConfig(k=1, tau=0.1).workers == 1
