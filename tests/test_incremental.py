"""Tests for the incremental (streaming) joiner."""

import random

import pytest

from repro.baselines.brute import brute_force_join
from repro.core.config import JoinConfig
from repro.core.incremental import IncrementalJoiner
from repro.uncertain.string import UncertainString

from tests.helpers import random_collection


class TestEquivalenceWithBatch:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force_in_arrival_order(self, seed):
        rng = random.Random(seed)
        collection = random_collection(rng, 12, length_range=(4, 7))
        joiner = IncrementalJoiner(JoinConfig(k=1, tau=0.1, q=2))
        pairs = set()
        for string in collection:
            pairs.update(p.ids for p in joiner.add(string))
        expected = {(i, j) for i, j, _ in brute_force_join(collection, 1, 0.1)}
        assert pairs == expected

    def test_shuffled_arrival_order_same_pairs(self):
        rng = random.Random(9)
        collection = random_collection(rng, 10, length_range=(4, 7))
        # Arrival order: longest first — exercises both probe directions.
        order = sorted(range(len(collection)), key=lambda i: -len(collection[i]))
        joiner = IncrementalJoiner(JoinConfig(k=1, tau=0.1, q=2))
        pairs = set()
        id_map = {}
        for arrival, original in enumerate(order):
            id_map[arrival] = original
            for pair in joiner.add(collection[original]):
                pairs.add(tuple(sorted((id_map[pair.left_id], id_map[pair.right_id]))))
        expected = {(i, j) for i, j, _ in brute_force_join(collection, 1, 0.1)}
        assert pairs == expected

    def test_without_qgram_filter(self):
        rng = random.Random(4)
        collection = random_collection(rng, 8, length_range=(4, 6))
        joiner = IncrementalJoiner(JoinConfig.for_algorithm("FCT", k=1, tau=0.1, q=2))
        pairs = set()
        for string in collection:
            pairs.update(p.ids for p in joiner.add(string))
        expected = {(i, j) for i, j, _ in brute_force_join(collection, 1, 0.1)}
        assert pairs == expected


class TestApi:
    def test_new_pair_references_new_string(self):
        joiner = IncrementalJoiner(JoinConfig(k=1, tau=0.3, q=2))
        a = UncertainString.from_text("ACGT")
        assert joiner.add(a) == []
        pairs = joiner.add(a)
        assert [p.ids for p in pairs] == [(0, 1)]

    def test_extend_flattens(self):
        joiner = IncrementalJoiner(JoinConfig(k=0, tau=0.5, q=2))
        a = UncertainString.from_text("AAAA")
        pairs = joiner.extend([a, a, a])
        assert {p.ids for p in pairs} == {(0, 1), (0, 2), (1, 2)}

    def test_len_and_strings(self):
        joiner = IncrementalJoiner(JoinConfig(k=1, tau=0.1))
        a = UncertainString.from_text("ACGT")
        joiner.add(a)
        assert len(joiner) == 1
        assert joiner.strings == [a]

    def test_stats_accumulate(self):
        joiner = IncrementalJoiner(JoinConfig(k=0, tau=0.5, q=2))
        a = UncertainString.from_text("AAAA")
        joiner.extend([a, a])
        assert joiner.stats.total_strings == 2
        assert joiner.stats.result_pairs == 1
