"""Shared test utilities: random strings, strategies, reference kernels.

Besides the random-collection builders and hypothesis strategies, this
module keeps **frozen reference implementations** of the hot kernels
(CDF-bound DP, banded edit distance, frequency bounds) as they existed
before the allocation-conscious rewrites. The optimized kernels in
``repro.filters`` / ``repro.distance`` must stay float-for-float
identical to these copies — ``tests/test_kernel_equivalence.py`` holds
them to it. Do not "fix" or modernize the reference copies; their whole
value is that they do not change.
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.filters.frequency import FrequencyProfile
from repro.uncertain.alphabet import Alphabet
from repro.uncertain.position import UncertainPosition
from repro.uncertain.string import UncertainString

SMALL_ALPHABET = Alphabet("ACGT")


def random_uncertain(
    rng: random.Random,
    length: int,
    theta: float = 0.3,
    gamma: int = 2,
    alphabet: Alphabet = SMALL_ALPHABET,
    max_uncertain: int | None = None,
) -> UncertainString:
    """A random uncertain string with roughly ``theta`` uncertain positions."""
    symbols = alphabet.symbols
    positions = []
    uncertain_budget = max_uncertain if max_uncertain is not None else length
    for _ in range(length):
        if uncertain_budget > 0 and rng.random() < theta:
            support_size = min(rng.randint(2, max(2, gamma)), len(symbols))
            chars = rng.sample(symbols, support_size)
            weights = [rng.random() + 0.05 for _ in chars]
            total = sum(weights)
            positions.append(
                UncertainPosition({c: w / total for c, w in zip(chars, weights)})
            )
            uncertain_budget -= 1
        else:
            positions.append(UncertainPosition.certain(rng.choice(symbols)))
    return UncertainString(positions)


def random_collection(
    rng: random.Random,
    count: int,
    length_range: tuple[int, int] = (4, 8),
    theta: float = 0.3,
    gamma: int = 2,
    alphabet: Alphabet = SMALL_ALPHABET,
    max_uncertain: int | None = 3,
) -> list[UncertainString]:
    """A random collection kept small enough for brute-force comparison."""
    return [
        random_uncertain(
            rng,
            rng.randint(*length_range),
            theta=theta,
            gamma=gamma,
            alphabet=alphabet,
            max_uncertain=max_uncertain,
        )
        for _ in range(count)
    ]


# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------

def positions(alphabet: str = "ACGT", max_support: int = 3) -> st.SearchStrategy:
    """Strategy for one uncertain position over ``alphabet``."""

    def build(chars: list[str], weights: list[float]) -> UncertainPosition:
        total = sum(weights)
        return UncertainPosition(
            {c: w / total for c, w in zip(chars, weights)}
        )

    def position_from_support(support: list[str]) -> st.SearchStrategy:
        return st.lists(
            st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
            min_size=len(support),
            max_size=len(support),
        ).map(lambda ws: build(support, ws))

    supports = st.lists(
        st.sampled_from(list(alphabet)),
        min_size=1,
        max_size=max_support,
        unique=True,
    )
    return supports.flatmap(position_from_support)


def uncertain_strings(
    alphabet: str = "ACGT",
    min_length: int = 1,
    max_length: int = 6,
    max_support: int = 3,
    max_uncertain: int = 3,
) -> st.SearchStrategy:
    """Strategy for whole uncertain strings with bounded world counts."""

    def clamp(string: UncertainString) -> UncertainString:
        # Keep world counts small: flatten excess uncertain positions to
        # their modal character.
        kept = 0
        out = []
        for pos in string:
            if pos.is_certain:
                out.append(pos)
            elif kept < max_uncertain:
                out.append(pos)
                kept += 1
            else:
                out.append(UncertainPosition.certain(pos.top))
        return UncertainString(out)

    return (
        st.lists(
            positions(alphabet, max_support),
            min_size=min_length,
            max_size=max_length,
        )
        .map(UncertainString)
        .map(clamp)
    )

# ----------------------------------------------------------------------
# frozen reference kernels (pre-optimization copies — do not modernize)
# ----------------------------------------------------------------------

_RefBounds = tuple[tuple[float, ...], tuple[float, ...]]


def _ref_boundary_cell(distance: int, k: int) -> _RefBounds:
    values = tuple(1.0 if j >= distance else 0.0 for j in range(k + 1))
    return values, values


def reference_cdf_bounds(
    left: UncertainString, right: UncertainString, k: int
) -> _RefBounds:
    """The original tuple-per-cell Theorem 4 DP (pre flat-buffer rewrite)."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    n, m = len(left), len(right)
    if abs(n - m) > k:
        zeros = tuple(0.0 for _ in range(k + 1))
        return zeros, zeros

    zeros = tuple(0.0 for _ in range(k + 1))
    zero: _RefBounds = (zeros, zeros)
    previous_row: dict[int, _RefBounds] = {}
    for y in range(0, min(m, k) + 1):
        previous_row[y] = _ref_boundary_cell(y, k)

    for x in range(1, n + 1):
        current_row: dict[int, _RefBounds] = {}
        row_mass = 0.0
        y_lo = max(0, x - k)
        y_hi = min(m, x + k)
        if y_lo == 0:
            current_row[0] = _ref_boundary_cell(x, k)
            y_start = 1
        else:
            y_start = y_lo
        left_pos = left[x - 1]
        for y in range(y_start, y_hi + 1):
            diag = previous_row.get(y - 1, zero)
            up = current_row.get(y - 1, zero)
            side = previous_row.get(y, zero)
            p1 = left_pos.agreement(right[y - 1])
            p2 = 1.0 - p1
            diag_l, diag_u = diag
            up_l, up_u = up
            side_l, side_u = side
            best_l = max(diag_l, up_l, side_l)
            lower = []
            upper = []
            for j in range(k + 1):
                from_diag = p1 * diag_l[j]
                from_best = p2 * best_l[j - 1] if j > 0 else 0.0
                lower.append(max(from_diag, from_best))
                u = p1 * diag_u[j]
                if j > 0:
                    u += p2 * diag_u[j - 1] + up_u[j - 1] + side_u[j - 1]
                upper.append(min(1.0, u))
            current_row[y] = (tuple(lower), tuple(upper))
            row_mass += upper[k]
        if x <= k and y_lo == 0:
            row_mass += current_row[0][1][k]
        if row_mass == 0.0:
            return zero
        previous_row = current_row
    final = previous_row.get(m)
    if final is None:  # pragma: no cover - band always reaches (n, m)
        return zero
    return final


def reference_edit_distance_banded(left: str, right: str, k: int) -> int:
    """The original banded DP allocating a fresh row per outer iteration."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    length_gap = abs(len(left) - len(right))
    if length_gap > k:
        return k + 1
    if left == right:
        return 0
    if len(left) < len(right):
        left, right = right, left
    n, m = len(left), len(right)
    big = k + 1
    previous = [j if j <= k else big for j in range(m + 1)]
    for i in range(1, n + 1):
        lo = max(1, i - k)
        hi = min(m, i + k)
        current = [big] * (m + 1)
        if i <= k:
            current[0] = i
        row_min = current[0] if i <= k else big
        left_char = left[i - 1]
        for j in range(lo, hi + 1):
            cost = 0 if left_char == right[j - 1] else 1
            best = previous[j - 1] + cost
            if previous[j] + 1 < best:
                best = previous[j] + 1
            if current[j - 1] + 1 < best:
                best = current[j - 1] + 1
            if best > big:
                best = big
            current[j] = best
            if best < row_min:
                row_min = best
        if row_min > k:
            return big
        previous = current
    return previous[m] if previous[m] <= k else big


def reference_fd_lower_bound(
    left: FrequencyProfile, right: FrequencyProfile
) -> int:
    """The original Lemma 6 walk over a per-pair support-set union."""
    positive = 0
    negative = 0
    for char in left.chars() | right.chars():
        l_dist = left.distribution(char)
        r_dist = right.distribution(char)
        if r_dist.total < l_dist.certain:
            positive += l_dist.certain - r_dist.total
        if l_dist.total < r_dist.certain:
            negative += r_dist.certain - l_dist.total
    return max(positive, negative)


def reference_expected_negative(
    left: FrequencyProfile, right: FrequencyProfile
) -> float:
    """The original E[nD] sum, pinned to ascending character order.

    The pre-optimization code iterated ``left.chars() | right.chars()``
    in set (hash) order; the optimized kernel iterates the sorted merged
    support. Float accumulation order matters for exact equality, so
    this reference fixes the ascending order the optimized kernel is
    specified to use — the per-character terms are otherwise verbatim.
    """
    total = 0.0
    for char in sorted(left.chars() | right.chars()):
        l_dist = left.distribution(char)
        r_dist = right.distribution(char)
        if r_dist.total == 0:
            continue
        contribution = 0.0
        for offset, mass in enumerate(l_dist.pmf):
            if mass == 0.0:
                continue
            x = l_dist.certain + offset
            contribution += mass * r_dist.expected_excess_over(x)
        total += contribution
    return total


def reference_expected_positive_negative(
    left: FrequencyProfile, right: FrequencyProfile
) -> tuple[float, float]:
    return (
        reference_expected_negative(right, left),
        reference_expected_negative(left, right),
    )
