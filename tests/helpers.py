"""Shared test utilities: random uncertain strings and hypothesis strategies."""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.uncertain.alphabet import Alphabet
from repro.uncertain.position import UncertainPosition
from repro.uncertain.string import UncertainString

SMALL_ALPHABET = Alphabet("ACGT")


def random_uncertain(
    rng: random.Random,
    length: int,
    theta: float = 0.3,
    gamma: int = 2,
    alphabet: Alphabet = SMALL_ALPHABET,
    max_uncertain: int | None = None,
) -> UncertainString:
    """A random uncertain string with roughly ``theta`` uncertain positions."""
    symbols = alphabet.symbols
    positions = []
    uncertain_budget = max_uncertain if max_uncertain is not None else length
    for _ in range(length):
        if uncertain_budget > 0 and rng.random() < theta:
            support_size = min(rng.randint(2, max(2, gamma)), len(symbols))
            chars = rng.sample(symbols, support_size)
            weights = [rng.random() + 0.05 for _ in chars]
            total = sum(weights)
            positions.append(
                UncertainPosition({c: w / total for c, w in zip(chars, weights)})
            )
            uncertain_budget -= 1
        else:
            positions.append(UncertainPosition.certain(rng.choice(symbols)))
    return UncertainString(positions)


def random_collection(
    rng: random.Random,
    count: int,
    length_range: tuple[int, int] = (4, 8),
    theta: float = 0.3,
    gamma: int = 2,
    alphabet: Alphabet = SMALL_ALPHABET,
    max_uncertain: int | None = 3,
) -> list[UncertainString]:
    """A random collection kept small enough for brute-force comparison."""
    return [
        random_uncertain(
            rng,
            rng.randint(*length_range),
            theta=theta,
            gamma=gamma,
            alphabet=alphabet,
            max_uncertain=max_uncertain,
        )
        for _ in range(count)
    ]


# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------

def positions(alphabet: str = "ACGT", max_support: int = 3) -> st.SearchStrategy:
    """Strategy for one uncertain position over ``alphabet``."""

    def build(chars: list[str], weights: list[float]) -> UncertainPosition:
        total = sum(weights)
        return UncertainPosition(
            {c: w / total for c, w in zip(chars, weights)}
        )

    def position_from_support(support: list[str]) -> st.SearchStrategy:
        return st.lists(
            st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
            min_size=len(support),
            max_size=len(support),
        ).map(lambda ws: build(support, ws))

    supports = st.lists(
        st.sampled_from(list(alphabet)),
        min_size=1,
        max_size=max_support,
        unique=True,
    )
    return supports.flatmap(position_from_support)


def uncertain_strings(
    alphabet: str = "ACGT",
    min_length: int = 1,
    max_length: int = 6,
    max_support: int = 3,
    max_uncertain: int = 3,
) -> st.SearchStrategy:
    """Strategy for whole uncertain strings with bounded world counts."""

    def clamp(string: UncertainString) -> UncertainString:
        # Keep world counts small: flatten excess uncertain positions to
        # their modal character.
        kept = 0
        out = []
        for pos in string:
            if pos.is_certain:
                out.append(pos)
            elif kept < max_uncertain:
                out.append(pos)
                kept += 1
            else:
                out.append(UncertainPosition.certain(pos.top))
        return UncertainString(out)

    return (
        st.lists(
            positions(alphabet, max_support),
            min_size=min_length,
            max_size=max_length,
        )
        .map(UncertainString)
        .map(clamp)
    )
