"""Tests for the text table / ASCII chart reporting helpers."""

import pytest

from repro.report.chart import bar_chart, series_chart
from repro.report.table import TextTable, format_table


class TestTextTable:
    def test_renders_header_and_rows(self):
        table = TextTable(["name", "count"])
        table.add_row("alpha", 3)
        table.add_row("b", 10)
        text = table.render()
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "alpha" in lines[2]
        assert len(table) == 2

    def test_numeric_columns_right_aligned(self):
        table = TextTable(["label", "value"])
        table.add_row("x", 5)
        table.add_row("y", 12345)
        lines = table.render().splitlines()
        assert lines[2].endswith("    5")
        assert lines[3].endswith("12345")

    def test_named_rows(self):
        table = TextTable(["a", "b"])
        table.add_row(b=2, a=1)
        assert "1" in table.render()

    def test_float_precision(self):
        table = TextTable(["v"], precision=2)
        table.add_row(0.123456)
        assert "0.12" in table.render()

    def test_bool_rendering(self):
        table = TextTable(["flag"])
        table.add_row(True)
        assert "yes" in table.render()

    @pytest.mark.parametrize(
        "action",
        [
            lambda t: t.add_row(1, 2, 3),
            lambda t: t.add_row(1),
            lambda t: t.add_row(1, b=2),
            lambda t: t.add_row(z=1),
        ],
    )
    def test_bad_rows_rejected(self, action):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            action(table)

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            TextTable([])
        with pytest.raises(ValueError):
            TextTable(["a", "a"])


class TestFormatTable:
    def test_infers_columns_from_first_row(self):
        text = format_table([{"x": 1, "y": 2.5}, {"x": 3, "y": 4.0}])
        assert text.splitlines()[0].split() == ["x", "y"]

    def test_explicit_column_subset(self):
        text = format_table([{"x": 1, "y": 2, "z": 3}], columns=["z", "x"])
        assert text.splitlines()[0].split() == ["z", "x"]

    def test_zero_rows_without_columns_rejected(self):
        with pytest.raises(ValueError):
            format_table([])


class TestBarChart:
    def test_peak_gets_full_width(self):
        text = bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_zero_values(self):
        text = bar_chart({"a": 0.0})
        assert "#" not in text

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            bar_chart({})


class TestSeriesChart:
    def test_contains_marks_and_legend(self):
        text = series_chart(
            [1, 2, 3],
            {"QFCT": [1.0, 2.0, 3.0], "FCT": [2.0, 4.0, 8.0]},
        )
        assert "o=QFCT" in text
        assert "x=FCT" in text
        assert "o" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="points"):
            series_chart([1, 2], {"s": [1.0]})

    def test_needs_two_x_values(self):
        with pytest.raises(ValueError):
            series_chart([1], {"s": [1.0]})

    def test_all_zero_series(self):
        text = series_chart([0, 1], {"s": [0.0, 0.0]})
        assert "> x in" in text
