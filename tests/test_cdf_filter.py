"""Tests for the CDF-bound filter (Theorem 4)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.probability import edit_similarity_probability
from repro.filters.base import FilterVerdict
from repro.filters.cdf import CdfBoundFilter, cdf_bounds
from repro.uncertain.parser import parse_uncertain
from repro.uncertain.string import UncertainString

from tests.helpers import random_uncertain, uncertain_strings


class TestDeterministicCases:
    def test_equal_strings(self):
        a = UncertainString.from_text("ACGT")
        lower, upper = cdf_bounds(a, a, 2)
        assert lower[0] == pytest.approx(1.0)
        assert upper[0] == pytest.approx(1.0)

    def test_detects_exact_distance_one(self):
        a = UncertainString.from_text("ACGT")
        b = UncertainString.from_text("ACGA")
        lower, upper = cdf_bounds(a, b, 2)
        assert upper[0] == pytest.approx(0.0)   # ed > 0 surely
        assert lower[1] == pytest.approx(1.0)   # ed <= 1 surely

    def test_length_gap_shortcut(self):
        a = UncertainString.from_text("A")
        b = UncertainString.from_text("AAAAA")
        lower, upper = cdf_bounds(a, b, 2)
        assert max(upper) == 0.0


class TestPaperFootnoteExamples:
    """The footnote shows Ge-Li's original bounds violated on these pairs;
    Theorem 4's corrected bounds must hold."""

    def test_lower_bound_example(self):
        r = UncertainString.from_text("ACC")
        s = parse_uncertain("A{(C,0.7),(G,0.2),(T,0.1)}C")
        lower, upper = cdf_bounds(r, s, 1)
        exact = edit_similarity_probability(r, s, 1)
        assert lower[1] <= exact + 1e-9 <= upper[1] + 2e-9

    def test_upper_bound_example(self):
        # DISC vs DI{(C,0.4),(S,0.5),(R,0.1)} with k = 1 — length 4 vs 3.
        r = UncertainString.from_text("DISC")
        s = parse_uncertain("DI{(C,0.4),(S,0.5),(R,0.1)}")
        lower, upper = cdf_bounds(r, s, 1)
        exact = edit_similarity_probability(r, s, 1)
        assert lower[1] <= exact + 1e-9 <= upper[1] + 2e-9


class TestSandwichProperty:
    @given(
        uncertain_strings(max_length=6),
        uncertain_strings(max_length=6),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=200, deadline=None)
    def test_bounds_sandwich_exact_probability(self, left, right, k):
        lower, upper = cdf_bounds(left, right, k)
        for j in range(k + 1):
            exact = edit_similarity_probability(left, right, j)
            assert lower[j] <= exact + 1e-9
            assert upper[j] >= exact - 1e-9

    @given(
        uncertain_strings(max_length=6),
        uncertain_strings(max_length=6),
    )
    @settings(max_examples=80, deadline=None)
    def test_bounds_monotone_in_j(self, left, right):
        lower, upper = cdf_bounds(left, right, 3)
        for j in range(3):
            assert upper[j] <= upper[j + 1] + 1e-9
        # L need not be monotone by construction, but must stay in [0, 1].
        assert all(0.0 <= v <= 1.0 for v in lower)
        assert all(0.0 <= v <= 1.0 for v in upper)


class TestFilterDecisions:
    def test_accept_identical_strings(self):
        f = CdfBoundFilter(k=1)
        a = UncertainString.from_text("ACGTACGT")
        decision = f.decide(a, a, tau=0.5)
        assert decision.verdict is FilterVerdict.ACCEPT

    def test_reject_distant_strings(self):
        f = CdfBoundFilter(k=1)
        a = UncertainString.from_text("AAAAAAAA")
        b = UncertainString.from_text("CCCCCCCC")
        decision = f.decide(a, b, tau=0.01)
        assert decision.rejected

    def test_undecided_in_between(self):
        rng = random.Random(23)
        f = CdfBoundFilter(k=1)
        seen_undecided = False
        for _ in range(120):
            a = random_uncertain(rng, 5, theta=0.5)
            b = random_uncertain(rng, 5, theta=0.5)
            decision = f.decide(a, b, tau=0.3)
            if decision.verdict is FilterVerdict.UNDECIDED:
                seen_undecided = True
                # undecided means tau within (L, U]
                assert decision.lower <= 0.3 < max(decision.upper, 0.3 + 1e-12)
        assert seen_undecided

    def test_decisions_never_contradict_truth(self):
        rng = random.Random(29)
        f = CdfBoundFilter(k=2)
        for _ in range(100):
            a = random_uncertain(rng, rng.randint(4, 6), theta=0.4)
            b = random_uncertain(rng, rng.randint(4, 6), theta=0.4)
            decision = f.decide(a, b, tau=0.2)
            exact = edit_similarity_probability(a, b, 2)
            if decision.accepted:
                assert exact > 0.2 - 1e-9
            elif decision.rejected:
                assert exact <= 0.2 + 1e-9

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            CdfBoundFilter(k=-1)


class TestKernelCaches:
    """Regression: per-(distance, k) boundary cells are memoized."""

    def test_boundary_cell_memoized(self):
        from repro.filters.cdf import _boundary_cell

        assert _boundary_cell(3, 2) is _boundary_cell(3, 2)
        assert _boundary_cell(0, 4) is _boundary_cell(0, 4)
        assert _boundary_cell(2, 2) == (
            (0.0, 0.0, 1.0),
            (0.0, 0.0, 1.0),
        )

    def test_certain_pair_fast_path_uses_boundary_cells(self):
        from repro.filters.cdf import _boundary_cell

        a = UncertainString.from_text("ACGT")
        b = UncertainString.from_text("ACGA")
        assert cdf_bounds(a, b, 2) is _boundary_cell(1, 2)
