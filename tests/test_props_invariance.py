"""Structural invariance properties of the join.

The join's answer is a property of the *multiset* of strings: permuting
the collection must permute the pairs, duplicating a string must add its
pairs, and growing tau can only shrink the result.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import JoinConfig
from repro.core.join import similarity_join

from tests.helpers import random_collection

SLOW = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def join_pairs(collection, k=1, tau=0.1):
    return similarity_join(collection, JoinConfig(k=k, tau=tau, q=2)).id_pairs()


class TestPermutationInvariance:
    @given(st.integers(min_value=0, max_value=10_000))
    @SLOW
    def test_permuting_ids_permutes_pairs(self, seed):
        rng = random.Random(seed)
        collection = random_collection(rng, 9, length_range=(4, 6))
        base = join_pairs(collection)
        order = list(range(len(collection)))
        rng.shuffle(order)
        shuffled = [collection[i] for i in order]
        # map: new position -> original id
        back = {new: old for new, old in enumerate(order)}
        remapped = {
            tuple(sorted((back[i], back[j]))) for i, j in join_pairs(shuffled)
        }
        assert remapped == base


class TestMonotonicity:
    @given(st.integers(min_value=0, max_value=10_000))
    @SLOW
    def test_result_shrinks_with_tau(self, seed):
        rng = random.Random(seed)
        collection = random_collection(rng, 8, length_range=(4, 6))
        loose = join_pairs(collection, tau=0.05)
        tight = join_pairs(collection, tau=0.4)
        assert tight <= loose

    @given(st.integers(min_value=0, max_value=10_000))
    @SLOW
    def test_result_grows_with_k(self, seed):
        rng = random.Random(seed)
        collection = random_collection(rng, 8, length_range=(4, 6))
        small_k = join_pairs(collection, k=0, tau=0.1)
        large_k = join_pairs(collection, k=2, tau=0.1)
        assert small_k <= large_k


class TestDuplication:
    @given(st.integers(min_value=0, max_value=10_000))
    @SLOW
    def test_appending_a_copy_adds_its_pairs(self, seed):
        rng = random.Random(seed)
        collection = random_collection(rng, 6, length_range=(4, 6))
        base = join_pairs(collection)
        copy_of = rng.randrange(len(collection))
        extended = collection + [collection[copy_of]]
        new_id = len(collection)
        got = join_pairs(extended)
        # old pairs unchanged
        assert {p for p in got if new_id not in p} == base
        # the copy pairs with its original (identical string, so
        # Pr(ed <= k) is Pr over two iid copies; certainly positive and
        # usually > tau for the diagonal mass)
        partners = {i for i, j in got if j == new_id} | {
            j for i, j in got if i == new_id
        }
        expected_partners = {i for i, j in base if j == copy_of} | {
            j for i, j in base if i == copy_of
        }
        assert expected_partners <= partners | {copy_of}
