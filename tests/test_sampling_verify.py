"""Tests for Monte-Carlo verification."""

import pytest

from repro.distance.probability import edit_similarity_probability
from repro.uncertain.parser import parse_uncertain
from repro.uncertain.string import UncertainString
from repro.verify.sampling import sampled_verify, sampled_verify_threshold

from tests.helpers import random_uncertain
import random


class TestEstimator:
    def test_deterministic_pair_is_exact(self):
        a = UncertainString.from_text("kitten")
        b = UncertainString.from_text("sitting")
        assert sampled_verify(a, b, 3, samples=8, rng=0) == 1.0
        assert sampled_verify(a, b, 2, samples=8, rng=0) == 0.0

    def test_converges_to_exact_probability(self):
        rng = random.Random(3)
        a = random_uncertain(rng, 6, theta=0.5)
        b = random_uncertain(rng, 6, theta=0.5)
        exact = edit_similarity_probability(a, b, 2)
        estimate = sampled_verify(a, b, 2, samples=20_000, rng=1)
        assert estimate == pytest.approx(exact, abs=0.02)

    def test_length_gap_short_circuit(self):
        a = UncertainString.from_text("A")
        b = UncertainString.from_text("AAAAA")
        assert sampled_verify(a, b, 1, samples=4, rng=0) == 0.0

    def test_rejects_bad_arguments(self):
        a = UncertainString.from_text("A")
        with pytest.raises(ValueError):
            sampled_verify(a, a, -1)
        with pytest.raises(ValueError):
            sampled_verify(a, a, 1, samples=0)


class TestThresholdDecision:
    def test_confident_accept(self):
        s = parse_uncertain("ACGT{(A,0.9),(C,0.1)}ACGT")
        decision = sampled_verify_threshold(s, s, 2, tau=0.3, rng=7)
        assert decision.similar
        assert decision.confident
        assert bool(decision)

    def test_confident_reject(self):
        a = UncertainString.from_text("AAAAAAAA")
        b = parse_uncertain("CCCCCCC{(C,0.9),(A,0.1)}")
        decision = sampled_verify_threshold(a, b, 2, tau=0.3, rng=7)
        assert not decision.similar
        assert decision.confident

    def test_knife_edge_exhausts_budget_without_confidence(self):
        # Pr(ed <= 0) == 0.5 exactly == tau-ish: no confident margin.
        a = parse_uncertain("{(A,0.5),(C,0.5)}")
        b = UncertainString.from_text("A")
        decision = sampled_verify_threshold(
            a, b, 0, tau=0.5, max_samples=2048, rng=11
        )
        assert not decision.confident
        assert decision.samples == 2048

    def test_matches_exact_decision_on_clear_margins(self):
        rng = random.Random(19)
        checked = 0
        for _ in range(25):
            a = random_uncertain(rng, 5, theta=0.4)
            b = random_uncertain(rng, 5, theta=0.4)
            exact = edit_similarity_probability(a, b, 1)
            if abs(exact - 0.25) < 0.1:
                continue  # demand a clear margin for the confident test
            checked += 1
            decision = sampled_verify_threshold(a, b, 1, tau=0.25, rng=rng)
            assert decision.similar == (exact > 0.25)
        assert checked > 5

    def test_rejects_bad_arguments(self):
        a = UncertainString.from_text("A")
        with pytest.raises(ValueError):
            sampled_verify_threshold(a, a, 1, tau=1.0)
        with pytest.raises(ValueError):
            sampled_verify_threshold(a, a, 1, tau=0.5, delta=0.0)
