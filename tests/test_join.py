"""Integration tests: every join variant must equal the brute-force join."""

import random

import pytest

from repro.baselines.brute import brute_force_join
from repro.core.config import ALGORITHMS, JoinConfig
from repro.core.join import similarity_join
from repro.uncertain.parser import parse_uncertain
from repro.uncertain.string import UncertainString

from tests.helpers import random_collection


def brute_pairs(collection, k, tau):
    return {(i, j) for i, j, _ in brute_force_join(collection, k, tau)}


class TestCorrectnessAgainstBruteForce:
    @pytest.mark.parametrize("algorithm", ["QFCT", "QCT", "QFT", "FCT", "QT", "T"])
    def test_variant_matches_ground_truth(self, algorithm):
        rng = random.Random(hash(algorithm) % 1000)
        collection = random_collection(rng, 14, length_range=(4, 7), theta=0.35)
        config = JoinConfig.for_algorithm(algorithm, k=1, tau=0.1, q=2)
        outcome = similarity_join(collection, config)
        assert outcome.id_pairs() == brute_pairs(collection, 1, 0.1)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("k,tau,q", [(1, 0.05, 2), (2, 0.3, 2), (1, 0.5, 3)])
    def test_parameter_grid(self, seed, k, tau, q):
        rng = random.Random(seed * 101 + k)
        collection = random_collection(rng, 12, length_range=(4, 8), theta=0.3)
        config = JoinConfig(k=k, tau=tau, q=q)
        outcome = similarity_join(collection, config)
        assert outcome.id_pairs() == brute_pairs(collection, k, tau)

    def test_naive_verification_variant(self):
        rng = random.Random(77)
        collection = random_collection(rng, 10, length_range=(4, 6))
        config = JoinConfig(k=1, tau=0.2, q=2, verification="naive")
        outcome = similarity_join(collection, config)
        assert outcome.id_pairs() == brute_pairs(collection, 1, 0.2)

    def test_selection_modes_agree(self):
        rng = random.Random(13)
        collection = random_collection(rng, 12, length_range=(4, 7))
        truth = brute_pairs(collection, 1, 0.15)
        for mode in ("shift", "multimatch", "window"):
            config = JoinConfig(k=1, tau=0.15, q=2, selection=mode)
            assert similarity_join(collection, config).id_pairs() == truth

    def test_group_and_bound_modes_agree(self):
        rng = random.Random(14)
        collection = random_collection(rng, 12, length_range=(4, 7))
        truth = brute_pairs(collection, 1, 0.15)
        for group_mode in ("exact", "beta"):
            for bound_mode in ("paper", "markov"):
                config = JoinConfig(
                    k=1, tau=0.15, q=2, group_mode=group_mode, bound_mode=bound_mode
                )
                assert similarity_join(collection, config).id_pairs() == truth


class TestReportedProbabilities:
    def test_probabilities_match_reference(self):
        rng = random.Random(4)
        collection = random_collection(rng, 10, length_range=(4, 6))
        config = JoinConfig(k=1, tau=0.1, q=2, report_probabilities=True)
        outcome = similarity_join(collection, config)
        truth = {(i, j): p for i, j, p in brute_force_join(collection, 1, 0.1)}
        assert outcome.id_pairs() == set(truth)
        for pair in outcome.pairs:
            assert pair.probability == pytest.approx(truth[pair.ids], abs=1e-9)

    def test_without_reporting_cdf_accepts_may_skip_probability(self):
        collection = [
            UncertainString.from_text("ACGTACGT"),
            UncertainString.from_text("ACGTACGT"),
        ]
        outcome = similarity_join(collection, JoinConfig(k=1, tau=0.5, q=2))
        assert outcome.id_pairs() == {(0, 1)}
        # identical strings are CDF-accepted without verification
        assert outcome.pairs[0].probability is None


class TestEdgeCases:
    def test_empty_collection(self):
        outcome = similarity_join([], JoinConfig(k=1, tau=0.1))
        assert outcome.pairs == []

    def test_single_string(self):
        outcome = similarity_join(
            [UncertainString.from_text("ACGT")], JoinConfig(k=1, tau=0.1)
        )
        assert outcome.pairs == []

    def test_duplicate_strings_all_pair(self):
        s = parse_uncertain("AC{(G,0.5),(T,0.5)}T")
        outcome = similarity_join([s, s, s], JoinConfig(k=1, tau=0.1, q=2))
        assert outcome.id_pairs() == {(0, 1), (0, 2), (1, 2)}

    def test_tau_zero_keeps_strictly_positive_pairs(self):
        collection = [
            UncertainString.from_text("AAAA"),
            UncertainString.from_text("CCCC"),
            UncertainString.from_text("AAAC"),
        ]
        outcome = similarity_join(collection, JoinConfig(k=1, tau=0.0, q=2))
        assert outcome.id_pairs() == {(0, 2)}

    def test_very_short_strings(self):
        collection = [
            UncertainString.from_text("A"),
            UncertainString.from_text("C"),
            UncertainString.from_text("AG"),
        ]
        outcome = similarity_join(collection, JoinConfig(k=2, tau=0.1, q=3))
        assert outcome.id_pairs() == brute_pairs(collection, 2, 0.1)


class TestStatistics:
    def test_counters_populated(self):
        rng = random.Random(8)
        collection = random_collection(rng, 10, length_range=(4, 6))
        outcome = similarity_join(collection, JoinConfig(k=1, tau=0.1, q=2))
        stats = outcome.stats
        assert stats.total_strings == 10
        assert stats.result_pairs == len(outcome.pairs)
        assert stats.qgram_survivors >= stats.frequency_checked >= 0
        assert stats.total_seconds > 0
        assert "strings" in stats.summary()

    def test_filter_order_counts_are_consistent(self):
        rng = random.Random(9)
        collection = random_collection(rng, 12, length_range=(4, 7))
        outcome = similarity_join(collection, JoinConfig(k=1, tau=0.2, q=2))
        stats = outcome.stats
        assert stats.frequency_checked == stats.qgram_survivors
        assert stats.cdf_checked == stats.frequency_survivors
        assert (
            stats.cdf_accepted + stats.cdf_rejected + stats.cdf_undecided
            == stats.cdf_checked
        )
        assert stats.verifications <= stats.cdf_undecided + stats.cdf_accepted
