"""Tests for the textual uncertain-string format."""

import pytest

from repro.uncertain.parser import (
    UncertainStringSyntaxError,
    format_uncertain,
    parse_uncertain,
)
from repro.uncertain.string import UncertainString


class TestParse:
    def test_plain_text(self):
        s = parse_uncertain("GATTACA")
        assert s.is_certain
        assert s.most_probable_instance()[0] == "GATTACA"

    def test_single_pdf_block(self):
        s = parse_uncertain("A{(C,0.5),(G,0.5)}T")
        assert len(s) == 3
        assert s[1].probability("C") == pytest.approx(0.5)

    def test_paper_table1_string(self):
        # S2 from Table 1: AA{(G,0.9),(T,0.1)}G{(C,0.3),(G,0.2),(T,0.5)}C
        s = parse_uncertain("AA{(G,0.9),(T,0.1)}G{(C,0.3),(G,0.2),(T,0.5)}C")
        assert len(s) == 6
        assert s[2].probability("G") == pytest.approx(0.9)
        assert s[4].probability("T") == pytest.approx(0.5)

    def test_whitespace_in_probability(self):
        s = parse_uncertain("{(A, 0.5),(C, 0.5)}")
        assert s[0].probability("A") == pytest.approx(0.5)

    def test_scientific_notation(self):
        s = parse_uncertain("{(A,5e-1),(C,0.5)}")
        assert s[0].probability("A") == pytest.approx(0.5)

    def test_space_as_alternative_char(self):
        s = parse_uncertain("a{( ,0.5),(b,0.5)}c")
        assert s[1].probability(" ") == pytest.approx(0.5)


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "A{(C,0.5)",        # unterminated block
            "A}C",              # unmatched close
            "A{}C",             # empty block
            "A{(C,0.5),(G,0.6)}",   # bad sum
            "A{(CG,1.0)}",      # multi-char alternative
            "A{(C,x)}",         # bad probability
            "A{(C0.5)}",        # missing comma
        ],
    )
    def test_malformed_inputs_raise(self, text):
        with pytest.raises(UncertainStringSyntaxError):
            parse_uncertain(text)

    def test_error_reports_offset(self):
        with pytest.raises(UncertainStringSyntaxError) as excinfo:
            parse_uncertain("AC}T")
        assert excinfo.value.index == 2


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "GATTACA",
            "A{(C,0.5),(G,0.5)}T",
            "{(A,0.8),(C,0.2)}{(G,0.9),(T,0.1)}",
            "AA{(G,0.9),(T,0.1)}G{(C,0.3),(G,0.2),(T,0.5)}C",
        ],
    )
    def test_parse_format_parse(self, text):
        once = parse_uncertain(text)
        again = parse_uncertain(format_uncertain(once))
        assert once == again

    def test_format_certain_is_plain_text(self):
        assert format_uncertain(UncertainString.from_text("abc")) == "abc"
