"""Tests for JoinConfig and the algorithm registry."""

import pytest

from repro.core.config import ALGORITHMS, JoinConfig


class TestValidation:
    def test_defaults_are_full_pipeline(self):
        config = JoinConfig(k=2, tau=0.1)
        assert config.filters == ("qgram", "frequency", "cdf")
        assert config.verification == "trie"
        assert config.algorithm_name == "QFCT"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": -1, "tau": 0.1},
            {"k": 1, "tau": 1.0},
            {"k": 1, "tau": -0.1},
            {"k": 1, "tau": 0.1, "q": 0},
            {"k": 1, "tau": 0.1, "filters": ("bogus",)},
            {"k": 1, "tau": 0.1, "filters": ("qgram", "qgram")},
            {"k": 1, "tau": 0.1, "verification": "psychic"},
            {"k": 1, "tau": 0.1, "selection": "bogus"},
            {"k": 1, "tau": 0.1, "group_mode": "bogus"},
            {"k": 1, "tau": 0.1, "bound_mode": "bogus"},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            JoinConfig(**kwargs)


class TestAlgorithmRegistry:
    def test_paper_variants_registered(self):
        assert set(ALGORITHMS) >= {"QFCT", "QCT", "QFT", "FCT"}

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_for_algorithm_round_trips(self, name):
        config = JoinConfig.for_algorithm(name, k=1, tau=0.2)
        assert config.algorithm_name == name
        assert config.filters == ALGORITHMS[name]

    def test_case_insensitive(self):
        assert JoinConfig.for_algorithm("qfct", 1, 0.1).algorithm_name == "QFCT"

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            JoinConfig.for_algorithm("ZZZ", 1, 0.1)

    def test_overrides_forwarded(self):
        config = JoinConfig.for_algorithm("QCT", 2, 0.3, q=4, verification="naive")
        assert config.q == 4
        assert config.verification == "naive"

    def test_with_filters_copy(self):
        config = JoinConfig(k=1, tau=0.1)
        copy = config.with_filters(("cdf",))
        assert copy.filters == ("cdf",)
        assert config.filters == ("qgram", "frequency", "cdf")

    def test_filter_flags(self):
        config = JoinConfig.for_algorithm("FCT", 1, 0.1)
        assert not config.uses_qgram
        assert config.uses_frequency
        assert config.uses_cdf
