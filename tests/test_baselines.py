"""Tests for the EED join and deterministic Pass-Join baselines."""

import itertools
import random

import pytest

from repro.baselines.deterministic import deterministic_pass_join
from repro.baselines.eed_join import eed_join
from repro.distance.edit import edit_distance
from repro.distance.eed import expected_edit_distance
from repro.uncertain.string import UncertainString

from tests.helpers import random_collection


class TestDeterministicPassJoin:
    def brute(self, strings, k):
        return sorted(
            (i, j, edit_distance(strings[i], strings[j]))
            for i, j in itertools.combinations(range(len(strings)), 2)
            if edit_distance(strings[i], strings[j]) <= k
        )

    @pytest.mark.parametrize("seed,k,q", [(0, 1, 2), (1, 2, 3), (2, 3, 2)])
    def test_matches_brute_force(self, seed, k, q):
        rng = random.Random(seed)
        strings = [
            "".join(rng.choice("abc") for _ in range(rng.randint(4, 10)))
            for _ in range(25)
        ]
        assert deterministic_pass_join(strings, k, q) == self.brute(strings, k)

    def test_duplicates(self):
        strings = ["abc", "abc", "abd"]
        result = deterministic_pass_join(strings, 1, 2)
        assert {(i, j) for i, j, _ in result} == {(0, 1), (0, 2), (1, 2)}

    def test_reports_distances(self):
        result = deterministic_pass_join(["abcd", "abce"], 2, 2)
        assert result == [(0, 1, 1)]


class TestEedJoin:
    def test_matches_exact_eed_threshold(self):
        rng = random.Random(5)
        collection = random_collection(rng, 8, length_range=(4, 6), theta=0.3)
        k_eed = 1.5
        outcome = eed_join(collection, k_eed)
        expected = set()
        for i in range(len(collection)):
            for j in range(i + 1, len(collection)):
                if expected_edit_distance(collection[i], collection[j]) <= k_eed:
                    expected.add((i, j))
        assert outcome.id_pairs() == expected

    def test_reported_values_are_exact_for_small_worlds(self):
        rng = random.Random(6)
        collection = random_collection(rng, 6, length_range=(4, 5), theta=0.3)
        outcome = eed_join(collection, 2.0)
        for i, j, value in outcome.pairs:
            assert value == pytest.approx(
                expected_edit_distance(collection[i], collection[j]), abs=1e-9
            )

    def test_counters(self):
        collection = [
            UncertainString.from_text("AAAA"),
            UncertainString.from_text("AAAC"),
            UncertainString.from_text("GGGGGGGG"),
        ]
        outcome = eed_join(collection, 1.0)
        assert outcome.pruned_by_length == 2  # pairs with the long string
        assert outcome.candidate_evaluations == 1
        assert outcome.id_pairs() == {(0, 1)}

    def test_frequency_prune_is_safe(self):
        # Pairs pruned by the (E[pD]+E[nD])/2 bound must truly exceed k_eed.
        rng = random.Random(7)
        collection = random_collection(rng, 8, length_range=(4, 6), theta=0.4)
        k_eed = 0.5
        outcome = eed_join(collection, k_eed)
        reported = outcome.id_pairs()
        for i in range(len(collection)):
            for j in range(i + 1, len(collection)):
                if expected_edit_distance(collection[i], collection[j]) <= k_eed:
                    assert (i, j) in reported

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            eed_join([], -1.0)
