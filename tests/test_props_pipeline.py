"""End-to-end property tests: the full pipeline under randomized inputs.

These are the strongest guarantees in the suite: for arbitrary tiny
collections and thresholds, every configured pipeline must produce
exactly the brute-force (possible-world enumeration) answer.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.brute import brute_force_join
from repro.core.config import JoinConfig
from repro.core.join import similarity_join
from repro.core.search import similarity_search
from repro.baselines.brute import brute_force_search

from tests.helpers import uncertain_strings

COLLECTIONS = st.lists(
    uncertain_strings(alphabet="AC", min_length=2, max_length=5, max_uncertain=2),
    min_size=0,
    max_size=6,
)

SLOW = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestJoinEquivalence:
    @given(
        COLLECTIONS,
        st.integers(min_value=0, max_value=2),
        st.sampled_from([0.0, 0.05, 0.3, 0.7]),
    )
    @SLOW
    def test_qfct_equals_brute_force(self, collection, k, tau):
        config = JoinConfig(k=k, tau=tau, q=2)
        outcome = similarity_join(collection, config)
        expected = {(i, j) for i, j, _ in brute_force_join(collection, k, tau)}
        assert outcome.id_pairs() == expected

    @given(
        COLLECTIONS,
        st.integers(min_value=0, max_value=2),
        st.sampled_from(["QT", "FCT", "T"]),
    )
    @SLOW
    def test_reduced_stacks_equal_brute_force(self, collection, k, algorithm):
        config = JoinConfig.for_algorithm(algorithm, k=k, tau=0.15, q=2)
        outcome = similarity_join(collection, config)
        expected = {(i, j) for i, j, _ in brute_force_join(collection, k, 0.15)}
        assert outcome.id_pairs() == expected

    @given(COLLECTIONS, st.integers(min_value=0, max_value=2))
    @SLOW
    def test_reported_probabilities_are_exact(self, collection, k):
        config = JoinConfig(k=k, tau=0.1, q=2, report_probabilities=True)
        outcome = similarity_join(collection, config)
        truth = {
            (i, j): p for i, j, p in brute_force_join(collection, k, 0.1)
        }
        for pair in outcome.pairs:
            assert pair.probability == pytest.approx(truth[pair.ids], abs=1e-9)


class TestSearchEquivalence:
    @given(
        COLLECTIONS,
        uncertain_strings(alphabet="AC", min_length=2, max_length=5, max_uncertain=2),
        st.integers(min_value=0, max_value=2),
    )
    @SLOW
    def test_search_equals_brute_force(self, collection, query, k):
        config = JoinConfig(k=k, tau=0.1, q=2)
        outcome = similarity_search(collection, query, config)
        expected = {i for i, _ in brute_force_search(collection, query, k, 0.1)}
        assert outcome.ids() == expected
