"""Tests for deterministic frequency vectors and frequency distance."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.edit import edit_distance
from repro.distance.frequency import (
    frequency_distance,
    frequency_vector,
    positive_negative_distance,
)
from repro.uncertain.alphabet import DNA

WORDS = st.text(alphabet="ACGT", min_size=0, max_size=12)


class TestFrequencyVector:
    def test_counts(self):
        assert frequency_vector("GATTACA") == {"G": 1, "A": 3, "T": 2, "C": 1}

    def test_with_alphabet_includes_zeros(self):
        vec = frequency_vector("AA", DNA)
        assert vec == {"A": 2, "C": 0, "G": 0, "T": 0}

    def test_empty_string(self):
        assert frequency_vector("") == {}


class TestPositiveNegative:
    def test_paper_definition(self):
        # r has 2 extra A's; s has 1 extra C and 1 extra G.
        p, n = positive_negative_distance(
            frequency_vector("AAAA"), frequency_vector("AACG")
        )
        assert (p, n) == (2, 2)

    def test_disjoint_alphabets(self):
        p, n = positive_negative_distance(
            frequency_vector("AAA"), frequency_vector("CC")
        )
        assert (p, n) == (3, 2)


class TestFrequencyDistance:
    def test_anagrams_have_zero_distance(self):
        assert frequency_distance("ACGT", "TGCA") == 0

    def test_simple(self):
        assert frequency_distance("AAAA", "AACG") == 2

    @given(WORDS, WORDS)
    @settings(max_examples=200)
    def test_lower_bounds_edit_distance(self, a, b):
        # The foundational property (Section 2.2): fd <= ed.
        assert frequency_distance(a, b) <= edit_distance(a, b)

    @given(WORDS, WORDS)
    @settings(max_examples=100)
    def test_symmetric(self, a, b):
        assert frequency_distance(a, b) == frequency_distance(b, a)

    @given(WORDS)
    @settings(max_examples=50)
    def test_identity(self, a):
        assert frequency_distance(a, a) == 0
