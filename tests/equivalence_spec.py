"""Deterministic workload spec for the driver-equivalence golden fixture.

The engine refactor (ISSUE 2) must leave every driver's output —
pairs, order, and probability floats — byte-identical to the
pre-refactor seed drivers. This module pins the workloads: the same
collections, queries, arrival orders, and config grid are used both by
``tests/generate_golden.py`` (run once against the seed code to produce
``tests/data/golden_driver_outputs.json``) and by
``tests/test_driver_equivalence.py`` (run forever after against the
refactored drivers).

The string generator is a frozen copy of ``tests.helpers.random_uncertain``
so later edits to the shared helpers cannot silently invalidate the
fixture.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.config import ALGORITHMS, JoinConfig
from repro.uncertain.position import UncertainPosition
from repro.uncertain.string import UncertainString

ALPHABET = "ACGT"
KS = (1, 2, 3)
TAU = 0.1
Q = 2


def _random_uncertain(
    rng: random.Random,
    length: int,
    theta: float = 0.3,
    gamma: int = 2,
    max_uncertain: int = 3,
) -> UncertainString:
    positions = []
    budget = max_uncertain
    for _ in range(length):
        if budget > 0 and rng.random() < theta:
            support = min(rng.randint(2, max(2, gamma)), len(ALPHABET))
            chars = rng.sample(ALPHABET, support)
            weights = [rng.random() + 0.05 for _ in chars]
            total = sum(weights)
            positions.append(
                UncertainPosition({c: w / total for c, w in zip(chars, weights)})
            )
            budget -= 1
        else:
            positions.append(UncertainPosition.certain(rng.choice(ALPHABET)))
    return UncertainString(positions)


def _collection(
    seed: int, count: int, length_range: tuple[int, int]
) -> list[UncertainString]:
    rng = random.Random(seed)
    return [
        _random_uncertain(rng, rng.randint(*length_range)) for _ in range(count)
    ]


def self_collection() -> list[UncertainString]:
    """Self-join / incremental workload: 16 strings, lengths 3–9."""
    return _collection(1201, 16, (3, 9))


def left_collection() -> list[UncertainString]:
    return _collection(1301, 10, (3, 8))


def right_collection() -> list[UncertainString]:
    return _collection(1302, 12, (3, 8))


def search_collection() -> list[UncertainString]:
    return _collection(1401, 12, (4, 8))


def search_queries() -> list[UncertainString]:
    rng = random.Random(1402)
    return [_random_uncertain(rng, rng.randint(4, 7)) for _ in range(3)]


def incremental_order() -> list[int]:
    """Shuffled arrival order for the incremental driver (probes both
    length directions, unlike the length-sorted batch loop)."""
    order = list(range(len(self_collection())))
    random.Random(1501).shuffle(order)
    return order


def config_grid() -> Iterator[tuple[str, JoinConfig]]:
    """(key, config) pairs: all variants × k ∈ {1,2,3} with exact
    probabilities, plus two paper-mode (``report_probabilities=False``)
    cases that pin the CDF-accept / ``probability=None`` path."""
    for name in sorted(ALGORITHMS):
        for k in KS:
            yield (
                f"{name}-k{k}-probs",
                JoinConfig.for_algorithm(
                    name, k=k, tau=TAU, q=Q, report_probabilities=True
                ),
            )
    yield "QFCT-k1-paper", JoinConfig.for_algorithm("QFCT", k=1, tau=TAU, q=Q)
    yield "QCT-k2-paper", JoinConfig.for_algorithm("QCT", k=2, tau=TAU, q=Q)


def encode_pairs(pairs) -> list[list]:
    """JSON-safe [[left, right, probability], ...] (floats round-trip
    exactly through json's repr-based encoding)."""
    return [[p.left_id, p.right_id, p.probability] for p in pairs]


def encode_matches(matches) -> list[list]:
    return [[m.string_id, m.probability] for m in matches]
