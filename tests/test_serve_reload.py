"""Warm-reload tests: atomic generation swap, corrupt-snapshot safety.

The serving invariants under reload: requests never observe a
half-built generation (the swap is one reference assignment behind a
fully validated build), a failed reload — missing file, malformed
records, corrupt or mismatched index snapshot — leaves the old
generation serving and returns a typed ``reload_failed`` document, and
an index snapshot round-trips to byte-identical answers.
"""

import http.client
import json
import threading

import pytest

from repro.core.config import JoinConfig
from repro.core.errors import CheckpointCorruptError, CheckpointMismatchError
from repro.core.search import SimilaritySearcher
from repro.datasets.loader import save_collection
from repro.datasets.presets import dblp_like_collection
from repro.index.persistence import peek_index_meta, save_index
from repro.serve.http import ServerRunner
from repro.serve.protocol import encode_document
from repro.serve.service import JoinService, _validate_snapshot
from repro.uncertain.parser import format_uncertain


def make_config():
    return JoinConfig.for_algorithm(
        "QFCT", k=2, tau=0.1, q=3, report_probabilities=True
    )


def make_collection(size, rng):
    return dblp_like_collection(
        size, theta=0.2, rng=rng, max_uncertain_positions=4
    )


def query_text(string):
    # precision=12: the parser's probability-sum tolerance is 1e-6.
    return format_uncertain(string, precision=12)


class TestReload:
    def test_reload_swaps_generation_and_answers(self, tmp_path):
        old = make_collection(24, rng=3)
        new = make_collection(32, rng=4)
        old_path, new_path = tmp_path / "old.txt", tmp_path / "new.txt"
        save_collection(old, old_path, precision=12)
        save_collection(new, new_path, precision=12)
        service = JoinService.from_files(str(old_path), make_config())
        assert service.generation == 0 and len(service) == 24

        document = service.reload(collection_path=str(new_path))
        assert document["reloaded"] is True
        assert document["generation"] == 1
        assert document["strings"] == 32
        assert len(service) == 32
        # Answers now come from the new generation and agree with an
        # offline searcher over the same *file* (save/parse normalizes
        # the probability floats, so the baseline must read it too).
        from repro.datasets.loader import load_collection
        from repro.uncertain.parser import parse_uncertain

        loaded = load_collection(str(new_path))
        searcher = SimilaritySearcher(loaded, make_config())
        text = query_text(new[0])
        answer = service.search(text)
        assert answer["generation"] == 1
        offline = sorted(
            (m.string_id, m.probability)
            for m in searcher.search(parse_uncertain(text)).matches
        )
        assert sorted(
            (m["id"], m["probability"]) for m in answer["matches"]
        ) == offline

    def test_in_memory_service_needs_a_path(self):
        service = JoinService(make_collection(12, rng=3), make_config())
        document = service.reload()
        assert document["error"]["type"] == "reload_failed"
        assert document["error"]["generation"] == 0

    def test_missing_file_keeps_old_generation(self, tmp_path):
        collection = make_collection(16, rng=3)
        path = tmp_path / "c.txt"
        save_collection(collection, path, precision=12)
        service = JoinService.from_files(str(path), make_config())
        before = service.search(query_text(collection[0]))
        document = service.reload(
            collection_path=str(tmp_path / "nope.txt")
        )
        assert document["error"]["type"] == "reload_failed"
        assert service.generation == 0
        assert service.search(query_text(collection[0])) == before

    def test_malformed_collection_keeps_old_generation(self, tmp_path):
        collection = make_collection(16, rng=3)
        path = tmp_path / "c.txt"
        save_collection(collection, path, precision=12)
        service = JoinService.from_files(str(path), make_config())
        bad = tmp_path / "bad.txt"
        bad.write_text("valid{\n", encoding="utf-8")
        document = service.reload(collection_path=str(bad))
        assert document["error"]["type"] == "reload_failed"
        assert service.generation == 0 and len(service) == 16


class TestSnapshots:
    def test_index_snapshot_round_trips_byte_identically(self, tmp_path):
        collection = make_collection(24, rng=5)
        config = make_config()
        path = tmp_path / "c.txt"
        save_collection(collection, path, precision=12)
        fresh = JoinService.from_files(str(path), config)
        snapshot = tmp_path / "index.json"
        save_index(fresh._state.searcher.engine.source.index, snapshot)

        warmed = JoinService.from_files(
            str(path), config, index_path=str(snapshot)
        )
        for string in collection[:4]:
            text = query_text(string)
            assert encode_document(warmed.search(text)) == encode_document(
                fresh.search(text)
            )

    def test_peek_index_meta_reads_header_only(self, tmp_path):
        collection = make_collection(16, rng=5)
        config = make_config()
        path = tmp_path / "c.txt"
        save_collection(collection, path, precision=12)
        service = JoinService.from_files(str(path), config)
        snapshot = tmp_path / "index.json"
        save_index(service._state.searcher.engine.source.index, snapshot)
        meta = peek_index_meta(snapshot)
        assert meta["k"] == config.k
        assert meta["q"] == config.q
        assert meta["last_id"] == len(collection) - 1

    def test_validate_snapshot_rejects_mismatches(self, tmp_path):
        collection = make_collection(16, rng=5)
        config = make_config()
        path = tmp_path / "c.txt"
        save_collection(collection, path, precision=12)
        service = JoinService.from_files(str(path), config)
        snapshot = tmp_path / "index.json"
        save_index(service._state.searcher.engine.source.index, snapshot)
        _validate_snapshot(snapshot, config, len(collection))
        with pytest.raises(CheckpointMismatchError):
            _validate_snapshot(
                snapshot, config.with_request_k(3), len(collection)
            )
        with pytest.raises(CheckpointMismatchError):
            _validate_snapshot(snapshot, config, len(collection) + 1)
        with pytest.raises(CheckpointCorruptError):
            _validate_snapshot(path, config, len(collection))

    def test_corrupt_snapshot_keeps_old_generation(self, tmp_path):
        collection = make_collection(16, rng=5)
        config = make_config()
        path = tmp_path / "c.txt"
        save_collection(collection, path, precision=12)
        service = JoinService.from_files(str(path), config)
        snapshot = tmp_path / "index.json"
        snapshot.write_text('{"magic": "nope"', encoding="utf-8")
        document = service.reload(
            collection_path=str(path), index_path=str(snapshot)
        )
        assert document["error"]["type"] == "reload_failed"
        assert service.generation == 0
        assert service.stats.serve_counts()["serve.reload_failed"] == 1


class TestReloadUnderTraffic:
    def test_requests_never_see_a_half_built_generation(self, tmp_path):
        config = make_config()
        generations = [make_collection(20 + 4 * i, rng=i) for i in range(4)]
        paths = []
        for i, collection in enumerate(generations):
            p = tmp_path / f"gen{i}.txt"
            save_collection(collection, p, precision=12)
            paths.append(str(p))
        service = JoinService.from_files(paths[0], config)
        # One query text per generation; every generation's expected
        # answer for each is computed up front — over the collections
        # as *loaded from disk*, matching what the service serves.
        from repro.datasets.loader import load_collection
        from repro.uncertain.parser import parse_uncertain

        texts = [query_text(g[0]) for g in generations]
        expected = {}
        for gen, path in enumerate(paths):
            searcher = SimilaritySearcher(load_collection(path), config)
            for text in texts:
                expected[(gen, text)] = sorted(
                    (m.string_id, m.probability)
                    for m in searcher.search(parse_uncertain(text)).matches
                )

        errors: list[str] = []
        stop = threading.Event()

        def hammer() -> None:
            i = 0
            while not stop.is_set():
                text = texts[i % len(texts)]
                document = service.search(text)
                if "error" in document:
                    errors.append(f"error doc: {document}")
                    return
                got = sorted(
                    (m["id"], m["probability"])
                    for m in document["matches"]
                )
                want = expected[(document["generation"], text)]
                if got != want:
                    errors.append(
                        f"generation {document['generation']} answered "
                        f"{got!r}, expected {want!r}"
                    )
                    return
                i += 1

        workers = [threading.Thread(target=hammer) for _ in range(3)]
        for worker in workers:
            worker.start()
        try:
            for gen in (1, 2, 3):
                document = service.reload(collection_path=paths[gen])
                assert document["reloaded"] is True
        finally:
            stop.set()
            for worker in workers:
                worker.join(timeout=30.0)
        assert errors == []
        assert service.generation == 3

    def test_http_admin_reload(self, tmp_path):
        config = make_config()
        old = make_collection(16, rng=8)
        new = make_collection(20, rng=9)
        old_path, new_path = tmp_path / "old.txt", tmp_path / "new.txt"
        save_collection(old, old_path, precision=12)
        save_collection(new, new_path, precision=12)
        service = JoinService.from_files(str(old_path), config)
        runner = ServerRunner(service).start()
        try:
            host, port = runner.address
            connection = http.client.HTTPConnection(host, port, timeout=30.0)
            connection.request(
                "POST", "/admin/reload",
                body=json.dumps({"collection": str(new_path)}),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            document = json.loads(response.read())
            assert response.status == 200
            assert document["reloaded"] is True and document["generation"] == 1
            # A failed reload over HTTP is a typed 500.
            connection.request(
                "POST", "/admin/reload",
                body=json.dumps({"collection": str(tmp_path / "gone.txt")}),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            document = json.loads(response.read())
            assert response.status == 500
            assert document["error"]["type"] == "reload_failed"
            assert service.generation == 1
            connection.close()
        finally:
            assert runner.shutdown()
