"""Tests for frequency-distance filtering (Section 5)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.frequency import frequency_distance
from repro.filters.frequency import (
    CharCountDistribution,
    FrequencyDistanceFilter,
    FrequencyProfile,
    chebyshev_upper_bound,
    expected_negative,
    expected_positive_negative,
    fd_lower_bound,
    merged_support,
    poisson_binomial_pmf,
)
from repro.uncertain.parser import parse_uncertain
from repro.uncertain.string import UncertainString
from repro.uncertain.worlds import enumerate_joint_worlds, enumerate_worlds

from tests.helpers import random_uncertain, uncertain_strings


class TestPoissonBinomial:
    def test_empty(self):
        assert poisson_binomial_pmf([]) == [1.0]

    def test_single_bernoulli(self):
        assert poisson_binomial_pmf([0.3]) == pytest.approx([0.7, 0.3])

    def test_binomial_special_case(self):
        pmf = poisson_binomial_pmf([0.5] * 4)
        expected = [math.comb(4, x) / 16 for x in range(5)]
        assert pmf == pytest.approx(expected)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            max_size=7,
        )
    )
    @settings(max_examples=100)
    def test_sums_to_one(self, probs):
        assert sum(poisson_binomial_pmf(probs)) == pytest.approx(1.0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            poisson_binomial_pmf([1.7])


class TestCharCountDistribution:
    @pytest.fixture
    def dist(self):
        return CharCountDistribution(
            certain=2, pmf=tuple(poisson_binomial_pmf([0.5, 0.2]))
        )

    def test_bounds(self, dist):
        assert dist.certain == 2
        assert dist.uncertain == 2
        assert dist.total == 4

    def test_mean(self, dist):
        assert dist.mean == pytest.approx(2 + 0.5 + 0.2)

    def test_survival_is_s2(self, dist):
        # S2[x] = Pr(count >= certain + x).
        for x in range(dist.uncertain + 1):
            expected = sum(dist.pmf[x:])
            assert dist.survival[x] == pytest.approx(expected)

    def test_scaled_tail_is_s3(self, dist):
        # S3[x] = sum_{y >= x} (y - x + 1) pmf[y].
        for x in range(dist.uncertain + 1):
            expected = sum(
                (y - x + 1) * dist.pmf[y] for y in range(x, dist.uncertain + 1)
            )
            assert dist.scaled_tail[x] == pytest.approx(expected)

    def test_scaled_head_is_s4(self, dist):
        # S4[x] = sum_{y <= x} (x - y) pmf[y].
        for x in range(dist.uncertain + 1):
            expected = sum((x - y) * dist.pmf[y] for y in range(x + 1))
            assert dist.scaled_head[x] == pytest.approx(expected)

    def test_expected_excess(self, dist):
        # E[(count - t)^+] for absolute thresholds straddling the support.
        for threshold in range(7):
            expected = sum(
                max(0, (dist.certain + y) - threshold) * dist.pmf[y]
                for y in range(dist.uncertain + 1)
            )
            assert dist.expected_excess_over(threshold) == pytest.approx(expected)


class TestFrequencyProfile:
    def test_char_distributions(self):
        s = parse_uncertain("A{(C,0.5),(G,0.5)}A{(C,0.5),(G,0.5)}AC")
        profile = FrequencyProfile(s)
        a = profile.distribution("A")
        assert (a.certain, a.total) == (3, 3)
        c = profile.distribution("C")
        assert (c.certain, c.total) == (1, 3)
        assert profile.distribution("T").total == 0

    def test_count_distribution_matches_world_enumeration(self):
        rng = random.Random(17)
        s = random_uncertain(rng, 7, theta=0.5)
        profile = FrequencyProfile(s)
        for char in profile.chars():
            dist = profile.distribution(char)
            by_count: dict[int, float] = {}
            for text, prob in enumerate_worlds(s, limit=None):
                count = text.count(char)
                by_count[count] = by_count.get(count, 0.0) + prob
            for offset, mass in enumerate(dist.pmf):
                assert mass == pytest.approx(
                    by_count.get(dist.certain + offset, 0.0), abs=1e-9
                )


class TestLemma6:
    def test_certain_surplus_detected(self):
        left = FrequencyProfile(UncertainString.from_text("AAAA"))
        right = FrequencyProfile(UncertainString.from_text("CCCC"))
        assert fd_lower_bound(left, right) == 4

    def test_uncertainty_relaxes_bound(self):
        left = FrequencyProfile(parse_uncertain("{(A,0.5),(C,0.5)}AAA"))
        right = FrequencyProfile(UncertainString.from_text("CCCC"))
        # A is certain only 3 times now; C possibly once in left.
        assert fd_lower_bound(left, right) == 3

    @given(
        uncertain_strings(max_length=5),
        uncertain_strings(max_length=5),
    )
    @settings(max_examples=100, deadline=None)
    def test_lower_bound_safe_over_worlds(self, left, right):
        # Lemma 6: the bound must hold in EVERY joint world.
        bound = fd_lower_bound(FrequencyProfile(left), FrequencyProfile(right))
        for l_text, r_text, _ in enumerate_joint_worlds(left, right, limit=None):
            assert frequency_distance(l_text, r_text) >= bound


class TestExpectations:
    @given(
        uncertain_strings(max_length=5),
        uncertain_strings(max_length=5),
    )
    @settings(max_examples=80, deadline=None)
    def test_expected_nd_matches_enumeration(self, left, right):
        profile_l, profile_r = FrequencyProfile(left), FrequencyProfile(right)
        expected = 0.0
        chars = profile_l.chars() | profile_r.chars()
        for l_text, r_text, prob in enumerate_joint_worlds(left, right, limit=None):
            expected += prob * sum(
                max(0, r_text.count(c) - l_text.count(c)) for c in chars
            )
        assert expected_negative(profile_l, profile_r) == pytest.approx(
            expected, abs=1e-9
        )

    @given(uncertain_strings(max_length=5), uncertain_strings(max_length=5))
    @settings(max_examples=60, deadline=None)
    def test_pd_nd_difference_identity(self, left, right):
        # E[pD] - E[nD] = sum_c (E[fR_c] - E[fS_c]).
        profile_l, profile_r = FrequencyProfile(left), FrequencyProfile(right)
        expected_pd, expected_nd = expected_positive_negative(profile_l, profile_r)
        mean_gap = sum(
            profile_l.distribution(c).mean - profile_r.distribution(c).mean
            for c in profile_l.chars() | profile_r.chars()
        )
        assert expected_pd - expected_nd == pytest.approx(mean_gap, abs=1e-9)


class TestTheorem3:
    @given(
        uncertain_strings(max_length=5),
        uncertain_strings(max_length=5),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=100, deadline=None)
    def test_upper_bound_dominates_exact_fd_probability(self, left, right, k):
        bound = chebyshev_upper_bound(
            FrequencyProfile(left), FrequencyProfile(right), k
        )
        exact = sum(
            prob
            for l_text, r_text, prob in enumerate_joint_worlds(left, right, limit=None)
            if frequency_distance(l_text, r_text) <= k
        )
        assert bound >= exact - 1e-9

    def test_vacuous_when_mean_below_k(self):
        left = FrequencyProfile(UncertainString.from_text("AAAA"))
        assert chebyshev_upper_bound(left, left, 2) == 1.0

    def test_tight_for_distant_deterministic_pair(self):
        left = FrequencyProfile(UncertainString.from_text("A" * 12))
        right = FrequencyProfile(UncertainString.from_text("C" * 12))
        bound = chebyshev_upper_bound(left, right, 1)
        assert bound < 0.1


class TestFilterDecisions:
    def test_rejects_on_lemma6(self):
        f = FrequencyDistanceFilter(k=2)
        a = UncertainString.from_text("AAAAAA")
        b = UncertainString.from_text("CCCCCC")
        decision = f.decide(a, b, tau=0.1)
        assert decision.rejected
        assert "Lemma 6" in decision.reason

    def test_undecided_for_similar_pair(self):
        f = FrequencyDistanceFilter(k=2)
        a = UncertainString.from_text("ACGTAC")
        decision = f.decide(a, a, tau=0.1)
        assert not decision.rejected

    def test_accepts_profiles_directly(self):
        f = FrequencyDistanceFilter(k=1)
        a = UncertainString.from_text("ACGT")
        decision = f.decide(FrequencyProfile(a), FrequencyProfile(a), tau=0.5)
        assert not decision.rejected

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            FrequencyDistanceFilter(k=-1)


class TestSupportCaching:
    """Regression: support views are cached, not rebuilt per call."""

    def test_chars_returns_the_same_frozenset_object(self):
        profile = FrequencyProfile(UncertainString.from_text("ACGTAC"))
        assert profile.chars() is profile.chars()
        assert isinstance(profile.chars(), frozenset)

    def test_sorted_chars_is_ascending_and_cached(self):
        rng = random.Random(77)
        for _ in range(20):
            profile = FrequencyProfile(random_uncertain(rng, 8, theta=0.5))
            assert profile.sorted_chars is profile.sorted_chars
            assert list(profile.sorted_chars) == sorted(profile.chars())

    def test_merged_support_fast_path_shares_the_tuple(self):
        a = FrequencyProfile(UncertainString.from_text("ACGT"))
        b = FrequencyProfile(UncertainString.from_text("TGCA"))
        assert merged_support(a, b) is a.sorted_chars
