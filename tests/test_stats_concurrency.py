"""Concurrency hammers for the shared statistics sink.

A long-running service folds every request thread's counters into one
:class:`JoinStatistics`. These tests drive many threads through the
mutating paths — ``record`` on both dedicated fields and stage
counters, ``merge``, concurrent ``timer`` creation, stopwatch
start/stop nesting — and then demand *exact* totals: a single lost
update means a torn read-modify-write.
"""

import pickle
import threading

from repro.core.stats import JoinStatistics
from repro.util.timing import Stopwatch

THREADS = 8
ITERATIONS = 2_000


def hammer(worker, threads=THREADS):
    crew = [
        threading.Thread(target=worker, args=(i,), name=f"hammer-{i}")
        for i in range(threads)
    ]
    for thread in crew:
        thread.start()
    for thread in crew:
        thread.join()


class TestRecordConcurrency:
    def test_dedicated_field_counts_are_exact(self):
        stats = JoinStatistics()

        def worker(_i):
            for _ in range(ITERATIONS):
                stats.record("verification", "checked")

        hammer(worker)
        assert stats.verifications == THREADS * ITERATIONS

    def test_stage_counter_counts_are_exact(self):
        stats = JoinStatistics()

        def worker(i):
            for _ in range(ITERATIONS):
                stats.record("serve", "requests")
                stats.record("serve", f"worker_{i % 2}")

        hammer(worker)
        assert stats.stage_counters["serve.requests"] == THREADS * ITERATIONS
        assert (
            stats.stage_counters["serve.worker_0"]
            + stats.stage_counters["serve.worker_1"]
            == THREADS * ITERATIONS
        )

    def test_concurrent_merges_are_exact(self):
        total = JoinStatistics()

        def worker(_i):
            for _ in range(50):
                part = JoinStatistics()
                part.record("verification", "checked", 7)
                part.record("serve", "requests", 3)
                total.merge(part)

        hammer(worker)
        assert total.verifications == THREADS * 50 * 7
        assert total.stage_counters["serve.requests"] == THREADS * 50 * 3

    def test_concurrent_timer_creation_yields_one_stopwatch(self):
        stats = JoinStatistics()
        seen: list[Stopwatch] = []
        lock = threading.Lock()
        barrier = threading.Barrier(THREADS)

        def worker(_i):
            barrier.wait()
            watch = stats.timer("stage")
            with lock:
                seen.append(watch)

        hammer(worker)
        assert len({id(watch) for watch in seen}) == 1
        assert stats.timers["stage"] is seen[0]


class TestStopwatchConcurrency:
    def test_nested_and_concurrent_intervals_never_tear(self):
        watch = Stopwatch()
        barrier = threading.Barrier(THREADS)

        def worker(_i):
            barrier.wait()
            for _ in range(500):
                watch.start()
                watch.start()  # nested re-entry
                watch.stop()
                watch.stop()

        hammer(worker)
        # Balanced start/stop pairs from every thread: the depth
        # counter must come back to exactly zero and the watch must be
        # closed (no dangling open interval accruing forever).
        assert watch.depth == 0
        assert watch.elapsed >= 0.0
        before = watch.elapsed
        assert watch.stop() == before  # extra stop is a no-op

    def test_add_is_exact_under_contention(self):
        watch = Stopwatch()

        def worker(_i):
            for _ in range(ITERATIONS):
                watch.add(0.001)

        hammer(worker)
        assert abs(watch.elapsed - THREADS * ITERATIONS * 0.001) < 1e-6


class TestPickling:
    def test_locks_survive_a_pickle_round_trip(self):
        stats = JoinStatistics()
        stats.record("serve", "requests", 5)
        stats.timer("stage").start()
        stats.timer("stage").stop()
        clone = pickle.loads(pickle.dumps(stats))
        # The clone has working (fresh) locks: mutating it from two
        # threads still yields exact counts.

        def worker(_i):
            for _ in range(ITERATIONS):
                clone.record("serve", "requests")

        hammer(worker)
        assert (
            clone.stage_counters["serve.requests"]
            == 5 + THREADS * ITERATIONS
        )
