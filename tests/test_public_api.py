"""Public API surface checks: everything advertised must exist and work."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    @pytest.mark.parametrize(
        "module",
        [
            "repro.uncertain",
            "repro.distance",
            "repro.partition",
            "repro.filters",
            "repro.index",
            "repro.verify",
            "repro.core",
            "repro.baselines",
            "repro.datasets",
            "repro.report",
            "repro.util",
        ],
    )
    def test_subpackage_alls_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_every_public_callable_has_docstring(self):
        undocumented = []
        for module_name in (
            "repro.uncertain",
            "repro.distance",
            "repro.filters",
            "repro.verify",
            "repro.core",
        ):
            mod = importlib.import_module(module_name)
            for name in getattr(mod, "__all__", []):
                obj = getattr(mod, name)
                if callable(obj) and not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module_name}.{name}")
        assert not undocumented


class TestReadmeQuickstart:
    def test_readme_snippet_runs(self):
        # The exact code from README.md's Quickstart section.
        from repro import JoinConfig, similarity_join, parse_uncertain

        collection = [
            parse_uncertain("jonathan smith"),
            parse_uncertain("jon{(a,0.7),(o,0.3)}than smith"),
            parse_uncertain("jennifer smith"),
        ]
        config = JoinConfig(k=2, tau=0.5, report_probabilities=True)
        pairs = similarity_join(collection, config).pairs
        assert {p.ids for p in pairs} == {(0, 1)}
        assert pairs[0].probability == pytest.approx(1.0)
