"""Tests for the shared utility modules."""

import random
import time

import pytest

from repro.util.rng import ensure_rng
from repro.util.timing import Stopwatch
from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)


class TestEnsureRng:
    def test_none_gives_fresh_generator(self):
        assert isinstance(ensure_rng(None), random.Random)

    def test_int_seeds_deterministically(self):
        assert ensure_rng(42).random() == ensure_rng(42).random()

    def test_generator_passed_through(self):
        rng = random.Random(1)
        assert ensure_rng(rng) is rng

    def test_rejects_other_types(self):
        with pytest.raises(TypeError, match="rng must be"):
            ensure_rng(3.14)  # type: ignore[arg-type]


class TestStopwatch:
    def test_accumulates_intervals(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.01)
        first = watch.elapsed
        with watch:
            time.sleep(0.01)
        assert watch.elapsed > first

    def test_stop_idempotent(self):
        watch = Stopwatch()
        watch.start()
        total = watch.stop()
        assert watch.stop() == total

    def test_elapsed_while_running(self):
        watch = Stopwatch().start()
        time.sleep(0.005)
        assert watch.elapsed > 0
        watch.stop()

    def test_nested_start_stop_accrues_only_on_outermost_stop(self):
        watch = Stopwatch()
        watch.start()  # depth 1
        time.sleep(0.005)
        watch.start()  # depth 2 (re-entrant)
        time.sleep(0.005)
        watch.stop()  # inner stop: must NOT freeze the clock
        assert watch.depth == 1
        time.sleep(0.005)  # the outer interval's tail
        total = watch.stop()
        assert watch.depth == 0
        # All three sleeps happened inside one outer interval: the tail
        # after the inner stop must be included (the pre-fix stopwatch
        # dropped it because the inner stop() halted the clock).
        assert total >= 0.014

    def test_nested_context_managers_keep_outer_tail(self):
        watch = Stopwatch()
        with watch:
            with watch:
                time.sleep(0.002)
            time.sleep(0.005)
        assert watch.elapsed >= 0.006
        # and no double counting: a single wall-clock pass of ~7ms cannot
        # have recorded the inner interval twice.
        assert watch.elapsed < 0.1

    def test_nested_does_not_double_count(self):
        watch = Stopwatch()
        start = time.perf_counter()
        with watch:
            with watch:
                time.sleep(0.01)
        wall = time.perf_counter() - start
        assert watch.elapsed <= wall + 1e-6

    def test_add(self):
        watch = Stopwatch()
        watch.add(1.5)
        assert watch.elapsed == pytest.approx(1.5)


class TestValidators:
    def test_check_type_accepts(self):
        check_type(3, int, "x")
        check_type("s", (int, str), "x")

    def test_check_type_rejects_with_names(self):
        with pytest.raises(TypeError, match="x must be int"):
            check_type("s", int, "x")
        with pytest.raises(TypeError, match="int | str"):
            check_type(1.0, (int, str), "x")

    def test_check_non_negative(self):
        check_non_negative(0, "n")
        with pytest.raises(ValueError, match="n must be non-negative"):
            check_non_negative(-1, "n")

    def test_check_positive(self):
        check_positive(1, "n")
        with pytest.raises(ValueError, match="n must be positive"):
            check_positive(0, "n")

    def test_check_probability(self):
        check_probability(0.0, "p")
        check_probability(1.0, "p")
        with pytest.raises(ValueError, match="p must be a probability"):
            check_probability(1.5, "p")
