"""Tests for the adaptive top-N similarity join."""

import random

import pytest

from repro.baselines.brute import brute_force_join
from repro.core.config import JoinConfig
from repro.core.topk import top_k_join
from repro.uncertain.string import UncertainString

from tests.helpers import random_collection


def brute_top(collection, k, count):
    ranked = sorted(
        brute_force_join(collection, k, 0.0), key=lambda t: -t[2]
    )
    return ranked[:count]


class TestTopK:
    @pytest.mark.parametrize("seed,count", [(0, 3), (1, 5), (2, 1)])
    def test_matches_brute_force_ranking(self, seed, count):
        rng = random.Random(seed)
        collection = random_collection(rng, 12, length_range=(4, 7))
        outcome = top_k_join(collection, k=1, count=count, q=2)
        expected = brute_top(collection, 1, count)
        assert len(outcome.pairs) == min(count, len(expected))
        got_probs = [p.probability for p in outcome.pairs]
        expected_probs = [p for _, _, p in expected]
        assert got_probs == pytest.approx(expected_probs, abs=1e-9)
        # Pair identity may differ only among exact probability ties.
        for pair, (i, j, prob) in zip(outcome.pairs, expected):
            if expected_probs.count(prob) == 1:
                assert pair.ids == (i, j)

    def test_fewer_pairs_than_requested(self):
        collection = [
            UncertainString.from_text("AAAA"),
            UncertainString.from_text("AAAC"),
            UncertainString.from_text("GGGGGGGG"),
        ]
        outcome = top_k_join(collection, k=1, count=10, q=2)
        assert [p.ids for p in outcome.pairs] == [(0, 1)]

    def test_results_sorted_descending(self):
        rng = random.Random(8)
        collection = random_collection(rng, 10, length_range=(4, 6))
        outcome = top_k_join(collection, k=2, count=6, q=2)
        probs = [p.probability for p in outcome.pairs]
        assert probs == sorted(probs, reverse=True)

    def test_without_qgram_stack(self):
        rng = random.Random(3)
        collection = random_collection(rng, 10, length_range=(4, 6))
        config = JoinConfig.for_algorithm("FCT", k=1, tau=0.0, q=2)
        outcome = top_k_join(collection, k=1, count=4, q=2, config=config)
        expected = brute_top(collection, 1, 4)
        assert [p.probability for p in outcome.pairs] == pytest.approx(
            [p for _, _, p in expected], abs=1e-9
        )

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            top_k_join([], k=1, count=0)
        with pytest.raises(ValueError, match="must match"):
            top_k_join([], k=1, count=1, config=JoinConfig(k=2, tau=0.0))

    def test_rejects_parallel_workers(self):
        config = JoinConfig(k=1, tau=0.0, q=2, workers=4)
        with pytest.raises(ValueError, match="workers"):
            top_k_join([], k=1, count=1, q=2, config=config)

    def test_honors_naive_verification(self):
        rng = random.Random(5)
        collection = random_collection(rng, 10, length_range=(4, 6))
        naive = JoinConfig.for_algorithm(
            "QFCT", k=1, tau=0.0, q=2, verification="naive"
        )
        outcome = top_k_join(collection, k=1, count=4, q=2, config=naive)
        expected = brute_top(collection, 1, 4)
        assert [p.probability for p in outcome.pairs] == pytest.approx(
            [p for _, _, p in expected], abs=1e-9
        )

    def test_probabilities_reported_despite_paper_mode_config(self):
        # report_probabilities=False is promoted: ranking needs exact
        # probabilities, so every returned pair must carry one.
        rng = random.Random(6)
        collection = random_collection(rng, 10, length_range=(4, 6))
        config = JoinConfig(k=1, tau=0.0, q=2, report_probabilities=False)
        outcome = top_k_join(collection, k=1, count=3, q=2, config=config)
        assert outcome.pairs
        assert all(p.probability is not None for p in outcome.pairs)

    def test_zero_probability_pairs_excluded(self):
        collection = [
            UncertainString.from_text("AAAA"),
            UncertainString.from_text("CCCC"),
        ]
        outcome = top_k_join(collection, k=1, count=5, q=2)
        assert outcome.pairs == []
