"""Tests for index save/load."""

import json
import random

import pytest

from repro.index.inverted import SegmentInvertedIndex
from repro.index.persistence import load_index, save_index
from repro.uncertain.string import UncertainString

from tests.helpers import random_collection


def build(collection, **kwargs):
    index = SegmentInvertedIndex(k=1, q=2, **kwargs)
    for string_id, string in enumerate(collection):
        index.add(string_id, string)
    return index


class TestRoundTrip:
    def test_queries_identical_after_reload(self, tmp_path):
        rng = random.Random(7)
        collection = random_collection(rng, 10, length_range=(4, 7))
        index = build(collection)
        path = tmp_path / "index.json"
        save_index(index, path)
        reloaded = load_index(path)
        for query in random_collection(rng, 4, length_range=(4, 7)):
            original = [(c.string_id, c.alphas, c.upper) for c in index.query(query, 0.05)]
            again = [(c.string_id, c.alphas, c.upper) for c in reloaded.query(query, 0.05)]
            assert again == original

    def test_configuration_preserved(self, tmp_path):
        index = build([], selection="multimatch", group_mode="beta", bound_mode="markov")
        path = tmp_path / "index.json"
        save_index(index, path)
        reloaded = load_index(path)
        assert reloaded.k == 1
        assert reloaded.q == 2
        assert reloaded.selection == "multimatch"
        assert reloaded.group_mode == "beta"
        assert reloaded.bound_mode == "markov"

    def test_entry_count_preserved(self, tmp_path):
        rng = random.Random(3)
        index = build(random_collection(rng, 6, length_range=(4, 6)))
        path = tmp_path / "index.json"
        save_index(index, path)
        assert load_index(path).entry_count == index.entry_count

    def test_insertion_continues_after_reload(self, tmp_path):
        index = build([UncertainString.from_text("ACGT")])
        path = tmp_path / "index.json"
        save_index(index, path)
        reloaded = load_index(path)
        reloaded.add(1, UncertainString.from_text("ACGA"))
        with pytest.raises(ValueError, match="ascending"):
            reloaded.add(1, UncertainString.from_text("ACGA"))


class TestFormatGuards:
    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "index.json"
        path.write_text(json.dumps({"format": 999}))
        with pytest.raises(ValueError, match="unsupported index format"):
            load_index(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(tmp_path / "nope.json")
