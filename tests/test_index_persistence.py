"""Tests for index save/load."""

import json
import random

import pytest

from repro.core.errors import CheckpointCorruptError
from repro.index.inverted import SegmentInvertedIndex
from repro.index.persistence import FORMAT_VERSION, INDEX_MAGIC, load_index, save_index
from repro.uncertain.string import UncertainString

from tests.helpers import random_collection


def build(collection, **kwargs):
    index = SegmentInvertedIndex(k=1, q=2, **kwargs)
    for string_id, string in enumerate(collection):
        index.add(string_id, string)
    return index


class TestRoundTrip:
    def test_queries_identical_after_reload(self, tmp_path):
        rng = random.Random(7)
        collection = random_collection(rng, 10, length_range=(4, 7))
        index = build(collection)
        path = tmp_path / "index.json"
        save_index(index, path)
        reloaded = load_index(path)
        for query in random_collection(rng, 4, length_range=(4, 7)):
            original = [(c.string_id, c.alphas, c.upper) for c in index.query(query, 0.05)]
            again = [(c.string_id, c.alphas, c.upper) for c in reloaded.query(query, 0.05)]
            assert again == original

    def test_configuration_preserved(self, tmp_path):
        index = build([], selection="multimatch", group_mode="beta", bound_mode="markov")
        path = tmp_path / "index.json"
        save_index(index, path)
        reloaded = load_index(path)
        assert reloaded.k == 1
        assert reloaded.q == 2
        assert reloaded.selection == "multimatch"
        assert reloaded.group_mode == "beta"
        assert reloaded.bound_mode == "markov"

    def test_entry_count_preserved(self, tmp_path):
        rng = random.Random(3)
        index = build(random_collection(rng, 6, length_range=(4, 6)))
        path = tmp_path / "index.json"
        save_index(index, path)
        assert load_index(path).entry_count == index.entry_count

    def test_insertion_continues_after_reload(self, tmp_path):
        index = build([UncertainString.from_text("ACGT")])
        path = tmp_path / "index.json"
        save_index(index, path)
        reloaded = load_index(path)
        reloaded.add(1, UncertainString.from_text("ACGA"))
        with pytest.raises(ValueError, match="ascending"):
            reloaded.add(1, UncertainString.from_text("ACGA"))


class TestFormatGuards:
    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "index.json"
        path.write_text(json.dumps({"magic": INDEX_MAGIC, "format": 999}))
        with pytest.raises(CheckpointCorruptError, match="unsupported index format"):
            load_index(path)

    def test_missing_magic_rejected(self, tmp_path):
        path = tmp_path / "index.json"
        path.write_text(json.dumps({"format": FORMAT_VERSION}))
        with pytest.raises(CheckpointCorruptError, match="bad magic"):
            load_index(path)

    def test_invalid_json_rejected_with_path(self, tmp_path):
        path = tmp_path / "index.json"
        path.write_text("{ not json at all")
        with pytest.raises(CheckpointCorruptError) as excinfo:
            load_index(path)
        assert excinfo.value.path == str(path)
        assert str(path) in str(excinfo.value)

    def test_truncated_file_rejected(self, tmp_path):
        index = build([UncertainString.from_text("ACGT")])
        path = tmp_path / "index.json"
        save_index(index, path)
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) // 2])
        with pytest.raises(CheckpointCorruptError):
            load_index(path)

    def test_non_object_document_rejected(self, tmp_path):
        path = tmp_path / "index.json"
        path.write_text(json.dumps(["not", "an", "object"]))
        with pytest.raises(CheckpointCorruptError, match="not a JSON object"):
            load_index(path)

    def test_malformed_postings_rejected(self, tmp_path):
        index = build([UncertainString.from_text("ACGT")])
        path = tmp_path / "index.json"
        save_index(index, path)
        document = json.loads(path.read_text(encoding="utf-8"))
        document["lists"] = {"4:0": {"AC": "garbage"}}
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointCorruptError, match="malformed index document"):
            load_index(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(tmp_path / "nope.json")
