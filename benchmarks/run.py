"""``python -m benchmarks.run`` — the benchmark-trajectory runner.

Thin wrapper over :mod:`repro.report.bench` (also exposed as the
``repro-join bench`` CLI subcommand) so the committed ``BENCH_*.json``
files are reproducible locally::

    PYTHONPATH=src python -m benchmarks.run --output BENCH_5.json
    PYTHONPATH=src python -m benchmarks.run --quick --check BENCH_5.json

The second form is the CI regression gate: it fails when any kernel or
join regresses by more than the tolerance against the committed file.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running from a source checkout without an installed package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:  # pragma: no cover
    sys.path.insert(0, str(_SRC))

from repro.report.bench import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
