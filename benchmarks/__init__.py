"""Benchmark suite: paper figures (pytest-benchmark) + the JSON runner.

``python -m benchmarks.run`` executes the hot-kernel micro-benchmarks
and the end-to-end join benchmark behind the committed ``BENCH_*.json``
trajectory files; see :mod:`repro.report.bench` for the shared registry.
"""
