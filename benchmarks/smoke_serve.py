"""Serve-layer smoke check — byte identity under concurrency and faults.

Boots an in-process ``repro-join serve`` service with request-path
faults injected (a stalled request, a dropped connection, a corrupted
response body, a handler crash), hammers it with concurrent mixed
search/top-k clients over real sockets, and asserts:

* every *completed* response is byte-identical to the offline answer
  (the same service called directly, whose search matches are in turn
  cross-checked against a fresh :class:`SimilaritySearcher`),
* every *non*-completed request surfaces as an explicit, typed failure
  (connection error for ``drop``, garbled-but-delivered body for
  ``corrupt-resp``, a typed 500 for ``crash``) — never a hang,
* the health endpoints answer, and shutdown drains cleanly.

Exits non-zero on any violation. Usage::

    PYTHONPATH=src python benchmarks/smoke_serve.py
"""

from __future__ import annotations

import http.client
import json
import sys
import threading
import time
from pathlib import Path

# Allow running from a source checkout without an installed package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:  # pragma: no cover
    sys.path.insert(0, str(_SRC))

from repro.core.config import JoinConfig  # noqa: E402
from repro.core.search import SimilaritySearcher  # noqa: E402
from repro.datasets import dblp_like_collection  # noqa: E402
from repro.serve.http import ServerRunner  # noqa: E402
from repro.serve.protocol import encode_document  # noqa: E402
from repro.serve.service import JoinService, ServeOptions  # noqa: E402
from repro.uncertain.parser import format_uncertain, parse_uncertain  # noqa: E402

CLIENTS = 3
REQUESTS = 16
TOPK_EVERY = 4
TOPK_COUNT = 5
# Arrival-indexed request faults: request 2 stalls 0.4s mid-handling,
# request 5's connection is dropped, request 8's body is garbled,
# request 11's handler crashes (typed 500).
FAULTS = "slow@2/0.4,drop@5,corrupt-resp@8,crash@11"
DROP_AT, CORRUPT_AT, CRASH_AT = 5, 8, 11


def check(label: str, condition: bool) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  {label:<52s} {status}")
    if not condition:
        sys.exit(1)


def main() -> int:
    collection = dblp_like_collection(
        48, theta=0.2, rng=7, max_uncertain_positions=4
    )
    config = JoinConfig.for_algorithm("QFCT", k=2, tau=0.1, q=3)
    options = ServeOptions(
        max_in_flight=4,
        queue_limit=16,
        queue_timeout=5.0,
        request_timeout=15.0,
        degrade_margin=0.0,  # exact path only: byte identity must hold
        fault_spec=FAULTS,
    )
    service = JoinService(collection, config, options)
    # precision=12: the parser's probability-sum tolerance is 1e-6, so
    # the default 6-significant-digit rendering can fail to re-parse.
    queries = [format_uncertain(s, precision=12) for s in collection[:8]]
    print(f"smoke: {len(collection)} strings, {CLIENTS} clients, "
          f"{REQUESTS} requests, faults={FAULTS}")

    # Offline baselines, computed before any HTTP traffic. The direct
    # service call is the byte-level oracle; its search matches are
    # independently cross-checked against a fresh searcher over the
    # same parsed queries.
    searcher = SimilaritySearcher(collection, config)
    expected: dict[tuple[str, str], bytes] = {}
    for text in queries:
        search_doc = service.search(text)
        offline = sorted(
            (m.string_id, m.probability)
            for m in searcher.search(parse_uncertain(text)).matches
        )
        served = sorted(
            (m["id"], m["probability"]) for m in search_doc["matches"]
        )
        if served != offline:
            print(f"FAIL: service/searcher disagree for {text!r}")
            return 1
        expected[("/search", text)] = encode_document(search_doc)
        expected[("/topk", text)] = encode_document(
            service.topk(text, TOPK_COUNT)
        )
    check(f"offline parity ({len(queries)} queries)", True)

    runner = ServerRunner(service).start()
    host, port = runner.address
    outcomes: dict[int, tuple[str, "int | None", bytes]] = {}
    lock = threading.Lock()
    issued = [0]

    def take_index() -> "int | None":
        with lock:
            if issued[0] >= REQUESTS:
                return None
            index = issued[0]
            issued[0] += 1
            return index

    def client_loop() -> None:
        connection = http.client.HTTPConnection(host, port, timeout=60.0)
        try:
            while True:
                index = take_index()
                if index is None:
                    return
                text = queries[index % len(queries)]
                if index % TOPK_EVERY == TOPK_EVERY - 1:
                    path = "/topk"
                    payload: dict = {"query": text, "count": TOPK_COUNT}
                else:
                    path, payload = "/search", {"query": text}
                try:
                    connection.request(
                        "POST", path, body=json.dumps(payload),
                        headers={"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    body = response.read()
                    status: "int | None" = response.status
                except (http.client.HTTPException, ConnectionError, OSError):
                    connection.close()
                    status, body = None, b""
                with lock:
                    outcomes[index] = (path, status, body)
        finally:
            connection.close()

    started = time.perf_counter()
    threads = [
        threading.Thread(target=client_loop, name=f"smoke-{i}", daemon=True)
        for i in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    check(f"all {REQUESTS} requests resolved", len(outcomes) == REQUESTS)
    identical = 0
    for index in range(REQUESTS):
        path, status, body = outcomes[index]
        text = queries[index % len(queries)]
        if index == DROP_AT:
            check(f"request {index}: drop -> connection error",
                  status is None)
        elif index == CORRUPT_AT:
            ok = status == 200 and body != expected[(path, text)]
            try:
                json.loads(body)
                ok = False
            except (UnicodeDecodeError, json.JSONDecodeError):
                pass
            check(f"request {index}: corrupt-resp -> garbled body", ok)
        elif index == CRASH_AT:
            document = json.loads(body) if status == 500 else {}
            check(f"request {index}: crash -> typed 500",
                  status == 500
                  and document.get("error", {}).get("type")
                  == "internal_error")
        else:
            if not (status == 200 and body == expected[(path, text)]):
                print(f"FAIL: request {index} ({path}) status={status}")
                return 1
            identical += 1
    check(f"byte identity on {identical} completed responses", True)

    probe = http.client.HTTPConnection(host, port, timeout=10.0)
    probe.request("GET", "/healthz")
    healthz = probe.getresponse()
    healthz.read()
    probe.request("GET", "/readyz")
    readyz = probe.getresponse()
    ready_doc = json.loads(readyz.read())
    probe.request("GET", "/stats")
    stats = probe.getresponse()
    stats_doc = json.loads(stats.read())
    probe.close()
    check("healthz/readyz answer", healthz.status == 200
          and readyz.status == 200 and ready_doc["status"] == "ready")
    check("stats counters present",
          stats_doc["counters"]["serve"].get("serve.requests", 0) >= REQUESTS
          and stats_doc["admission"]["in_flight"] == 0)

    drained = runner.shutdown()
    check("shutdown drained", drained)
    print(f"serve smoke ok in {time.perf_counter() - started:.2f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
