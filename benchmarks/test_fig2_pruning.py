"""Figure 2: effectiveness vs. efficiency of the three filters.

For both datasets at their default parameters, reports per filter the
number of surviving candidates (effectiveness) and the time spent
applying it (efficiency). Expected shape (Section 7.1): CDF tightest but
slowest; q-gram fastest thanks to the index, close to CDF on protein;
frequency in between, cheaper on protein (smaller alphabet/uncertainty).
"""

import pytest

from repro.core.config import JoinConfig
from repro.core.join import similarity_join

from benchmarks.conftest import BASE_SIZE, dblp, protein, run_once

EXPERIMENT = "fig2_pruning"

SETTINGS = {
    "dblp": dict(collection=lambda: dblp(BASE_SIZE), k=2, tau=0.1),
    "protein": dict(collection=lambda: protein(BASE_SIZE), k=4, tau=0.01),
}


@pytest.mark.parametrize("dataset", sorted(SETTINGS))
def test_fig2_filter_breakdown(benchmark, experiment_log, dataset):
    setting = SETTINGS[dataset]
    collection = setting["collection"]()
    config = JoinConfig(k=setting["k"], tau=setting["tau"])

    outcome = run_once(benchmark, lambda: similarity_join(collection, config))

    stats = outcome.stats
    assert stats.qgram_survivors >= stats.frequency_survivors
    experiment_log.row(
        dataset=dataset,
        length_eligible=stats.length_eligible_pairs,
        after_qgram=stats.qgram_survivors,
        after_frequency=stats.frequency_survivors,
        after_cdf=stats.cdf_undecided + stats.cdf_accepted,
        results=stats.result_pairs,
        qgram_seconds=stats.seconds("qgram") + stats.seconds("index"),
        frequency_seconds=stats.seconds("frequency"),
        cdf_seconds=stats.seconds("cdf"),
        verify_seconds=stats.verification_seconds,
    )
