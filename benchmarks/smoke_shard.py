"""Shard-mode CI smoke: N CLI processes + merge == one serial join.

Two layers, both fatal on mismatch:

1. **Golden fixture, in-process** — the equivalence-spec self-join is
   run as ``--shard 0/3 + 1/3 + 2/3`` through the shard backend and
   ``merge_run``; the merged pairs must equal the committed
   ``tests/data/golden_driver_outputs.json`` entry byte-for-byte.
2. **Real CLI processes** — a generated collection is joined serially,
   then as three separate ``repro-join join --shard i/3`` subprocess
   invocations sharing one run directory, folded with
   ``repro-join merge``, and the stdouts are diffed — under both the
   ``fork`` and ``spawn`` start methods (skipping whichever the
   platform lacks).

Usage::

    PYTHONPATH=src python benchmarks/smoke_shard.py
"""

from __future__ import annotations

import json
import multiprocessing
import subprocess
import sys
import tempfile
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from repro.core.config import JoinConfig  # noqa: E402
from repro.core.merge import merge_run  # noqa: E402
from repro.core.parallel import parallel_similarity_join  # noqa: E402

from tests import equivalence_spec as spec  # noqa: E402

SHARDS = 3


def check(label: str, condition: bool) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  {label:<52s} {status}")
    if not condition:
        sys.exit(1)


def golden_in_process(tmp: Path) -> None:
    golden = json.loads(
        (REPO_ROOT / "tests" / "data" / "golden_driver_outputs.json")
        .read_text()
    )["QFCT-k2-probs"]["join"]
    collection = spec.self_collection()
    config = JoinConfig.for_algorithm(
        "QFCT",
        k=2,
        tau=spec.TAU,
        q=spec.Q,
        report_probabilities=True,
        workers=2,
    )
    run_dir = tmp / "golden-run"
    for i in range(SHARDS):
        parallel_similarity_join(
            collection,
            replace(
                config, shard=f"{i}/{SHARDS}", checkpoint_dir=str(run_dir)
            ),
            use_processes=False,
            min_parallel=0,
        )
    merged = merge_run(run_dir)
    check(
        f"golden fixture: merged {SHARDS} shards == committed pairs",
        spec.encode_pairs(merged.pairs) == golden,
    )


def cli(*args: str) -> str:
    completed = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    if completed.returncode != 0:
        print(completed.stdout)
        print(completed.stderr, file=sys.stderr)
        sys.exit(f"repro-join {' '.join(args)} exited {completed.returncode}")
    return completed.stdout


def cli_processes(tmp: Path) -> None:
    names = tmp / "names.txt"
    cli("gen", "--kind", "dblp", "--count", "80", "--seed", "11",
        "-o", str(names))
    join = ("join", str(names), "-k", "2", "--tau", "0.1", "-q", "2",
            "--probabilities")
    serial = cli(*join)
    check("serial CLI join produced pairs", bool(serial.strip()))
    available = multiprocessing.get_all_start_methods()
    for method in ("fork", "spawn"):
        if method not in available:
            print(f"  start method {method}: unavailable, skipped")
            continue
        run_dir = tmp / f"run-{method}"
        for i in range(SHARDS):
            out = cli(*join, "--workers", "2", "--mp-start", method,
                      "--shard", f"{i}/{SHARDS}", "--resume", str(run_dir))
            check(f"{method}: shard {i}/{SHARDS} keeps stdout clean",
                  out == "")
        merged = cli("merge", str(run_dir))
        check(f"{method}: {SHARDS} shard processes + merge == serial",
              merged == serial)


def main() -> int:
    print(f"shard smoke: {SHARDS}-way decomposition, fork + spawn")
    with tempfile.TemporaryDirectory(prefix="shard-smoke-") as tmp:
        golden_in_process(Path(tmp))
        cli_processes(Path(tmp))
    print("shard smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
