"""Similarity-search latency (supplementary; not a paper figure).

The paper notes its indexes also answer search queries (end of §7.6).
This bench measures per-query latency against collection size for the
full QFCT stack, confirming that query cost stays sublinear in |S|
thanks to the inverted segment index.
"""

import pytest

from repro.core.config import JoinConfig
from repro.core.search import SimilaritySearcher
from repro.datasets.uncertainty import inject_uncertainty, random_edit
from repro.uncertain.alphabet import LOWERCASE27
from repro.util.rng import ensure_rng

from benchmarks.conftest import dblp, run_once

EXPERIMENT = "search_latency"

SIZES = (100, 400, 800)
QUERIES = 10


@pytest.mark.parametrize("size", SIZES)
def test_search_latency(benchmark, experiment_log, size):
    collection = dblp(size)
    config = JoinConfig(k=2, tau=0.1)
    searcher = SimilaritySearcher(collection, config)

    rng = ensure_rng(99)
    queries = []
    for _ in range(QUERIES):
        base = collection[rng.randrange(len(collection))]
        text = base.most_probable_instance()[0]
        text = random_edit(text, LOWERCASE27, rng)
        queries.append(inject_uncertainty(text, 0.15, 4, LOWERCASE27, rng))

    def run_all():
        return [searcher.search(query) for query in queries]

    outcomes = run_once(benchmark, run_all)

    total_hits = sum(len(o.matches) for o in outcomes)
    total_seconds = sum(o.stats.total_seconds for o in outcomes)
    experiment_log.row(
        collection_size=size,
        queries=QUERIES,
        hits=total_hits,
        mean_query_ms=total_seconds / QUERIES * 1000,
        mean_candidates=sum(o.stats.qgram_survivors for o in outcomes) / QUERIES,
    )
