"""``python benchmarks/load_serve.py`` — serve-layer load harness.

Stands up an in-process ``repro-join serve`` service over a synthetic
dblp-like collection and drives it with concurrent HTTP clients via
:func:`repro.serve.loadgen.run_load`, printing (and optionally saving)
the latency percentiles and the exhaustive outcome tally. Usage::

    PYTHONPATH=src python benchmarks/load_serve.py
    PYTHONPATH=src python benchmarks/load_serve.py --size 200 \
        --clients 8 --requests 200 -o serve_load.json
    PYTHONPATH=src python benchmarks/load_serve.py \
        --inject-faults 'slow@3/0.5,drop@7' --request-timeout 2.0

Unlike the benchmark-suite entry (:func:`measure_serve`), this harness
exposes the robustness knobs — admission limits, request deadline,
degradation margin, fault injection — so saturation and fault
behaviour can be explored interactively.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Allow running from a source checkout without an installed package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:  # pragma: no cover
    sys.path.insert(0, str(_SRC))

from repro.core.config import JoinConfig  # noqa: E402
from repro.core.errors import ReproError  # noqa: E402
from repro.datasets import dblp_like_collection  # noqa: E402
from repro.serve.loadgen import run_load  # noqa: E402
from repro.serve.service import JoinService, ServeOptions  # noqa: E402
from repro.uncertain.parser import format_uncertain  # noqa: E402


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=120,
                        help="collection size (default 120)")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent client threads (default 4)")
    parser.add_argument("--requests", type=int, default=60,
                        help="total requests across all clients (default 60)")
    parser.add_argument("--topk-every", type=int, default=5,
                        help="every Nth request is a top-k (0 disables)")
    parser.add_argument("--max-in-flight", type=int, default=8)
    parser.add_argument("--queue-limit", type=int, default=16)
    parser.add_argument("--queue-timeout", type=float, default=0.25)
    parser.add_argument("--request-timeout", type=float, default=30.0)
    parser.add_argument("--degrade-margin", type=float, default=0.0,
                        help="deadline fraction that triggers sampling "
                             "(0 disables degradation; default 0)")
    parser.add_argument("--inject-faults", default=None, metavar="SPEC",
                        help="request-path fault spec, e.g. "
                             "'slow@3/0.5,drop@7,corrupt-resp@11'")
    parser.add_argument("-o", "--output", default=None,
                        help="write the measurement document as JSON")
    args = parser.parse_args(argv)

    try:
        options = ServeOptions(
            max_in_flight=args.max_in_flight,
            queue_limit=args.queue_limit,
            queue_timeout=args.queue_timeout,
            request_timeout=args.request_timeout,
            degrade_margin=args.degrade_margin,
            fault_spec=args.inject_faults,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    collection = dblp_like_collection(
        args.size, theta=0.2, rng=1234, max_uncertain_positions=4
    )
    config = JoinConfig.for_algorithm("QFCT", k=2, tau=0.1, q=3)
    service = JoinService(collection, config, options)
    # precision=12: the parser's probability-sum tolerance is 1e-6, so
    # the default 6-significant-digit rendering can fail to re-parse.
    queries = [
        format_uncertain(s, precision=12)
        for s in collection[: max(8, args.size // 8)]
    ]

    print(f"load: {args.size} strings, {args.clients} clients, "
          f"{args.requests} requests"
          + (f", faults={args.inject_faults}" if args.inject_faults else ""))
    document = run_load(
        service,
        queries,
        clients=args.clients,
        requests=args.requests,
        topk_every=args.topk_every,
        client_timeout=args.request_timeout * 2 + 5.0,
    )
    print(f"  p50 {document['p50_ms']:8.1f} ms   "
          f"p95 {document['p95_ms']:8.1f} ms   "
          f"p99 {document['p99_ms']:8.1f} ms")
    print(f"  completed {document['completed']}/{document['requests']}  "
          f"shed {document['shed']}  degraded {document['degraded']}  "
          f"504 {document['deadline_exceeded']}  "
          f"dropped {document['dropped']}  errors {document['errors']}  "
          f"unaccounted {document['unaccounted']}")
    print(f"  wall {document['wall_s']:.2f}s  {document['qps']:.1f} req/s  "
          f"drained={document['drained']}")
    if args.output:
        Path(args.output).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"  wrote {args.output}")
    if document["unaccounted"]:
        print("error: requests unaccounted for (hang?)", file=sys.stderr)
        return 1
    if not document["drained"]:
        print("error: shutdown abandoned in-flight requests", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
