"""Figure 4: effect of the uncertainty fraction theta.

Expected shape (Section 7.3): query time grows with theta for both QFCT
and FCT (larger q(r, x) sets, pricier expectations and CDF cells, and
exponentially pricier verification); QFCT stays below FCT on dblp, while
FCT is comparatively better on protein data.
"""

import pytest

from repro.core.config import JoinConfig
from repro.core.join import similarity_join

from benchmarks.conftest import BASE_SIZE, SWEEP_UNCERTAIN_CAP, dblp, protein, run_once

EXPERIMENT = "fig4_theta"

SWEEP = {
    "dblp": dict(thetas=(0.1, 0.2, 0.3, 0.4), k=2, tau=0.1, data=dblp),
    "protein": dict(thetas=(0.05, 0.1, 0.15, 0.2), k=4, tau=0.01, data=protein),
}
ALGORITHMS = ("QFCT", "FCT")


def cases():
    for dataset, setting in sorted(SWEEP.items()):
        for theta in setting["thetas"]:
            for algorithm in ALGORITHMS:
                yield dataset, theta, algorithm


@pytest.mark.parametrize("dataset,theta,algorithm", list(cases()))
def test_fig4_theta(benchmark, experiment_log, dataset, theta, algorithm):
    setting = SWEEP[dataset]
    collection = setting["data"](BASE_SIZE, theta, SWEEP_UNCERTAIN_CAP)
    config = JoinConfig.for_algorithm(algorithm, k=setting["k"], tau=setting["tau"])

    outcome = run_once(benchmark, lambda: similarity_join(collection, config))

    stats = outcome.stats
    experiment_log.row(
        dataset=dataset,
        algorithm=algorithm,
        theta=theta,
        results=stats.result_pairs,
        filter_seconds=stats.filtering_seconds,
        verify_seconds=stats.verification_seconds,
        total_seconds=stats.total_seconds,
    )
