"""Micro-benchmarks of the hot kernels under the join.

Not a paper figure — these quantify the building blocks so regressions
in the substrates are visible independently of the join. The cases come
from the shared registry in :mod:`repro.report.bench` (:data:`KERNELS`),
the same definitions the JSON runner (``python -m benchmarks.run``) and
the CI regression gate measure — one registry, three consumers. A
couple of context-only cases (full edit distance, trie build) that the
gate does not track are kept locally.
"""

import random

import pytest

from repro.distance.edit import edit_distance
from repro.report.bench import KERNELS, _requirement_available
from repro.verify.trie import build_trie

from benchmarks.conftest import dblp

EXPERIMENT = "micro_kernels"


@pytest.mark.parametrize("case", KERNELS, ids=lambda case: case.name)
def test_kernel(case, benchmark):
    if not _requirement_available(case.requires):
        pytest.skip(f"requires optional dependency {case.requires!r}")
    fn, _ops = case.setup()
    benchmark(fn)


def test_full_edit_distance(benchmark):
    rng = random.Random(0)
    words = [
        "".join(rng.choice("abcdefgh") for _ in range(40)) for _ in range(20)
    ]
    benchmark(
        lambda: [edit_distance(a, b) for a in words[:10] for b in words[10:]]
    )


def test_trie_build(benchmark):
    collection = dblp(50)
    benchmark(lambda: [build_trie(s) for s in collection])
