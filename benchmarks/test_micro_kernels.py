"""Micro-benchmarks of the hot kernels under the join.

Not a paper figure — these quantify the building blocks (banded vs. full
edit distance, trie construction, CDF DP, frequency profiles) so
regressions in the substrates are visible independently of the join.
"""

import random

import pytest

from repro.distance.edit import edit_distance, edit_distance_banded
from repro.filters.cdf import cdf_bounds
from repro.filters.frequency import FrequencyProfile
from repro.verify.trie import build_trie
from repro.verify.trie_verify import trie_verify

from benchmarks.conftest import dblp

EXPERIMENT = "micro_kernels"

_WORDS = None


def words():
    global _WORDS
    if _WORDS is None:
        rng = random.Random(0)
        _WORDS = [
            "".join(rng.choice("abcdefgh") for _ in range(40)) for _ in range(60)
        ]
    return _WORDS


def test_full_edit_distance(benchmark):
    ws = words()
    benchmark(lambda: [edit_distance(a, b) for a in ws[:10] for b in ws[10:20]])


def test_banded_edit_distance_k2(benchmark):
    ws = words()
    benchmark(
        lambda: [edit_distance_banded(a, b, 2) for a in ws[:10] for b in ws[10:20]]
    )


def test_trie_build(benchmark):
    collection = dblp(50)
    benchmark(lambda: [build_trie(s) for s in collection])


def test_trie_verify_pair(benchmark):
    collection = [s for s in dblp(80) if not s.is_certain]
    left = collection[0]
    trie = build_trie(left)
    right = min(collection[1:], key=lambda s: abs(len(s) - len(left)))
    benchmark(lambda: trie_verify(left, right, 2, left_trie=trie))


def test_cdf_bounds_pair(benchmark):
    collection = dblp(40)
    left, right = collection[0], min(
        collection[1:], key=lambda s: abs(len(s) - len(collection[0]))
    )
    benchmark(lambda: cdf_bounds(left, right, 2))


def test_frequency_profile_build(benchmark):
    collection = dblp(60)
    benchmark(lambda: [FrequencyProfile(s) for s in collection])
