"""Ablation B: Theorem 2 tail bound vs. the dependence-free Markov bound,
and exact vs. beta overlap-group probabilities.

The paper's DP assumes the m segment-match events are independent; the
Markov alternative Pr(count >= t) <= sum(alpha)/t needs no such
assumption (DESIGN.md Section 4). Expected: the paper bound is tighter
(fewer q-gram survivors) at essentially identical cost; the beta group
mode is marginally cheaper than exact inclusion-exclusion with nearly
identical pruning.
"""

import pytest

from repro.core.config import JoinConfig
from repro.core.join import similarity_join

from benchmarks.conftest import dblp, run_once

EXPERIMENT = "ablation_bounds"

SIZE = 250
CASES = [
    ("paper", "exact"),
    ("markov", "exact"),
    ("paper", "beta"),
]

_survivors = {}


@pytest.mark.parametrize("bound_mode,group_mode", CASES)
def test_bound_and_group_modes(benchmark, experiment_log, bound_mode, group_mode):
    collection = dblp(SIZE)
    config = JoinConfig(
        k=2, tau=0.1, bound_mode=bound_mode, group_mode=group_mode
    )

    outcome = run_once(benchmark, lambda: similarity_join(collection, config))

    stats = outcome.stats
    _survivors[(bound_mode, group_mode)] = stats.qgram_survivors
    paper = _survivors.get(("paper", "exact"))
    markov = _survivors.get(("markov", "exact"))
    if paper is not None and markov is not None:
        assert paper <= markov  # paper bound at least as selective
    experiment_log.row(
        bound_mode=bound_mode,
        group_mode=group_mode,
        results=stats.result_pairs,
        qgram_survivors=stats.qgram_survivors,
        qgram_seconds=stats.seconds("qgram") + stats.seconds("index"),
        total_seconds=stats.total_seconds,
    )
