"""Serial vs. length-banded parallel self-join wall clock.

Runs the fig3 dblp dataset through the serial driver and the parallel
driver at workers ∈ {2, 4}, recording wall-clock seconds and asserting
the acceptance property: the parallel pair list is byte-identical to
the serial one (same pairs, same order, same probabilities). Speedup on
a single-core container is expectedly ~1x or below (process spawn +
halo duplication); the row series documents the overhead so multi-core
runs can be compared against it.
"""

import pytest

from repro.core.config import JoinConfig
from repro.core.join import similarity_join
from repro.core.parallel import parallel_similarity_join

from benchmarks.conftest import dblp, run_once

EXPERIMENT = "parallel_scaling"

SIZE = 200
WORKERS = (2, 4)

_serial_outcome = {}


def _serial(collection):
    key = id(collection)
    if key not in _serial_outcome:
        _serial_outcome[key] = similarity_join(
            collection, JoinConfig(k=2, tau=0.1)
        )
    return _serial_outcome[key]


def test_serial_baseline(benchmark, experiment_log):
    collection = dblp(SIZE)
    outcome = run_once(benchmark, lambda: _serial(collection))
    experiment_log.header(
        f"dblp size={SIZE} k=2 tau=0.1 QFCT — serial vs length-banded parallel"
    )
    experiment_log.row(
        workers=1,
        results=outcome.stats.result_pairs,
        total_seconds=outcome.stats.total_seconds,
        band_cpu_seconds=0.0,
        identical=True,
    )


@pytest.mark.parametrize("workers", WORKERS)
def test_parallel_scaling(benchmark, experiment_log, workers):
    collection = dblp(SIZE)
    serial = _serial(collection)
    config = JoinConfig(k=2, tau=0.1, workers=workers)

    outcome = run_once(
        benchmark,
        lambda: parallel_similarity_join(collection, config, min_parallel=0),
    )

    assert outcome.pairs == serial.pairs
    assert [p.probability for p in outcome.pairs] == [
        p.probability for p in serial.pairs
    ]
    experiment_log.row(
        workers=workers,
        results=outcome.stats.result_pairs,
        total_seconds=outcome.stats.total_seconds,
        band_cpu_seconds=outcome.stats.seconds("bands"),
        identical=outcome.pairs == serial.pairs,
    )
