"""Figure 9: effect of string length.

Following Section 7.8, each uncertain string is appended to itself 0-3
times with the number of uncertain characters capped at 8 (so the world
count stays fixed while length grows). Expected shape: both QFCT and FCT
slow down with length; frequency filtering is length-insensitive, letting
FCT close part of the gap; verification increasingly dominates.
"""

import pytest

from repro.core.config import JoinConfig
from repro.core.join import similarity_join
from repro.uncertain.position import UncertainPosition
from repro.uncertain.string import UncertainString

from benchmarks.conftest import dblp, run_once

EXPERIMENT = "fig9_string_length"

REPEATS = (1, 2, 3, 4)  # total copies of each string
ALGORITHMS = ("QFCT", "FCT")
#: The paper caps at 8 probabilistic characters; pure-Python verification
#: needs 6 (see conftest.SWEEP_UNCERTAIN_CAP rationale).
MAX_UNCERTAIN = 6


def self_append(string: UncertainString, copies: int) -> UncertainString:
    """Concatenate ``copies`` copies, keeping <= MAX_UNCERTAIN pdfs."""
    repeated = string
    for _ in range(copies - 1):
        repeated = repeated + string
    kept = 0
    positions = []
    for pos in repeated:
        if pos.is_certain:
            positions.append(pos)
        elif kept < MAX_UNCERTAIN:
            positions.append(pos)
            kept += 1
        else:
            positions.append(UncertainPosition.certain(pos.top))
    return UncertainString(positions)


@pytest.mark.parametrize("copies", REPEATS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig9_length(benchmark, experiment_log, algorithm, copies):
    collection = [self_append(s, copies) for s in dblp(150)]
    mean_length = sum(len(s) for s in collection) / len(collection)
    config = JoinConfig.for_algorithm(algorithm, k=2, tau=0.1)

    outcome = run_once(benchmark, lambda: similarity_join(collection, config))

    stats = outcome.stats
    experiment_log.row(
        algorithm=algorithm,
        copies=copies,
        mean_length=mean_length,
        results=stats.result_pairs,
        filter_seconds=stats.filtering_seconds,
        verify_seconds=stats.verification_seconds,
        total_seconds=stats.total_seconds,
    )
