"""Table 1: the worked q-gram filtering example (m=3, q=2, k=1, tau=0.25).

Regenerates the table's alpha values and accept/reject outcomes for the
four uncertain strings against r = GGATCC and asserts the paper's
narrative: S1 and S2 fail the count requirement, S3 is pruned by the
probabilistic bound (0.2 < tau), S4 survives with bound 0.4.
"""

import pytest

from repro.filters.qgram import QGramFilter
from repro.uncertain.parser import parse_uncertain
from repro.uncertain.string import UncertainString

from benchmarks.conftest import run_once

EXPERIMENT = "table1"

R = UncertainString.from_text("GGATCC")
STRINGS = {
    "S1": parse_uncertain("A{(C,0.5),(G,0.5)}A{(C,0.5),(G,0.5)}AC"),
    "S2": parse_uncertain("AA{(G,0.9),(T,0.1)}G{(C,0.3),(G,0.2),(T,0.5)}C"),
    "S3": parse_uncertain("G{(A,0.8),(G,0.2)}CT{(A,0.8),(C,0.1),(T,0.1)}C"),
    "S4": parse_uncertain("{(G,0.8),(T,0.2)}GA{(C,0.3),(G,0.2),(T,0.5)}CT"),
}
TAU = 0.25
EXPECTED = {
    "S1": {"alphas": (0.0, 0.0, 0.0), "candidate": False},
    "S2": {"alphas": (0.0, 0.0, 0.8), "candidate": False},
    "S3": {"alphas": (1.0, 0.0, 0.2), "candidate": False},
    "S4": {"alphas": (0.8, 0.5, 0.0), "candidate": True},
}


@pytest.mark.parametrize("name", sorted(STRINGS))
def test_table1_row(benchmark, experiment_log, name):
    qfilter = QGramFilter(k=1, q=2, selection="window")
    string = STRINGS[name]

    outcome = run_once(benchmark, lambda: qfilter.evaluate(R, string))

    assert outcome.alphas == pytest.approx(EXPECTED[name]["alphas"], abs=1e-12)
    decision = outcome.decision(TAU)
    assert (not decision.rejected) == EXPECTED[name]["candidate"]
    experiment_log.row(
        string=name,
        alpha1=outcome.alphas[0],
        alpha2=outcome.alphas[1],
        alpha3=outcome.alphas[2],
        upper=outcome.upper,
        candidate=not decision.rejected,
    )
