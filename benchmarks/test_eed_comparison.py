"""Section 7.9: qualitative comparison with the EED join of Jestes et al.

Three claims are measured:

1. *Index size* — disjoint segments keep the index around ~2x the data
   size, against ~5x for overlapping q-grams ([10]'s scheme).
2. *Candidate evaluations* — QFCT's index prunes before the expensive
   filters; the EED baseline evaluates every length-eligible pair.
3. *Verification* — trie-based verification shares work across worlds;
   exact EED must touch every world pair.
"""

import pytest

from repro.baselines.eed_join import eed_join
from repro.core.config import JoinConfig
from repro.core.join import similarity_join
from repro.index.inverted import SegmentInvertedIndex
from repro.uncertain.worlds import enumerate_worlds

from benchmarks.conftest import dblp, run_once

EXPERIMENT = "eed_comparison"

SIZE = 150
K = 2
TAU = 0.1


def overlapping_qgram_entries(collection, q=3):
    """Index entries under [10]'s overlapping q-gram scheme."""
    total = 0
    for string in collection:
        for start in range(len(string) - q + 1):
            window = string.substring(start, q)
            total += sum(1 for _ in enumerate_worlds(window, limit=None))
    return total


def test_index_size_disjoint_vs_overlapping(benchmark, experiment_log):
    collection = dblp(SIZE)
    data_size = sum(len(s) for s in collection)

    def build():
        index = SegmentInvertedIndex(k=K, q=3)
        for string_id, string in enumerate(
            sorted(collection, key=lambda s: (len(s), id(s)))
        ):
            index.add(string_id, string)
        return index

    index = run_once(benchmark, build)
    overlapping = overlapping_qgram_entries(collection)
    assert index.entry_count < overlapping
    experiment_log.row(
        data_chars=data_size,
        disjoint_entries=index.entry_count,
        overlapping_entries=overlapping,
        disjoint_ratio=index.entry_count / data_size,
        overlapping_ratio=overlapping / data_size,
    )


def test_join_vs_eed_baseline(benchmark, experiment_log):
    collection = dblp(SIZE)
    config = JoinConfig(k=K, tau=TAU)

    outcome = run_once(benchmark, lambda: similarity_join(collection, config))
    eed_outcome = eed_join(collection, float(K))

    stats = outcome.stats
    eligible_pairs = (
        eed_outcome.candidate_evaluations
        + eed_outcome.pruned_by_frequency
    )
    experiment_log.row(
        ktau_pairs=stats.result_pairs,
        ktau_expensive_filter_calls=stats.frequency_checked,
        ktau_verifications=stats.verifications,
        eed_pairs=len(eed_outcome.pairs),
        eed_length_eligible=eligible_pairs,
        eed_exact_evaluations=eed_outcome.exact_evaluations,
        eed_world_pairs=eed_outcome.world_pairs_compared,
    )
    # QFCT's indexed pruning must touch fewer pairs with expensive filters
    # than the pairwise EED baseline evaluates.
    assert stats.frequency_checked <= eligible_pairs
