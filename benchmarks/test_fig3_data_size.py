"""Figure 3: scalability in the collection size |S| (dblp).

The paper sweeps 50K-500K strings; we sweep a 10x range at reduced scale.
Expected shape (Section 7.2): FCT's filtering grows ~quadratically (it
compares R against every length-eligible string); the q-gram variants
grow much more slowly; QFCT/QCT stay fastest overall, QFT deteriorates
through extra verifications.
"""

import pytest

from repro.core.config import JoinConfig
from repro.core.join import similarity_join

from benchmarks.conftest import dblp, run_once

EXPERIMENT = "fig3_data_size"

SIZES = (100, 200, 400, 800)
ALGORITHMS = ("QFCT", "QCT", "QFT", "FCT")


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig3_scaling(benchmark, experiment_log, algorithm, size):
    collection = dblp(size)
    config = JoinConfig.for_algorithm(algorithm, k=2, tau=0.1)

    outcome = run_once(benchmark, lambda: similarity_join(collection, config))

    stats = outcome.stats
    experiment_log.row(
        algorithm=algorithm,
        size=size,
        results=stats.result_pairs,
        filter_seconds=stats.filtering_seconds,
        verify_seconds=stats.verification_seconds,
        total_seconds=stats.total_seconds,
        verifications=stats.verifications,
        false_candidates=stats.false_candidates,
    )
