"""Figure 7: effect of the segment length q on the q-gram filter.

Expected shape (Section 7.6): larger q means fewer segments (cheaper
merging) but exponentially more segment instances — index size grows,
filter effectiveness diminishes, and total query time is uni-valley with
the sweet spot around q = 3..4.
"""

import pytest

from repro.core.config import JoinConfig
from repro.core.join import similarity_join
from repro.index.inverted import SegmentInvertedIndex

from benchmarks.conftest import BASE_SIZE, dblp, run_once

EXPERIMENT = "fig7_q"

QS = (2, 3, 4, 5, 6)


@pytest.mark.parametrize("q", QS)
def test_fig7_join_vs_q(benchmark, experiment_log, q):
    collection = dblp(BASE_SIZE)
    config = JoinConfig(k=2, tau=0.1, q=q)

    outcome = run_once(benchmark, lambda: similarity_join(collection, config))

    # Rebuild the full index to report its size (the join's internal index
    # is per-run state).
    index = SegmentInvertedIndex(k=2, q=q)
    for string_id, string in enumerate(
        sorted(collection, key=lambda s: (len(s), id(s)))
    ):
        index.add(string_id, string)

    stats = outcome.stats
    experiment_log.row(
        q=q,
        results=stats.result_pairs,
        qgram_survivors=stats.qgram_survivors,
        index_entries=index.entry_count,
        qgram_seconds=stats.seconds("qgram") + stats.seconds("index"),
        total_seconds=stats.total_seconds,
    )
