"""Store-mode CI smoke: SQLite-backed joins == in-memory, byte for byte.

Two layers, both fatal on mismatch:

1. **Golden fixture, in-process** — the equivalence-spec self-join runs
   out of a freshly built ``SqliteStore``, serially and as
   ``--shard 0/3 + 1/3 + 2/3`` folded with ``merge_run``; both pair
   lists must equal the committed
   ``tests/data/golden_driver_outputs.json`` entry byte-for-byte.
2. **Real CLI processes** — a generated collection is joined, streamed,
   top-k'd, and searched twice: once from the collection file, once
   from a store built with ``repro-join index build``. Every stdout is
   diffed. A three-shard ``join --store`` run plus ``repro-join merge``
   must also reproduce the serial in-memory stdout.

Usage::

    PYTHONPATH=src python benchmarks/smoke_store.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from repro.core.config import JoinConfig  # noqa: E402
from repro.core.merge import merge_run  # noqa: E402
from repro.store import (  # noqa: E402
    SqliteStore,
    build_sqlite_store,
    parallel_store_join,
    store_similarity_join,
)

from tests import equivalence_spec as spec  # noqa: E402

SHARDS = 3


def check(label: str, condition: bool) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  {label:<52s} {status}")
    if not condition:
        sys.exit(1)


def golden_in_process(tmp: Path) -> None:
    golden = json.loads(
        (REPO_ROOT / "tests" / "data" / "golden_driver_outputs.json")
        .read_text()
    )["QFCT-k2-probs"]["join"]
    config = JoinConfig.for_algorithm(
        "QFCT", k=2, tau=spec.TAU, q=spec.Q, report_probabilities=True
    )
    store_path = tmp / "golden.idx"
    build_sqlite_store(
        spec.self_collection(), store_path, k=2, q=spec.Q
    )
    store = SqliteStore(store_path)
    serial = store_similarity_join(store, config)
    check(
        "golden fixture: store join == committed pairs",
        spec.encode_pairs(serial.pairs) == golden,
    )
    run_dir = tmp / "golden-run"
    sharded = replace(config, workers=2, checkpoint_dir=str(run_dir))
    for i in range(SHARDS):
        parallel_store_join(
            store,
            replace(sharded, shard=f"{i}/{SHARDS}"),
            use_processes=False,
            min_parallel=0,
        )
    merged = merge_run(run_dir)
    check(
        f"golden fixture: {SHARDS} store shards + merge == committed",
        spec.encode_pairs(merged.pairs) == golden,
    )


def cli(*args: str) -> str:
    completed = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    if completed.returncode != 0:
        print(completed.stdout)
        print(completed.stderr, file=sys.stderr)
        sys.exit(f"repro-join {' '.join(args)} exited {completed.returncode}")
    return completed.stdout


def cli_processes(tmp: Path) -> None:
    names = tmp / "names.txt"
    cli("gen", "--kind", "dblp", "--count", "80", "--seed", "11",
        "-o", str(names))
    store = tmp / "names.idx"
    cli("index", "build", str(names), "-o", str(store), "-k", "2", "-q", "2")
    info = dict(
        line.split("\t", 1)
        for line in cli("index", "info", str(store)).splitlines()
    )
    check("index info reports the build shape",
          (info["strings"], info["k"], info["q"]) == ("80", "2", "2"))

    knobs = ("-k", "2", "--tau", "0.1", "-q", "2", "--probabilities")
    serial = cli("join", str(names), *knobs)
    check("serial CLI join produced pairs", bool(serial.strip()))
    check("store CLI join == in-memory stdout",
          cli("join", "--store", str(store), *knobs) == serial)
    check("store CLI --stream == in-memory --stream",
          cli("join", "--store", str(store), *knobs, "--stream")
          == cli("join", str(names), *knobs, "--stream"))
    check("store CLI topk == in-memory stdout",
          cli("topk", "--store", str(store), "-k", "2", "-q", "2",
              "--count", "5")
          == cli("topk", str(names), "-k", "2", "-q", "2", "--count", "5"))
    query = names.read_text().splitlines()[0]
    check("store CLI search == in-memory stdout",
          cli("search", "--store", str(store), query, *knobs)
          == cli("search", str(names), query, *knobs))

    run_dir = tmp / "store-shards"
    for i in range(SHARDS):
        out = cli("join", "--store", str(store), *knobs, "--workers", "2",
                  "--shard", f"{i}/{SHARDS}", "--resume", str(run_dir))
        check(f"store shard {i}/{SHARDS} keeps stdout clean", out == "")
    check(f"{SHARDS} store shard processes + merge == serial",
          cli("merge", str(run_dir)) == serial)


def main() -> int:
    print("store smoke: SqliteStore vs in-memory, serial + sharded")
    with tempfile.TemporaryDirectory(prefix="store-smoke-") as tmp:
        golden_in_process(Path(tmp))
        cli_processes(Path(tmp))
    print("store smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
