"""Figure 6: effect of the edit-distance threshold k.

Expected shape (Section 7.5): query time grows with k for both QFCT and
FCT — Lemma 5's requirement m - k weakens, more false candidates reach
the expensive stages — but QFCT still saves a sizable fraction of FCT's
cost at the largest k.
"""

import pytest

from repro.core.config import JoinConfig
from repro.core.join import similarity_join

from benchmarks.conftest import dblp, protein, run_once

EXPERIMENT = "fig6_k"

SWEEP = {
    "dblp": dict(ks=(1, 2, 3, 4), tau=0.1, data=dblp, size=300),
    "protein": dict(ks=(2, 4, 6, 8), tau=0.01, data=protein, size=200),
}
ALGORITHMS = ("QFCT", "FCT")


def cases():
    for dataset, setting in sorted(SWEEP.items()):
        for k in setting["ks"]:
            for algorithm in ALGORITHMS:
                yield dataset, k, algorithm


@pytest.mark.parametrize("dataset,k,algorithm", list(cases()))
def test_fig6_k(benchmark, experiment_log, dataset, k, algorithm):
    setting = SWEEP[dataset]
    collection = setting["data"](setting["size"])
    config = JoinConfig.for_algorithm(algorithm, k=k, tau=setting["tau"])

    outcome = run_once(benchmark, lambda: similarity_join(collection, config))

    stats = outcome.stats
    experiment_log.row(
        dataset=dataset,
        algorithm=algorithm,
        k=k,
        results=stats.result_pairs,
        filter_seconds=stats.filtering_seconds,
        verify_seconds=stats.verification_seconds,
        total_seconds=stats.total_seconds,
        verifications=stats.verifications,
    )
