"""One tiny join per driver — a CI smoke check, not a benchmark.

Runs each of the public drivers (batch self-join, parallel banded join,
R-S join, search, incremental, top-N, streaming iterator) on a small
synthetic collection and cross-checks the obvious agreements. Exits
non-zero on any mismatch. Usage::

    PYTHONPATH=src python benchmarks/smoke_drivers.py
"""

from __future__ import annotations

import sys
import time

from repro.core.config import JoinConfig
from repro.core.engine import iter_join_pairs
from repro.core.incremental import IncrementalJoiner
from repro.core.join import similarity_join
from repro.core.join_two import similarity_join_two
from repro.core.parallel import parallel_similarity_join
from repro.core.search import SimilaritySearcher
from repro.core.topk import top_k_join
from repro.datasets.presets import dblp_like_collection


def check(label: str, condition: bool) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  {label:<44s} {status}")
    if not condition:
        sys.exit(1)


def main() -> int:
    collection = dblp_like_collection(40, theta=0.2, gamma=4, rng=7)
    config = JoinConfig(k=2, tau=0.1, q=3, report_probabilities=True)
    print(f"smoke: {len(collection)} strings, k={config.k}, tau={config.tau}")

    started = time.perf_counter()
    batch = similarity_join(collection, config)
    check(f"join: {len(batch.pairs)} pairs", len(batch.pairs) > 0)

    banded = parallel_similarity_join(
        collection, config, use_processes=False, min_parallel=0
    )
    check("parallel join == serial join", banded.pairs == batch.pairs)

    streamed = sorted(iter_join_pairs(collection, config))
    check("streamed join == batch join", streamed == batch.pairs)

    half = len(collection) // 2
    two = similarity_join_two(collection[:half], collection[half:], config)
    check(f"join_two: {len(two.pairs)} pairs", two.stats.verifications >= 0)

    searcher = SimilaritySearcher(collection, config)
    hits = searcher.search(collection[0]).matches
    check(f"search: {len(hits)} matches (self hit)",
          any(m.string_id == 0 for m in hits))

    joiner = IncrementalJoiner(config)
    incremental = sorted(joiner.extend(collection))
    check("incremental == batch join", incremental == batch.pairs)

    top = top_k_join(collection, k=config.k, count=5, q=config.q)
    best_batch = max(p.probability for p in batch.pairs)
    check("topk head == best batch probability",
          len(top.pairs) == 5 and top.pairs[0].probability == best_batch)

    print(f"all drivers ok in {time.perf_counter() - started:.2f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
