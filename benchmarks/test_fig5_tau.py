"""Figure 5: effect of the probability threshold tau.

Expected shape (Section 7.4): as tau grows, the CDF *upper*-bound filter
rejects more and the *lower*-bound accept path loses effectiveness; the
q-gram probabilistic pruning (Theorem 2) removes more candidates before
CDF, and for large tau the query time improves with the shrinking output.
"""

import pytest

from repro.core.config import JoinConfig
from repro.core.join import similarity_join

from benchmarks.conftest import BASE_SIZE, dblp, run_once

EXPERIMENT = "fig5_tau"

TAUS = (0.001, 0.01, 0.1, 0.2, 0.4)


@pytest.mark.parametrize("tau", TAUS)
def test_fig5_tau(benchmark, experiment_log, tau):
    collection = dblp(BASE_SIZE)
    config = JoinConfig(k=2, tau=tau)

    outcome = run_once(benchmark, lambda: similarity_join(collection, config))

    stats = outcome.stats
    experiment_log.row(
        tau=tau,
        results=stats.result_pairs,
        qgram_rejected=stats.qgram_rejected,
        cdf_accepted=stats.cdf_accepted,
        cdf_rejected=stats.cdf_rejected,
        verifications=stats.verifications,
        total_seconds=stats.total_seconds,
    )
