"""Ablation A: position-aware substring selection modes.

Compares the paper's stated shift window, Pass-Join's multi-match-aware
intersection, and the loose symmetric window Table 1 uses. All three are
complete (the join output is identical — asserted); tighter windows mean
fewer index probes and fewer surviving candidates.
"""

import pytest

from repro.core.config import JoinConfig
from repro.core.join import similarity_join

from benchmarks.conftest import dblp, run_once

EXPERIMENT = "ablation_selection"

MODES = ("shift", "multimatch", "window")
SIZE = 250

_results = {}


@pytest.mark.parametrize("mode", MODES)
def test_selection_mode(benchmark, experiment_log, mode):
    collection = dblp(SIZE)
    config = JoinConfig(k=2, tau=0.1, selection=mode)

    outcome = run_once(benchmark, lambda: similarity_join(collection, config))

    stats = outcome.stats
    _results[mode] = outcome.id_pairs()
    if len(_results) == len(MODES):
        assert len({frozenset(pairs) for pairs in _results.values()}) == 1
    experiment_log.row(
        mode=mode,
        results=stats.result_pairs,
        qgram_survivors=stats.qgram_survivors,
        qgram_seconds=stats.seconds("qgram") + stats.seconds("index"),
        total_seconds=stats.total_seconds,
    )
