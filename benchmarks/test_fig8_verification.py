"""Figure 8: trie-based vs. naive verification under growing theta.

The QFT stack (no CDF bounds) routes every surviving candidate into
verification, isolating the verifier the way the paper's Figure 8 does.
Expected shape (Section 7.7): both verifiers get exponentially more
expensive with theta, with the trie increasingly ahead of naive all-pairs
comparison on dblp; gains are smaller on protein-style data.
"""

import pytest

from repro.core.config import JoinConfig
from repro.core.join import similarity_join

from benchmarks.conftest import dblp, run_once

EXPERIMENT = "fig8_verification"

THETAS = (0.1, 0.2, 0.3)
VERIFIERS = ("trie", "naive")

#: Naive verification is quadratic in world counts; cap at 4 uncertain
#: positions (5^4 = 625 worlds, ~400K world pairs per candidate) so the
#: naive arm terminates while the trie-vs-naive gap stays visible.
FIG8_CAP = 4


@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("verifier", VERIFIERS)
def test_fig8_verifier(benchmark, experiment_log, verifier, theta):
    collection = dblp(100, theta, FIG8_CAP)
    config = JoinConfig.for_algorithm(
        "QFT", k=2, tau=0.1, verification=verifier
    )

    outcome = run_once(benchmark, lambda: similarity_join(collection, config))

    stats = outcome.stats
    experiment_log.row(
        verifier=verifier,
        theta=theta,
        results=stats.result_pairs,
        verifications=stats.verifications,
        verify_seconds=stats.verification_seconds,
        total_seconds=stats.total_seconds,
    )
