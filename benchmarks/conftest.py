"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's tables/figures at reduced
scale (pure-Python constant; see DESIGN.md Section 3.4). Result rows are
printed and appended to ``benchmarks/results/<experiment>.txt`` so a full
``pytest benchmarks/ --benchmark-only`` run leaves the paper-style series
on disk; EXPERIMENTS.md summarizes paper-shape vs. measured-shape.

Dataset construction is cached per (kind, size, theta) so sweeps reuse
collections instead of regenerating them inside timed regions.
"""

from __future__ import annotations

import functools
from pathlib import Path

import pytest

from repro.datasets import dblp_like_collection, protein_like_collection

RESULTS_DIR = Path(__file__).parent / "results"

#: Base collection size for most figures (the paper uses 100K; the
#: pure-Python reproduction keeps every *relative* comparison).
BASE_SIZE = 300


#: World counts are gamma^u; the paper's verification cap of 8 uncertain
#: positions (5^8 ~ 390K worlds) is affordable in C++ but not per-pair in
#: pure Python, so high-theta sweeps cap at 6 (5^6 ~ 15K worlds). The
#: relative shapes (growth with theta, trie vs. naive gap) are preserved.
SWEEP_UNCERTAIN_CAP = 6


@functools.lru_cache(maxsize=32)
def dblp(size: int = BASE_SIZE, theta: float = 0.2, cap: int = 8):
    """Cached dblp-like collection (paper defaults: k=2, tau=0.1, q=3)."""
    return dblp_like_collection(
        size, theta=theta, rng=1234, max_uncertain_positions=cap
    )


@functools.lru_cache(maxsize=32)
def protein(size: int = BASE_SIZE, theta: float = 0.1, cap: int = 8):
    """Cached protein-like collection (paper defaults: k=4, tau=0.01)."""
    return protein_like_collection(
        size, theta=theta, rng=5678, max_uncertain_positions=cap
    )


class ExperimentLog:
    """Accumulates rows for one experiment file.

    The file is truncated when the log is created (once per module), so
    re-running a subset of benchmarks refreshes exactly those experiments
    and leaves the others' results on disk.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.path = RESULTS_DIR / f"{name}.txt"
        RESULTS_DIR.mkdir(exist_ok=True)
        self.path.unlink(missing_ok=True)

    def header(self, text: str) -> None:
        self._write(f"# {text}")

    def row(self, **fields) -> None:
        parts = []
        for key, value in fields.items():
            if isinstance(value, float):
                parts.append(f"{key}={value:.4g}")
            else:
                parts.append(f"{key}={value}")
        self._write("  ".join(parts))

    def _write(self, line: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        print(f"[{self.name}] {line}")


@pytest.fixture(scope="module")
def experiment_log(request):
    """One log per benchmark module, named after the experiment."""
    name = request.module.EXPERIMENT
    return ExperimentLog(name)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Join benchmarks are seconds-long; statistical repetition would make
    the suite take hours for no extra insight.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
