"""Out-of-core index storage (DESIGN.md §6i).

Build once with :func:`build_sqlite_store` (or the ``repro-join index
build`` CLI), then join, search, or serve against the file with peak
RSS bounded by cache capacity instead of collection size. The
:class:`MemoryStore` reference implementation pins the adapter layer's
byte-identity against the classic in-memory pipeline.
"""

from repro.store.base import (
    DEFAULT_CACHE_SIZE,
    STORE_FORMAT,
    STORE_MAGIC,
    STORE_PRECISION,
    IndexStore,
    StoreMeta,
)
from repro.store.driver import (
    iter_store_join_pairs,
    parallel_store_join,
    store_similarity_join,
)
from repro.store.memory import MemoryStore, collection_digest
from repro.store.source import (
    StoreCollection,
    StoreContext,
    StoreIndexSource,
    StoreStringCache,
)
from repro.store.sqlite import SqliteStore, build_sqlite_store

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "STORE_FORMAT",
    "STORE_MAGIC",
    "STORE_PRECISION",
    "IndexStore",
    "MemoryStore",
    "SqliteStore",
    "StoreCollection",
    "StoreContext",
    "StoreIndexSource",
    "StoreMeta",
    "StoreStringCache",
    "build_sqlite_store",
    "collection_digest",
    "iter_store_join_pairs",
    "parallel_store_join",
    "store_similarity_join",
]
