"""Out-of-core join drivers over an :class:`~repro.store.base.IndexStore`.

The store-backed counterparts of :func:`repro.core.join.similarity_join`
and its banded parallel driver. Same pairs, same probabilities, same
band plan and checkpoint layout — the differences are purely about what
is resident:

* the serial path walks the store's recorded (length, id) visit order,
  hydrates strings through one bounded LRU shared by the engine and the
  collection facade, and probes prebuilt postings instead of building an
  index — peak RSS tracks the cache capacity, not the collection;
* the parallel path plans bands from the store's length bookkeeping,
  publishes a :class:`~repro.store.source.StoreCollection` (which
  pickles as just the store path — every worker and every shard opens
  the *same* file instead of receiving a republished collection), and
  reuses the classic band task verbatim, so band outputs are the classic
  outputs;
* checkpoint fingerprints substitute the store's content digest for the
  collection hash, so opening a run directory never hydrates anything.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace
from typing import Any, Iterator, Sequence

from repro.core.config import JoinConfig
from repro.core.context import CollectionContext
from repro.core.dispatch import resolve_execution_backend
from repro.core.engine import JoinEngine
from repro.core.executor import RetryPolicy
from repro.core.parallel import (
    MIN_PARALLEL_STRINGS,
    LengthBand,
    _open_checkpoint,
    _pool_publication,
    _resilience,
    _resolve_mp_context,
    _self_join_band,
    _TOKENS,
    plan_length_bands,
)
from repro.core.results import JoinOutcome, JoinPair
from repro.core.stats import JoinStatistics
from repro.store.base import DEFAULT_CACHE_SIZE, IndexStore
from repro.store.source import StoreCollection, StoreContext, StoreStringCache
from repro.util.faults import FaultPlan


def _store_fingerprint(
    kind: str,
    config: JoinConfig,
    bands: Sequence[LengthBand],
    store: IndexStore,
) -> str:
    """The store-mode analogue of ``parallel._join_fingerprint``.

    Same result-affecting knobs and band plan; the collection content
    is covered by the store's digest (already a hash over the exact
    serialized strings) instead of a re-hash that would hydrate every
    string. The ``store:`` prefix keeps store-mode and classic
    checkpoints from resuming each other — they are byte-identical in
    output but not in provenance.
    """
    digest = hashlib.sha256()
    digest.update(f"store:{kind}".encode("utf-8"))
    knobs = (
        config.k,
        config.tau,
        config.q,
        config.filters,
        config.verification,
        config.selection,
        config.group_mode,
        config.bound_mode,
        config.report_probabilities,
        config.early_stop_verification,
    )
    digest.update(repr(knobs).encode("utf-8"))
    plan = [(band.low, band.high, band.member_ids) for band in bands]
    digest.update(repr(plan).encode("utf-8"))
    digest.update(store.meta.digest.encode("utf-8"))
    return digest.hexdigest()


def iter_store_join_pairs(
    store: IndexStore,
    config: JoinConfig,
    stats: "JoinStatistics | None" = None,
) -> Iterator[JoinPair]:
    """Stream self-join pairs out of a store in discovery order.

    The store-backed twin of :func:`repro.core.engine.iter_join_pairs`:
    one serial engine walking the store's recorded visit order, strings
    hydrated through a bounded LRU — the pair stream is identical to
    the in-memory stream over the same collection.
    """
    store.meta.check_compatible(config)
    cache_size = getattr(store, "cache_size", DEFAULT_CACHE_SIZE)
    cache = StoreStringCache(store, cache_size)
    engine = JoinEngine(
        config,
        stats=stats,
        context=StoreContext(cache_size),
        store=store,
        store_cache=cache,
    )
    collection = StoreCollection(store, cache=cache)
    return engine.join(collection, order=store.ids_in_visit_order())


def _serial_store_join(store: IndexStore, config: JoinConfig) -> JoinOutcome:
    stats = JoinStatistics(total_strings=len(store))
    pairs: list[JoinPair] = []
    with stats.timer("total"):
        pairs.extend(iter_store_join_pairs(store, config, stats=stats))
    stats.result_pairs = len(pairs)
    pairs.sort()
    return JoinOutcome(pairs=pairs, stats=stats)


def store_similarity_join(
    store: IndexStore, config: JoinConfig
) -> JoinOutcome:
    """Self-join the store's collection; pairs identical to the in-memory
    :func:`~repro.core.join.similarity_join` of the same collection.

    ``config`` routes exactly as in the in-memory driver: ``workers``
    and ``checkpoint_dir``/``shard`` select the banded parallel path,
    everything else runs the serial visit loop. The store must have
    been built under the config's ``(k, q)``
    (:meth:`~repro.store.base.StoreMeta.check_compatible`).
    """
    store.meta.check_compatible(config)
    if config.workers > 1 or config.checkpoint_dir is not None:
        return parallel_store_join(store, config)
    return _serial_store_join(store, config)


def parallel_store_join(
    store: IndexStore,
    config: JoinConfig,
    use_processes: bool = True,
    min_parallel: int = MIN_PARALLEL_STRINGS,
    *,
    policy: "RetryPolicy | None" = None,
    faults: "FaultPlan | None" = None,
    run_dir: "str | None" = None,
    mp_context: Any = None,
) -> JoinOutcome:
    """Length-banded parallel self-join reading one shared store file.

    The classic driver's plan, executor, resilience, and band task —
    only the publication differs: workers receive a
    :class:`~repro.store.source.StoreCollection` (a path, once
    unpickled) and an empty feature context, then hydrate and
    featurize just their band in-process. Shard runs
    (``config.shard = "i/N"``) publish the same store path instead of a
    per-shard collection slice; the shard checkpoint layout and
    :func:`repro.core.merge.merge_run` compatibility are unchanged.
    """
    store.meta.check_compatible(config)
    serial_config = replace(
        config,
        workers=1,
        checkpoint_dir=None,
        fault_spec=None,
        shard=None,
        mp_start=None,
    )
    policy, faults, run_dir = _resilience(config, policy, faults, run_dir)
    mp_context = _resolve_mp_context(config, mp_context)
    shard = config.shard_coordinates
    checkpointing = run_dir is not None
    if not checkpointing and (
        config.workers <= 1 or len(store) < min_parallel
    ):
        return _serial_store_join(store, serial_config)
    lengths = [0] * len(store)
    for string_id, length in zip(
        store.ids_in_visit_order(), store.lengths_in_visit_order()
    ):
        lengths[string_id] = length
    plan_workers = config.workers * (shard[1] if shard is not None else 1)
    bands = plan_length_bands(lengths, plan_workers, config.k)
    if len(bands) <= 1 and not checkpointing:
        return _serial_store_join(store, serial_config)
    if not bands:
        return _serial_store_join(store, serial_config)

    checkpoint, _ = _open_checkpoint(
        run_dir,
        ("self", config, ()),
        bands,
        shard=shard,
        strings=len(store),
        fingerprint=_store_fingerprint("self", config, bands, store),
    )
    stats = JoinStatistics(total_strings=len(store))
    total_timer = stats.timer("total").start()
    token = next(_TOKENS)
    # One shared store for every band, worker, and shard: the published
    # collection pickles as the store path, and band tasks bulk-hydrate
    # their members through StoreCollection.take. Features are built
    # in-band (band-sized), so the context published here stays empty.
    pool_kwargs = _pool_publication(
        token, (StoreCollection(store),), (CollectionContext(),), mp_context
    )
    payloads = [
        (
            band.index,
            (band.index, token, band.member_ids, band.high, serial_config),
        )
        for band in bands
    ]
    backend = resolve_execution_backend(
        workers=config.workers, use_processes=use_processes, shard=shard
    )
    results = backend.execute(
        _self_join_band,
        payloads,
        policy=policy,
        stats=stats,
        faults=faults,
        checkpoint=checkpoint,
        **pool_kwargs,
    )

    pairs: list[JoinPair] = []
    for _, band_pairs, band_stats in results:
        pairs.extend(band_pairs)
        stats.timer("bands").add(band_stats.seconds("total"))
        stats.merge(band_stats)
    pairs.sort()
    stats.result_pairs = len(pairs)
    total_timer.stop()
    return JoinOutcome(pairs=pairs, stats=stats)
