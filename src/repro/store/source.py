"""Store-backed engine adapters: bounded-memory candidate generation.

Four pieces bridge an :class:`~repro.store.base.IndexStore` into the
streaming engine of :mod:`repro.core.engine` while keeping peak RSS
proportional to cache capacity, never to the collection:

* :class:`StoreIndexSource` — a ``CandidateSource`` whose postings live
  in the store. ``add``/``register`` only maintain the rank ↔ id and
  per-length bookkeeping (the postings are prebuilt); probes run the
  shared math of :mod:`repro.index.probe` over a rank-limited view, so
  results are byte-identical to an incrementally built
  :class:`~repro.core.engine.SegmentIndexSource`.
* :class:`StoreStringCache` — a bounded LRU of hydrated strings with
  rank-block readahead (the join's visit order is rank order, so
  sequential hydration touches each block once) and a batched
  ``prefetch`` the engine calls before refining a candidate block.
* :class:`StoreContext` — a bounded-LRU
  :class:`~repro.core.context.CollectionContext`: features rebuild
  deterministically after eviction, so eviction can only cost time.
* :class:`StoreCollection` — a sequence facade over the store (ids are
  0..N-1 loader positions) that pickles as just the store path, so
  parallel workers under any start method reopen one shared file
  instead of receiving string data.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Mapping, Sequence

from repro.core.config import JoinConfig
from repro.core.context import CollectionContext, StringFeatures
from repro.core.errors import ConfigurationError
from repro.core.stats import JoinStatistics
from repro.index.probe import query_candidates
from repro.partition.even import Segment, partition_for
from repro.store.base import DEFAULT_CACHE_SIZE, IndexStore
from repro.uncertain.string import UncertainString

#: Strings hydrated per read on a cache miss. Block-aligned in rank
#: space: the join visit order *is* rank order, so sequential hydration
#: reads each block exactly once.
READ_BLOCK = 256


class StoreStringCache:
    """Bounded LRU of hydrated strings, keyed by original id.

    Satisfies the mapping surface :class:`~repro.core.engine.JoinEngine`
    uses for its ``_strings`` dict (``[]`` get/set, ``len``), plus two
    store-aware extensions: ``prefetch`` (one batched hydration for a
    probe's candidate block — the engine calls it when present) and
    ``take`` (bulk hydration bypassing the cache, for band tasks that
    materialize their band anyway).

    A ``prefetch`` may exceed capacity transiently — evicting a just-
    fetched block before the refine loop reads it would turn one batched
    query into per-string misses — so trimming happens on the *next*
    miss or insert instead.
    """

    def __init__(
        self,
        store: IndexStore,
        capacity: int = DEFAULT_CACHE_SIZE,
        read_block: int = READ_BLOCK,
    ) -> None:
        self._store = store
        self._capacity = max(1, capacity)
        self._block = max(1, min(read_block, self._capacity))
        self._entries: "OrderedDict[int, UncertainString]" = OrderedDict()
        self._rank_of: "dict[int, int] | None" = None
        self._added = 0
        #: Number of store read operations (misses + prefetch batches);
        #: the cache-effectiveness measure the tests pin.
        self.fetches = 0

    def __len__(self) -> int:
        return self._added

    def _rank_index(self) -> dict[int, int]:
        if self._rank_of is None:
            self._rank_of = {
                string_id: rank
                for rank, string_id in enumerate(
                    self._store.ids_in_visit_order()
                )
            }
        return self._rank_of

    def _trim(self) -> None:
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)

    def __setitem__(self, string_id: int, string: UncertainString) -> None:
        self._entries[string_id] = string
        self._entries.move_to_end(string_id)
        self._added += 1
        self._trim()

    def __getitem__(self, string_id: int) -> UncertainString:
        string = self._entries.get(string_id)
        if string is not None:
            self._entries.move_to_end(string_id)
            return string
        rank = self._rank_index()[string_id]
        start = rank - (rank % self._block)
        block = self._store.strings_at_ranks(start, start + self._block)
        ids = self._store.ids_in_visit_order()
        self.fetches += 1
        for offset, fetched in enumerate(block):
            fetched_id = ids[start + offset]
            if fetched_id not in self._entries:
                self._entries[fetched_id] = fetched
        self._entries.move_to_end(string_id)
        self._trim()
        return self._entries[string_id]

    def prefetch(self, ids: Sequence[int]) -> None:
        """Hydrate every missing id in one batched store read."""
        missing = [
            string_id
            for string_id in ids
            if string_id not in self._entries
        ]
        if not missing:
            return
        fetched = self._store.strings_by_ids(missing)
        self.fetches += 1
        self._entries.update(fetched)

    def take(self, ids: Sequence[int]) -> list[UncertainString]:
        """Bulk-hydrate ``ids`` (in order) without touching the cache."""
        fetched = self._store.strings_by_ids(ids)
        return [fetched[string_id] for string_id in ids]


class StoreCollection(Sequence[UncertainString]):
    """The store's collection as a sequence of strings, ids = positions.

    Reads go through a :class:`StoreStringCache` (shareable with an
    engine so both sides hit one LRU). Pickles as just the store —
    i.e. a path — so publishing it to parallel workers ships no
    string data under any start method.
    """

    def __init__(
        self, store: IndexStore, cache: "StoreStringCache | None" = None
    ) -> None:
        self._store = store
        self._cache = (
            cache
            if cache is not None
            else StoreStringCache(store, getattr(store, "cache_size", DEFAULT_CACHE_SIZE))
        )

    @property
    def store(self) -> IndexStore:
        return self._store

    def __len__(self) -> int:
        return len(self._store)

    def __getitem__(self, string_id: int) -> UncertainString:  # type: ignore[override]
        return self._cache[string_id]

    def __iter__(self) -> Iterator[UncertainString]:
        for string_id in range(len(self)):
            yield self._cache[string_id]

    def take(self, ids: Sequence[int]) -> list[UncertainString]:
        """Bulk-hydrate ``ids`` bypassing the cache (band tasks)."""
        return self._cache.take(ids)

    def __reduce__(self) -> tuple:
        return (StoreCollection, (self._store,))


class StoreContext(CollectionContext):
    """A :class:`CollectionContext` with a bounded feature LRU.

    Features are deterministic functions of their string, so evicting
    and rebuilding one cannot change any result — the bound turns the
    context's O(collection) growth into O(capacity) at a pure time
    cost. Negative pseudo-ids stay fresh-per-call as in the base class.
    """

    __slots__ = ("_capacity",)

    def __init__(self, capacity: int = DEFAULT_CACHE_SIZE) -> None:
        super().__init__()
        self._features: "OrderedDict[int, StringFeatures]" = OrderedDict()
        self._capacity = max(1, capacity)

    def features(
        self, string_id: int, string: UncertainString
    ) -> StringFeatures:
        if string_id < 0:
            return StringFeatures(string)
        features = self._features.get(string_id)
        if features is None:
            features = StringFeatures(string)
            self._features[string_id] = features
            while len(self._features) > self._capacity:
                self._features.popitem(last=False)
        else:
            self._features.move_to_end(string_id)
        return features


class _RankLimitedView:
    """The :class:`~repro.index.probe.PostingView` of one probe.

    Fixes ``rank_limit`` at probe start (the number of strings
    registered so far — exactly the prefix an incrementally built index
    would contain), so concurrent probes over a fully built source each
    carry their own immutable limit.
    """

    __slots__ = ("_source", "_limit")

    def __init__(self, source: "StoreIndexSource", limit: int) -> None:
        self._source = source
        self._limit = limit

    def partition_of(self, length: int) -> Sequence[Segment]:
        return self._source.partition_of(length)

    def visit_lengths(self) -> list[int]:
        return sorted(self._source._ranks_by_length)

    def ids_of_length(self, length: int) -> Sequence[int]:
        return self._source._ranks_by_length.get(length, [])

    def has_segment(self, length: int, segment_index: int) -> bool:
        return self._source._store.has_segment(
            length, segment_index, self._limit
        )

    def posting_lists(
        self, length: int, segment_index: int, words: Sequence[str]
    ) -> Mapping[str, Sequence[tuple[int, float]]]:
        return self._source._store.posting_lists(
            length, segment_index, words, self._limit
        )


class StoreIndexSource:
    """Candidate generation over a store's prebuilt segment postings.

    The ``CandidateSource`` counterpart of
    :class:`~repro.core.engine.SegmentIndexSource` when the index lives
    in an :class:`~repro.store.base.IndexStore`. ``add`` (or the
    hydration-free ``register``) replays bookkeeping only — rank ↔ id,
    per-length counts — and must follow the store's visit order exactly,
    because posting entries carry store ranks. Probes restrict the
    store's full posting lists to the registered prefix via
    ``rank < limit``; see :mod:`repro.store.base` for why that is
    byte-identical to probing an incrementally built index.
    """

    def __init__(self, config: JoinConfig, store: IndexStore) -> None:
        store.meta.check_compatible(config)
        self._store = store
        self._k = config.k
        self._q = config.q
        self._selection = config.selection
        self._group_mode = config.group_mode
        self._bound_mode = config.bound_mode
        self._rank_to_id: list[int] = []
        self._count_by_length: dict[int, int] = {}
        self._ranks_by_length: dict[int, list[int]] = {}
        self._partitions: dict[int, list[Segment]] = {}
        self._visit_ids = store.ids_in_visit_order()

    @property
    def store(self) -> IndexStore:
        return self._store

    def __len__(self) -> int:
        return len(self._rank_to_id)

    def partition_of(self, length: int) -> list[Segment]:
        partition = self._partitions.get(length)
        if partition is None:
            partition = (
                [] if length == 0 else partition_for(length, self._q, self._k)
            )
            self._partitions[length] = partition
        return partition

    def register(self, string_id: int, length: int) -> None:
        """Register one string by id and length, without hydrating it."""
        rank = len(self._rank_to_id)
        if rank >= len(self._visit_ids) or self._visit_ids[rank] != string_id:
            expected = (
                self._visit_ids[rank]
                if rank < len(self._visit_ids)
                else "<exhausted>"
            )
            raise ConfigurationError(
                "store-backed source must replay the store's visit order: "
                f"rank {rank} got id {string_id}, store has {expected}"
            )
        self._rank_to_id.append(string_id)
        self._count_by_length[length] = (
            self._count_by_length.get(length, 0) + 1
        )
        self._ranks_by_length.setdefault(length, []).append(rank)

    def add(
        self, string_id: int, string: UncertainString, stats: JoinStatistics
    ) -> None:
        self.register(string_id, len(string))

    def probe(
        self, query: UncertainString, tau: float, stats: JoinStatistics
    ) -> list[tuple[int, "float | None"]]:
        length = len(query)
        eligible = sum(
            count
            for other_length, count in self._count_by_length.items()
            if abs(other_length - length) <= self._k
        )
        stats.record("length", "eligible", eligible)
        with stats.timer("qgram"):
            view = _RankLimitedView(self, len(self._rank_to_id))
            ranked = [
                (candidate.string_id, candidate.upper)
                for candidate in query_candidates(
                    view,
                    query,
                    tau,
                    k=self._k,
                    selection=self._selection,
                    group_mode=self._group_mode,
                    bound_mode=self._bound_mode,
                )
            ]
            ranked.sort()
        stats.record("qgram", "survivors", len(ranked))
        stats.record("qgram", "rejected", eligible - len(ranked))
        return [(self._rank_to_id[rank], upper) for rank, upper in ranked]
