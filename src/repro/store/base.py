"""The out-of-core index store contract.

An :class:`IndexStore` is a *built* (k, q) segment index plus the
collection it was built from, addressable by **rank**: the position of
a string in the canonical ascending ``(length, id)`` visit order every
driver in this repo walks. Ranks are what posting entries carry and
what probes return; the original collection ids travel alongside
(:meth:`IndexStore.ids_in_visit_order`) so callers can translate back.

Two implementations:

* :class:`repro.store.memory.MemoryStore` — the reference: the same
  dict-of-posting-lists layout :class:`repro.index.inverted` builds,
  frozen and rank-addressed. It exists to pin the adapter layer — any
  divergence between a store-backed run and the classic in-memory run
  can be bisected to either the adapter (MemoryStore differs) or the
  SQLite page layer (only SqliteStore differs).
* :class:`repro.store.sqlite.SqliteStore` — the out-of-core store: one
  SQLite file holding per-string records, posting lists, and metadata,
  probed with batched ``IN (...)`` lookups. Peak RSS is governed by the
  hydration caches of :mod:`repro.store.source`, not collection size.

Why probing a full prebuilt index restricted to ``rank < limit`` is
byte-identical to probing an index built incrementally up to that
rank: each posting list restricted to ranks below the limit *is* the
list the incremental build would hold (ranks ascend within a list by
construction), and every per-candidate float in the probe depends only
on the query and that candidate's postings — see
:mod:`repro.index.probe`, which both paths execute verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence, runtime_checkable

from repro.core.config import JoinConfig
from repro.core.errors import CheckpointMismatchError
from repro.uncertain.string import UncertainString

#: File-format identity of a persisted store.
STORE_MAGIC = "repro-index-store"
#: Bump when the on-disk layout changes incompatibly.
STORE_FORMAT = 1
#: Float precision strings are serialized at. 17 significant digits
#: round-trip IEEE doubles exactly — the byte-identity guarantee needs
#: hydrated strings to carry the *same* floats the builder saw.
STORE_PRECISION = 17
#: Default bounded-cache size (strings / feature rows) of the hydration
#: layer. Peak RSS of a store-backed run is proportional to this, never
#: to the collection.
DEFAULT_CACHE_SIZE = 4096


@dataclass(frozen=True)
class StoreMeta:
    """Identity and shape of a built store.

    ``digest`` is the SHA-256 over the collection's canonical serialized
    form (``format_uncertain(precision=17)`` lines in original id
    order) — the content fingerprint checkpointed shard runs use in
    place of re-hashing a collection they never materialize.
    """

    k: int
    q: int
    count: int
    entry_count: int
    digest: str

    def check_compatible(self, config: JoinConfig) -> None:
        """Reject configs the stored postings were not built under.

        Postings depend only on ``(k, q)`` (canonical partition +
        world enumeration); the probe-time knobs (selection, group
        mode, bound mode, τ, filter stack) are free. Non-q-gram stacks
        never read postings, so any store over the right collection
        serves them.
        """
        if not config.uses_qgram:
            return
        if (self.k, self.q) != (config.k, config.q):
            raise CheckpointMismatchError(
                "index store",
                f"store was built for (k={self.k}, q={self.q}); "
                f"config needs (k={config.k}, q={config.q}) — rebuild "
                "with `repro-join index build`",
            )


@runtime_checkable
class IndexStore(Protocol):
    """Read-side surface of a built store. All methods are thread-safe."""

    @property
    def meta(self) -> StoreMeta: ...

    def __len__(self) -> int:
        """Number of strings in the collection."""
        ...

    def ids_in_visit_order(self) -> Sequence[int]:
        """Original collection id at each rank (rank = list position)."""
        ...

    def lengths_in_visit_order(self) -> Sequence[int]:
        """String length at each rank — bookkeeping without hydration."""
        ...

    def strings_at_ranks(self, start: int, stop: int) -> list[UncertainString]:
        """Hydrate the strings with ``start <= rank < stop``, rank order."""
        ...

    def strings_by_ids(
        self, ids: Sequence[int]
    ) -> dict[int, UncertainString]:
        """Hydrate by original collection id (batched)."""
        ...

    def has_segment(
        self, length: int, segment_index: int, rank_limit: int
    ) -> bool:
        """Any posting for ``(length, segment)`` below ``rank_limit``?"""
        ...

    def posting_lists(
        self,
        length: int,
        segment_index: int,
        words: Sequence[str],
        rank_limit: int,
    ) -> Mapping[str, Sequence[tuple[int, float]]]:
        """The non-empty rank-limited posting lists among ``words``.

        Entries are ``(rank, prob)`` ascending by rank — the probe's
        merge order; see :class:`repro.index.probe.PostingView`.
        """
        ...
