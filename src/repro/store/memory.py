"""The in-memory reference :class:`~repro.store.base.IndexStore`.

Holds exactly what the SQLite store persists — rank-ordered string
records plus ``(length, segment) → word → [(rank, prob)]`` posting
lists — but in plain Python structures, built with the same partition
and world enumeration :class:`repro.index.inverted.SegmentInvertedIndex`
uses. Rank limits are applied by binary search over the rank-sorted
lists, mirroring the SQL ``rank < ?`` predicate.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from typing import Iterable, Mapping, Sequence

from repro.partition.even import partition_for
from repro.store.base import STORE_PRECISION, StoreMeta
from repro.uncertain.parser import format_uncertain
from repro.uncertain.string import UncertainString
from repro.uncertain.worlds import enumerate_worlds


def collection_digest(collection: Iterable[UncertainString]) -> str:
    """SHA-256 over the canonical serialized collection, id order."""
    digest = hashlib.sha256()
    for string in collection:
        digest.update(
            format_uncertain(string, precision=STORE_PRECISION).encode("utf-8")
        )
        digest.update(b"\n")
    return digest.hexdigest()


def visit_order(lengths: Sequence[int]) -> list[int]:
    """Ids (= positions) sorted by the canonical ``(length, id)`` order."""
    return sorted(range(len(lengths)), key=lambda i: (lengths[i], i))


class MemoryStore:
    """A built (k, q) index plus its collection, frozen in memory."""

    def __init__(
        self,
        collection: Sequence[UncertainString],
        k: int,
        q: int,
    ) -> None:
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if q <= 0:
            raise ValueError(f"q must be positive, got {q}")
        self._collection = list(collection)
        lengths = [len(string) for string in self._collection]
        self._ids_visit = visit_order(lengths)
        self._lengths_visit = [lengths[i] for i in self._ids_visit]
        # (length, segment index) -> word -> [(rank, prob)] ascending.
        self._lists: dict[
            tuple[int, int], dict[str, list[tuple[int, float]]]
        ] = {}
        entry_count = 0
        for rank, string_id in enumerate(self._ids_visit):
            string = self._collection[string_id]
            length = lengths[string_id]
            partition = (
                [] if length == 0 else partition_for(length, q, k)
            )
            for segment in partition:
                lists = self._lists.setdefault((length, segment.index), {})
                piece = string.substring(segment.start, segment.length)
                for word, prob in enumerate_worlds(piece, limit=None):
                    if prob > 0.0:
                        lists.setdefault(word, []).append((rank, prob))
                        entry_count += 1
        self.meta = StoreMeta(
            k=k,
            q=q,
            count=len(self._collection),
            entry_count=entry_count,
            digest=collection_digest(self._collection),
        )

    def __len__(self) -> int:
        return len(self._collection)

    def ids_in_visit_order(self) -> Sequence[int]:
        return self._ids_visit

    def lengths_in_visit_order(self) -> Sequence[int]:
        return self._lengths_visit

    def strings_at_ranks(self, start: int, stop: int) -> list[UncertainString]:
        return [
            self._collection[string_id]
            for string_id in self._ids_visit[start:stop]
        ]

    def strings_by_ids(
        self, ids: Sequence[int]
    ) -> dict[int, UncertainString]:
        return {string_id: self._collection[string_id] for string_id in ids}

    def has_segment(
        self, length: int, segment_index: int, rank_limit: int
    ) -> bool:
        lists = self._lists.get((length, segment_index))
        if not lists:
            return False
        return any(
            postings[0][0] < rank_limit for postings in lists.values()
        )

    def posting_lists(
        self,
        length: int,
        segment_index: int,
        words: Sequence[str],
        rank_limit: int,
    ) -> Mapping[str, Sequence[tuple[int, float]]]:
        lists = self._lists.get((length, segment_index))
        if not lists:
            return {}
        out: dict[str, Sequence[tuple[int, float]]] = {}
        for word in words:
            postings = lists.get(word)
            if not postings:
                continue
            # Entries ascend by rank; (rank_limit,) sorts before any
            # (rank_limit, prob), so bisect_left cuts at rank >= limit.
            cut = bisect_left(postings, (rank_limit,))
            if cut:
                out[word] = postings[:cut]
        return out
