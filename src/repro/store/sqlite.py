"""The out-of-core SQLite :class:`~repro.store.base.IndexStore`.

One database file holds the whole built index:

``meta``
    Key/value header — magic, format version, (k, q), counts, and the
    collection content digest. Checked on every open, so a mis-built
    or foreign file fails fast with the checkpoint error taxonomy.
``strings``
    One row per string: ``rank`` (primary key, the canonical
    (length, id) visit position), original ``id``, ``length``, and the
    ``format_uncertain(precision=17)`` text — 17 significant digits
    round-trip IEEE doubles exactly, so hydrated strings carry the
    same floats the builder saw.
``postings``
    One row per posting entry ``(length, segment, word, rank, prob)``,
    covered by a unique index in exactly the probe's access order.
    ``prob`` is a SQLite REAL — an IEEE double, stored and returned
    bit-exactly.

Probes run batched ``IN (...)`` lookups (chunked under SQLite's bound
-variable cap) with a ``rank < ?`` predicate, so a prefix probe against
the full prebuilt index returns byte-for-byte what an incrementally
built index would (see :mod:`repro.store.base`).

The store object is fork- and thread-safe by construction: connections
are opened lazily per ``(pid, thread)`` and never cross either
boundary, and pickling ships only the path + options — a spawned
worker reopens the same file instead of receiving any data.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.core.errors import CheckpointCorruptError
from repro.partition.even import partition_for
from repro.store.base import (
    DEFAULT_CACHE_SIZE,
    STORE_FORMAT,
    STORE_MAGIC,
    STORE_PRECISION,
    StoreMeta,
)
from repro.uncertain.parser import format_uncertain, parse_uncertain
from repro.uncertain.string import UncertainString
from repro.uncertain.worlds import enumerate_worlds

#: Bound variables per ``IN (...)`` batch — comfortably under every
#: SQLite build's variable cap (999 on the oldest still-deployed ones).
_IN_BATCH = 400

#: Rows buffered per ``executemany`` during builds.
_BUILD_BATCH = 2000


def _chunks(items: Sequence[Any], size: int) -> Iterator[Sequence[Any]]:
    for start in range(0, len(items), size):
        yield items[start : start + size]


# ----------------------------------------------------------------------
# building
# ----------------------------------------------------------------------


def build_sqlite_store(
    records: Iterable[UncertainString],
    path: str | Path,
    *,
    k: int,
    q: int,
) -> StoreMeta:
    """Build a store file from a stream of uncertain strings.

    Two passes, both O(batch) in memory: records stream into an ingest
    table (ids = arrival order, digest accumulated on the fly), ranks
    are assigned by one ``ORDER BY length, id`` window query, then each
    string is re-read in rank order and its segment worlds inserted as
    postings. The posting index is created after the bulk load (bulk
    insert + index build beats maintaining a b-tree under random word
    order). The finished database is moved into place atomically
    (unique tmp name + fsync + ``os.replace``), so a crashed build
    never leaves a half-written store where a reader expects one.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if q <= 0:
        raise ValueError(f"q must be positive, got {q}")
    import hashlib

    target = Path(path)
    tmp = target.with_name(f"{target.name}.tmp.{os.getpid()}")
    tmp.unlink(missing_ok=True)
    digest = hashlib.sha256()
    connection = sqlite3.connect(tmp)
    try:
        connection.executescript(
            """
            PRAGMA journal_mode = OFF;
            PRAGMA synchronous = OFF;
            CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
            CREATE TABLE ingest (
                id INTEGER PRIMARY KEY,
                length INTEGER NOT NULL,
                text TEXT NOT NULL
            );
            CREATE TABLE strings (
                rank INTEGER PRIMARY KEY,
                id INTEGER NOT NULL,
                length INTEGER NOT NULL,
                text TEXT NOT NULL
            );
            CREATE TABLE postings (
                length INTEGER NOT NULL,
                segment INTEGER NOT NULL,
                word TEXT NOT NULL,
                rank INTEGER NOT NULL,
                prob REAL NOT NULL
            );
            """
        )
        count = 0
        batch: list[tuple[int, int, str]] = []
        for string in records:
            text = format_uncertain(string, precision=STORE_PRECISION)
            digest.update(text.encode("utf-8"))
            digest.update(b"\n")
            batch.append((count, len(string), text))
            count += 1
            if len(batch) >= _BUILD_BATCH:
                connection.executemany(
                    "INSERT INTO ingest VALUES (?, ?, ?)", batch
                )
                batch.clear()
        if batch:
            connection.executemany("INSERT INTO ingest VALUES (?, ?, ?)", batch)
        connection.executescript(
            """
            INSERT INTO strings (rank, id, length, text)
            SELECT ROW_NUMBER() OVER (ORDER BY length, id) - 1, id, length, text
            FROM ingest;
            DROP TABLE ingest;
            CREATE UNIQUE INDEX ix_strings_id ON strings (id);
            """
        )
        entry_count = 0
        postings: list[tuple[int, int, str, int, float]] = []
        read_cursor = connection.cursor()
        for rank, length, text in read_cursor.execute(
            "SELECT rank, length, text FROM strings ORDER BY rank"
        ):
            string = parse_uncertain(text)
            partition = [] if length == 0 else partition_for(length, q, k)
            for segment in partition:
                piece = string.substring(segment.start, segment.length)
                for word, prob in enumerate_worlds(piece, limit=None):
                    if prob > 0.0:
                        postings.append(
                            (length, segment.index, word, rank, prob)
                        )
                        entry_count += 1
            if len(postings) >= _BUILD_BATCH:
                connection.executemany(
                    "INSERT INTO postings VALUES (?, ?, ?, ?, ?)", postings
                )
                postings.clear()
        if postings:
            connection.executemany(
                "INSERT INTO postings VALUES (?, ?, ?, ?, ?)", postings
            )
        connection.execute(
            "CREATE UNIQUE INDEX ix_postings "
            "ON postings (length, segment, word, rank)"
        )
        meta = StoreMeta(
            k=k,
            q=q,
            count=count,
            entry_count=entry_count,
            digest=digest.hexdigest(),
        )
        connection.executemany(
            "INSERT INTO meta VALUES (?, ?)",
            [
                ("magic", STORE_MAGIC),
                ("format", str(STORE_FORMAT)),
                ("k", str(meta.k)),
                ("q", str(meta.q)),
                ("count", str(meta.count)),
                ("entry_count", str(meta.entry_count)),
                ("digest", meta.digest),
                ("precision", str(STORE_PRECISION)),
            ],
        )
        connection.commit()
        connection.close()
        # Same durability contract as repro.util.atomic: flush file
        # contents before the rename so a crash leaves old-or-new.
        fd = os.open(tmp, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, target)
    except BaseException:
        try:
            connection.close()
        except sqlite3.Error:
            pass
        tmp.unlink(missing_ok=True)
        raise
    return meta


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------


class SqliteStore:
    """Read-only handle on a store file built by :func:`build_sqlite_store`.

    Opening validates the header (magic, format version, field sanity)
    and raises :class:`~repro.core.errors.CheckpointCorruptError` for
    anything that is not a current-version store. The handle is cheap:
    per-thread connections open lazily (and reopen after a fork), and
    the only resident state is the id/length visit-order bookkeeping —
    two ints per string, never the strings themselves.
    """

    def __init__(
        self, path: str | Path, cache_size: int = DEFAULT_CACHE_SIZE
    ) -> None:
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        self.path = str(path)
        self.cache_size = cache_size
        self._local = threading.local()
        if not Path(self.path).is_file():
            raise FileNotFoundError(
                f"index store not found: {self.path}"
            )
        self.meta = self._read_meta()
        self._ids_visit: "list[int] | None" = None
        self._lengths_visit: "list[int] | None" = None
        self._order_lock = threading.Lock()

    # -- connection / pickling plumbing --------------------------------

    def _connection(self) -> sqlite3.Connection:
        local = self._local
        if (
            getattr(local, "connection", None) is not None
            and getattr(local, "pid", None) == os.getpid()
        ):
            return local.connection
        connection = sqlite3.connect(self.path)
        connection.execute("PRAGMA query_only = ON")
        local.connection = connection
        local.pid = os.getpid()
        return connection

    def __getstate__(self) -> dict[str, Any]:
        # Ship the address, not the data: a spawned worker reopens the
        # file. Meta rides along so workers skip the header re-read.
        return {
            "path": self.path,
            "cache_size": self.cache_size,
            "meta": self.meta,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.path = state["path"]
        self.cache_size = state["cache_size"]
        self.meta = state["meta"]
        self._local = threading.local()
        self._ids_visit = None
        self._lengths_visit = None
        self._order_lock = threading.Lock()

    def _read_meta(self) -> StoreMeta:
        try:
            rows = dict(
                self._connection().execute("SELECT key, value FROM meta")
            )
        except sqlite3.Error as exc:
            raise CheckpointCorruptError(
                self.path, f"not a readable index store: {exc}"
            ) from exc
        magic = rows.get("magic")
        if magic != STORE_MAGIC:
            raise CheckpointCorruptError(
                self.path,
                f"bad magic {magic!r} (expected {STORE_MAGIC!r}); "
                "not an index-store file",
            )
        version = rows.get("format")
        if version != str(STORE_FORMAT):
            raise CheckpointCorruptError(
                self.path,
                f"unsupported store format {version!r} "
                f"(expected {STORE_FORMAT})",
            )
        try:
            return StoreMeta(
                k=int(rows["k"]),
                q=int(rows["q"]),
                count=int(rows["count"]),
                entry_count=int(rows["entry_count"]),
                digest=rows["digest"],
            )
        except (KeyError, ValueError) as exc:
            raise CheckpointCorruptError(
                self.path, f"malformed store header: {exc!r}"
            ) from exc

    # -- IndexStore surface --------------------------------------------

    def __len__(self) -> int:
        return self.meta.count

    def _visit_order(self) -> tuple[list[int], list[int]]:
        if self._ids_visit is None:
            with self._order_lock:
                if self._ids_visit is None:
                    ids: list[int] = []
                    lengths: list[int] = []
                    for string_id, length in self._connection().execute(
                        "SELECT id, length FROM strings ORDER BY rank"
                    ):
                        ids.append(string_id)
                        lengths.append(length)
                    self._lengths_visit = lengths
                    self._ids_visit = ids
        assert self._lengths_visit is not None
        return self._ids_visit, self._lengths_visit

    def ids_in_visit_order(self) -> Sequence[int]:
        return self._visit_order()[0]

    def lengths_in_visit_order(self) -> Sequence[int]:
        return self._visit_order()[1]

    def strings_at_ranks(self, start: int, stop: int) -> list[UncertainString]:
        rows = self._connection().execute(
            "SELECT text FROM strings WHERE rank >= ? AND rank < ? "
            "ORDER BY rank",
            (start, stop),
        )
        return [parse_uncertain(text) for (text,) in rows]

    def strings_by_ids(
        self, ids: Sequence[int]
    ) -> dict[int, UncertainString]:
        connection = self._connection()
        out: dict[int, UncertainString] = {}
        for chunk in _chunks(list(ids), _IN_BATCH):
            marks = ",".join("?" * len(chunk))
            rows = connection.execute(
                f"SELECT id, text FROM strings WHERE id IN ({marks})",
                list(chunk),
            )
            for string_id, text in rows:
                out[string_id] = parse_uncertain(text)
        return out

    def has_segment(
        self, length: int, segment_index: int, rank_limit: int
    ) -> bool:
        row = self._connection().execute(
            "SELECT EXISTS(SELECT 1 FROM postings "
            "WHERE length = ? AND segment = ? AND rank < ?)",
            (length, segment_index, rank_limit),
        ).fetchone()
        return bool(row[0])

    def posting_lists(
        self,
        length: int,
        segment_index: int,
        words: Sequence[str],
        rank_limit: int,
    ) -> Mapping[str, Sequence[tuple[int, float]]]:
        connection = self._connection()
        out: dict[str, list[tuple[int, float]]] = {}
        for chunk in _chunks(list(words), _IN_BATCH):
            marks = ",".join("?" * len(chunk))
            rows = connection.execute(
                "SELECT word, rank, prob FROM postings "
                f"WHERE length = ? AND segment = ? AND word IN ({marks}) "
                "AND rank < ? ORDER BY word, rank",
                [length, segment_index, *chunk, rank_limit],
            )
            for word, rank, prob in rows:
                out.setdefault(word, []).append((rank, prob))
        return out
