"""Synthetic datasets mirroring the paper's evaluation data (Section 7).

The paper derives uncertain strings from two real sources — dblp author
names and a mouse+human protein sequence — via the injection procedure of
[10, 4]. We have no corpora in this environment, so the *sources* are
simulated (author-like names over the 27-symbol alphabet, residue strings
over the 22-symbol amino-acid alphabet, with the paper's length
distributions) while the *injection procedure itself* is reproduced
faithfully; see DESIGN.md Section 3 for the substitution argument.
"""

from repro.datasets.names import generate_author_names
from repro.datasets.protein import generate_protein_strings
from repro.datasets.uncertainty import inject_uncertainty, make_uncertain_collection
from repro.datasets.loader import (
    LoadReport,
    iter_collection,
    load_collection,
    save_collection,
)
from repro.datasets.presets import dblp_like_collection, protein_like_collection

__all__ = [
    "generate_author_names",
    "generate_protein_strings",
    "inject_uncertainty",
    "make_uncertain_collection",
    "LoadReport",
    "iter_collection",
    "load_collection",
    "save_collection",
    "dblp_like_collection",
    "protein_like_collection",
]
