"""Persistence for uncertain-string collections.

One string per line in the :mod:`repro.uncertain.parser` notation; blank
lines and ``#`` comments are skipped. This keeps generated benchmark
datasets inspectable with a text editor.

Malformed records surface as
:class:`~repro.core.errors.DatasetRecordError` carrying the file path,
the 1-based record (line) number, and the parser column — and the
``on_error`` policy decides whether one bad record aborts the load
(``"raise"``, the default), is dropped (``"skip"``), or is collected
into a report alongside the good records (``"collect"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Literal, Sequence, overload

from repro.core.errors import ConfigurationError, DatasetRecordError
from repro.uncertain.parser import (
    UncertainStringSyntaxError,
    format_uncertain,
    parse_uncertain,
)
from repro.uncertain.string import UncertainString

OnError = Literal["raise", "skip", "collect"]
_ON_ERROR_MODES = ("raise", "skip", "collect")


@dataclass
class LoadReport:
    """What ``load_collection(..., on_error="collect")`` returns.

    ``strings`` holds every record that parsed; ``errors`` holds one
    :class:`DatasetRecordError` per malformed record, in file order,
    each carrying the path, record number, and parser column.
    """

    strings: list[UncertainString] = field(default_factory=list)
    errors: list[DatasetRecordError] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.strings)


def save_collection(
    collection: Sequence[UncertainString], path: str | Path, precision: int = 8
) -> None:
    """Write one formatted uncertain string per line."""
    target = Path(path)
    with target.open("w", encoding="utf-8") as handle:
        for string in collection:
            handle.write(format_uncertain(string, precision=precision))
            handle.write("\n")


def iter_collection(
    path: str | Path,
    on_error: OnError = "raise",
    errors: list[DatasetRecordError] | None = None,
) -> Iterator[UncertainString]:
    """Stream a collection one parsed record at a time.

    The generator form of :func:`load_collection` — same line format,
    same skip rules, same ``on_error`` policies — holding one record in
    memory instead of the whole corpus, so out-of-core consumers (the
    store builder above all) can ingest collections that do not fit in
    RAM. Under ``on_error="collect"``, malformed records are appended
    to the caller-supplied ``errors`` list as they are encountered
    (a generator cannot return a :class:`LoadReport`).
    """
    if on_error not in _ON_ERROR_MODES:
        raise ConfigurationError(
            f"on_error must be one of {_ON_ERROR_MODES}, got {on_error!r}"
        )
    source = Path(path)
    with source.open("r", encoding="utf-8") as handle:
        for record_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            try:
                yield parse_uncertain(line)
            except UncertainStringSyntaxError as exc:
                error = DatasetRecordError(
                    str(source), record_number, exc.index, str(exc)
                )
                if on_error == "raise":
                    raise error from exc
                if on_error == "collect" and errors is not None:
                    errors.append(error)


@overload
def load_collection(
    path: str | Path, on_error: Literal["raise", "skip"] = "raise"
) -> list[UncertainString]: ...


@overload
def load_collection(
    path: str | Path, on_error: Literal["collect"]
) -> LoadReport: ...


def load_collection(
    path: str | Path, on_error: OnError = "raise"
) -> "list[UncertainString] | LoadReport":
    """Read a collection saved by :func:`save_collection`.

    ``on_error`` selects the malformed-record policy:

    ``"raise"`` (default)
        The first bad record aborts the load with a
        :class:`DatasetRecordError` (file, record number, parser
        column; the parser error is chained as ``__cause__``).
    ``"skip"``
        Bad records are dropped; the parsed strings are returned.
    ``"collect"``
        Returns a :class:`LoadReport` with both the parsed strings and
        one :class:`DatasetRecordError` per bad record.
    """
    errors: list[DatasetRecordError] = []
    strings = list(iter_collection(path, on_error=on_error, errors=errors))
    if on_error == "collect":
        return LoadReport(strings=strings, errors=errors)
    return strings
