"""Persistence for uncertain-string collections.

One string per line in the :mod:`repro.uncertain.parser` notation; blank
lines and ``#`` comments are skipped. This keeps generated benchmark
datasets inspectable with a text editor.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.uncertain.parser import format_uncertain, parse_uncertain
from repro.uncertain.string import UncertainString


def save_collection(
    collection: Sequence[UncertainString], path: str | Path, precision: int = 8
) -> None:
    """Write one formatted uncertain string per line."""
    target = Path(path)
    with target.open("w", encoding="utf-8") as handle:
        for string in collection:
            handle.write(format_uncertain(string, precision=precision))
            handle.write("\n")


def load_collection(path: str | Path) -> list[UncertainString]:
    """Read a collection saved by :func:`save_collection`."""
    source = Path(path)
    collection: list[UncertainString] = []
    with source.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            collection.append(parse_uncertain(line))
    return collection
