"""Protein-like residue strings (the mouse+human sequence stand-in).

The paper concatenates mouse and human protein sequences and breaks the
result into strings of uniform length in [20, 45] over a 22-letter
alphabet. We synthesize one long residue sequence from the stationary
amino-acid composition of vertebrate proteomes (UniProt-style
frequencies) and break it the same way.
"""

from __future__ import annotations

import random

from repro.util.rng import ensure_rng

#: Approximate amino-acid composition of vertebrate proteomes; U and O are
#: vanishingly rare but keep the alphabet at the paper's |Σ| = 22.
AMINO_ACID_FREQUENCIES: dict[str, float] = {
    "A": 0.070, "R": 0.056, "N": 0.036, "D": 0.048, "C": 0.023,
    "Q": 0.047, "E": 0.071, "G": 0.066, "H": 0.026, "I": 0.043,
    "L": 0.100, "K": 0.057, "M": 0.021, "F": 0.036, "P": 0.063,
    "S": 0.083, "T": 0.053, "W": 0.012, "Y": 0.027, "V": 0.060,
    "U": 0.001, "O": 0.001,
}

#: Paper's protein profile: lengths uniform in [20, 45].
LENGTH_RANGE = (20, 45)


def generate_protein_sequence(length: int, rng: random.Random | int | None = None) -> str:
    """One long residue sequence with realistic composition."""
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    generator = ensure_rng(rng)
    residues = list(AMINO_ACID_FREQUENCIES)
    weights = list(AMINO_ACID_FREQUENCIES.values())
    return "".join(generator.choices(residues, weights=weights, k=length))


def generate_protein_strings(
    count: int,
    rng: random.Random | int | None = None,
    length_range: tuple[int, int] = LENGTH_RANGE,
) -> list[str]:
    """Break a synthetic proteome into ``count`` strings (paper's method)."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    lo, hi = length_range
    if not 0 < lo <= hi:
        raise ValueError(f"invalid length range {length_range!r}")
    generator = ensure_rng(rng)
    lengths = [generator.randint(lo, hi) for _ in range(count)]
    sequence = generate_protein_sequence(sum(lengths), generator)
    strings: list[str] = []
    offset = 0
    for length in lengths:
        strings.append(sequence[offset : offset + length])
        offset += length
    return strings
