"""One-call dataset presets with the paper's default parameters.

Real dblp contains many near-duplicate author names (the reason
similarity joins exist); purely random strings would make every join
empty. ``duplicate_rate`` therefore re-emits perturbed copies of earlier
strings — the same clustered structure mined from real corpora.
"""

from __future__ import annotations

import random

from repro.datasets.names import generate_author_names
from repro.datasets.protein import generate_protein_strings
from repro.datasets.uncertainty import random_edit, make_uncertain_collection
from repro.uncertain.alphabet import LOWERCASE27, PROTEIN22, Alphabet
from repro.uncertain.string import UncertainString
from repro.util.rng import ensure_rng


def add_near_duplicates(
    strings: list[str],
    rate: float,
    alphabet: Alphabet,
    rng: random.Random,
    max_edits: int = 2,
) -> list[str]:
    """Replace a ``rate`` fraction of strings with noisy copies of others.

    Each duplicate applies 0–``max_edits`` random edits to a uniformly
    chosen base string, creating the similar-pair clusters a join reports.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    if not strings:
        return strings
    out = list(strings)
    for i in range(1, len(out)):
        if rng.random() < rate:
            base = out[rng.randrange(i)]
            variant = base
            for _ in range(rng.randint(0, max_edits)):
                variant = random_edit(variant, alphabet, rng)
            out[i] = variant
    return out


def dblp_like_collection(
    count: int,
    theta: float = 0.2,
    gamma: int = 5,
    rng: random.Random | int | None = 0,
    max_uncertain_positions: int | None = 8,
    duplicate_rate: float = 0.35,
) -> list[UncertainString]:
    """Author-name-like uncertain strings (paper defaults: θ=0.2, γ=5).

    ``max_uncertain_positions`` defaults to the paper's verification cap
    of 8 uncertain characters per string; ``duplicate_rate`` controls the
    fraction of near-duplicate names (see module docstring).
    """
    generator = ensure_rng(rng)
    names = generate_author_names(count, generator)
    names = add_near_duplicates(names, duplicate_rate, LOWERCASE27, generator)
    return make_uncertain_collection(
        names,
        theta=theta,
        gamma=gamma,
        alphabet=LOWERCASE27,
        rng=generator,
        max_uncertain_positions=max_uncertain_positions,
    )


def protein_like_collection(
    count: int,
    theta: float = 0.1,
    gamma: int = 5,
    rng: random.Random | int | None = 0,
    max_uncertain_positions: int | None = 8,
    duplicate_rate: float = 0.35,
) -> list[UncertainString]:
    """Protein-like uncertain strings (paper defaults: θ=0.1, γ=5)."""
    generator = ensure_rng(rng)
    strings = generate_protein_strings(count, generator)
    strings = add_near_duplicates(strings, duplicate_rate, PROTEIN22, generator)
    return make_uncertain_collection(
        strings,
        theta=theta,
        gamma=gamma,
        alphabet=PROTEIN22,
        rng=generator,
        max_uncertain_positions=max_uncertain_positions,
    )
