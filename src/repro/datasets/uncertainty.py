"""Uncertainty injection — the procedure of Section 7 (after [10, 4]).

For each deterministic source string ``s``:

1. build a neighborhood ``A(s)`` of strings within edit distance 4 of
   ``s`` (synthesized here by applying 1–4 random edits, since we mine no
   corpus; ``s`` itself is included several times so the true letter
   dominates each positional distribution);
2. choose ``ceil(theta * |s|)`` positions uniformly at random;
3. for each chosen position ``i``, the pdf of ``S[i]`` is the normalized
   frequency of the letters appearing at position ``i`` across ``A(s)``,
   truncated to about ``gamma`` alternatives (the paper sets the average
   number of choices γ to 5).
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.uncertain.alphabet import Alphabet
from repro.uncertain.position import UncertainPosition
from repro.uncertain.string import UncertainString
from repro.util.rng import ensure_rng

#: Edit radius of the neighborhood A(s) (the paper uses 4).
NEIGHBORHOOD_RADIUS = 4

#: Number of synthetic neighbors generated per string.
NEIGHBORHOOD_SIZE = 24

#: Weight of the original string inside A(s): keeps the true letter the
#: modal alternative at every uncertain position.
SELF_WEIGHT = 8


def random_edit(text: str, alphabet: Alphabet, rng: random.Random) -> str:
    """Apply one random insertion, deletion, or substitution."""
    symbols = alphabet.symbols
    if not text:
        return rng.choice(symbols)
    op = rng.randrange(3)
    pos = rng.randrange(len(text))
    if op == 0 and len(text) > 1:  # deletion
        return text[:pos] + text[pos + 1 :]
    if op == 1:  # insertion
        return text[:pos] + rng.choice(symbols) + text[pos:]
    return text[:pos] + rng.choice(symbols) + text[pos + 1 :]  # substitution


def neighborhood(
    text: str,
    alphabet: Alphabet,
    rng: random.Random,
    size: int = NEIGHBORHOOD_SIZE,
    radius: int = NEIGHBORHOOD_RADIUS,
) -> list[str]:
    """A synthetic ``A(s)``: ``size`` variants within ``radius`` edits."""
    variants = [text] * SELF_WEIGHT
    for _ in range(size):
        variant = text
        for _ in range(rng.randint(1, radius)):
            variant = random_edit(variant, alphabet, rng)
        variants.append(variant)
    return variants


def positional_pdf(
    variants: Sequence[str],
    index: int,
    true_char: str,
    gamma: int,
    rng: random.Random,
) -> UncertainPosition:
    """The pdf of position ``index`` from letter frequencies over ``A(s)``.

    Letters are counted across all variants long enough to have position
    ``index``; the distribution is truncated to at most ``gamma_i``
    alternatives (drawn around ``gamma``), always keeping ``true_char``.
    """
    counts: dict[str, int] = {}
    for variant in variants:
        if index < len(variant):
            char = variant[index]
            counts[char] = counts.get(char, 0) + 1
    counts.setdefault(true_char, 1)
    # Draw this position's support size around gamma (>= 2 so the position
    # is genuinely uncertain), then keep the most frequent letters.
    target = max(2, gamma + rng.choice((-1, 0, 0, 1)))
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    kept = dict(ranked[:target])
    kept[true_char] = max(kept.get(true_char, 1), counts[true_char])
    total = sum(kept.values())
    return UncertainPosition({char: count / total for char, count in kept.items()})


def inject_uncertainty(
    text: str,
    theta: float,
    gamma: int,
    alphabet: Alphabet,
    rng: random.Random | int | None = None,
) -> UncertainString:
    """Turn ``text`` into a character-level uncertain string.

    ``theta`` is the fraction of uncertain positions, ``gamma`` the target
    mean number of alternatives per uncertain position.
    """
    if not 0.0 <= theta <= 1.0:
        raise ValueError(f"theta must be in [0, 1], got {theta}")
    if gamma < 2:
        raise ValueError(f"gamma must be at least 2, got {gamma}")
    generator = ensure_rng(rng)
    variants = neighborhood(text, alphabet, generator)
    uncertain_count = math.ceil(theta * len(text))
    chosen = set(
        generator.sample(range(len(text)), min(uncertain_count, len(text)))
    )
    positions = [
        positional_pdf(variants, i, ch, gamma, generator)
        if i in chosen
        else UncertainPosition.certain(ch)
        for i, ch in enumerate(text)
    ]
    return UncertainString(positions)


def make_uncertain_collection(
    strings: Sequence[str],
    theta: float,
    gamma: int,
    alphabet: Alphabet,
    rng: random.Random | int | None = None,
    max_uncertain_positions: int | None = None,
) -> list[UncertainString]:
    """Inject uncertainty into a whole collection.

    ``max_uncertain_positions`` caps uncertain positions per string (the
    paper caps at 8 in the string-length experiment, Section 7.8, to keep
    verification feasible).
    """
    generator = ensure_rng(rng)
    collection: list[UncertainString] = []
    for text in strings:
        effective_theta = theta
        if max_uncertain_positions is not None and len(text) > 0:
            cap = max_uncertain_positions / len(text)
            effective_theta = min(theta, cap)
        collection.append(
            inject_uncertainty(text, effective_theta, gamma, alphabet, generator)
        )
    return collection
