"""Author-name-like string generation (the dblp stand-in).

Names are built from syllables (consonant–vowel cores with occasional
codas) into "given family" shapes, lowercased over the 27-symbol alphabet
(a–z plus space). Lengths approximately follow the paper's dblp profile:
a normal distribution clipped to [10, 35] with mean ≈ 19.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.util.rng import ensure_rng

_ONSETS = (
    "b", "c", "ch", "d", "f", "g", "h", "j", "k", "l", "m",
    "n", "p", "r", "s", "sh", "t", "th", "v", "w", "y", "z",
)
_VOWELS = ("a", "e", "i", "o", "u", "ai", "ee", "ia", "io", "ou")
_CODAS = ("", "", "", "n", "m", "r", "s", "l", "ng", "k", "t")

#: Paper's dblp profile: lengths ~ Normal(19, 4.5) clipped to [10, 35].
LENGTH_MEAN = 19.0
LENGTH_STDDEV = 4.5
LENGTH_RANGE = (10, 35)


def _syllable(rng: random.Random) -> str:
    return (
        rng.choice(_ONSETS) + rng.choice(_VOWELS) + rng.choice(_CODAS)
    )


def _word(rng: random.Random, syllables: int) -> str:
    return "".join(_syllable(rng) for _ in range(syllables))


def generate_author_name(rng: random.Random, target_length: int) -> str:
    """One "given family" name close to ``target_length`` characters."""
    lo, hi = LENGTH_RANGE
    name = f"{_word(rng, rng.randint(1, 2))} {_word(rng, rng.randint(1, 3))}"
    while len(name) < target_length:
        name += f" {_word(rng, 1)}" if rng.random() < 0.3 else _syllable(rng)
    if len(name) > max(target_length, hi):
        name = name[: max(target_length, lo)].rstrip()
    return name if len(name) >= lo else name + _word(rng, 1)


def generate_author_names(
    count: int, rng: random.Random | int | None = None
) -> list[str]:
    """``count`` author-like strings with the paper's length profile."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    generator = ensure_rng(rng)
    lo, hi = LENGTH_RANGE
    names: list[str] = []
    for _ in range(count):
        target = int(round(generator.gauss(LENGTH_MEAN, LENGTH_STDDEV)))
        target = max(lo, min(hi, target))
        names.append(generate_author_name(generator, target))
    return names


def mean_length(strings: Sequence[str]) -> float:
    """Average string length (reported in the paper's dataset table)."""
    if not strings:
        return 0.0
    return sum(len(s) for s in strings) / len(strings)
