"""Expected edit distance (EED) — the similarity measure of Jestes et al. [10].

``eed(R, S) = sum_{r_i, s_j} p(r_i) p(s_j) ed(r_i, s_j)``.

The paper argues EED does not implement possible-world semantics at the
query level (all worlds contribute, weighted by distance, instead of being
thresholded per world); it is reproduced here as the baseline for the
Section 7.9 comparison.
"""

from __future__ import annotations

import random

from repro.distance.edit import edit_distance
from repro.uncertain.string import UncertainString
from repro.uncertain.worlds import enumerate_worlds
from repro.util.rng import ensure_rng

#: Exact EED enumerates |worlds(R)| x |worlds(S)| pairs; refuse beyond this.
DEFAULT_PAIR_LIMIT = 2_000_000


def expected_edit_distance(
    left: UncertainString,
    right: UncertainString,
    pair_limit: int | None = DEFAULT_PAIR_LIMIT,
) -> float:
    """Exact EED by enumerating the joint possible worlds.

    Instances of each side are enumerated once and cached, so the cost is
    ``O(W_R * W_S * ed)`` where ``W`` are world counts.
    """
    left_worlds = list(enumerate_worlds(left, limit=None))
    right_worlds = list(enumerate_worlds(right, limit=None))
    if pair_limit is not None and len(left_worlds) * len(right_worlds) > pair_limit:
        raise ValueError(
            f"refusing to enumerate {len(left_worlds) * len(right_worlds)} world "
            f"pairs (limit {pair_limit}); use sampled_expected_edit_distance"
        )
    total = 0.0
    for left_text, left_prob in left_worlds:
        for right_text, right_prob in right_worlds:
            total += left_prob * right_prob * edit_distance(left_text, right_text)
    return total


def sampled_expected_edit_distance(
    left: UncertainString,
    right: UncertainString,
    samples: int = 256,
    rng: random.Random | int | None = None,
) -> float:
    """Monte-Carlo EED estimate (used when world counts are prohibitive)."""
    if samples <= 0:
        raise ValueError(f"samples must be positive, got {samples}")
    generator = ensure_rng(rng)
    total = 0
    for _ in range(samples):
        total += edit_distance(left.sample(generator), right.sample(generator))
    return total / samples
