"""Distance kernels: edit distance, frequency distance, EED, and the exact
possible-world reference for ``Pr(ed(R, S) <= k)``.
"""

from repro.distance.edit import (
    edit_distance,
    edit_distance_banded,
    edit_distance_within,
)
from repro.distance.frequency import (
    frequency_vector,
    frequency_distance,
)
from repro.distance.eed import expected_edit_distance, sampled_expected_edit_distance
from repro.distance.probability import edit_similarity_probability

__all__ = [
    "edit_distance",
    "edit_distance_banded",
    "edit_distance_within",
    "frequency_vector",
    "frequency_distance",
    "expected_edit_distance",
    "sampled_expected_edit_distance",
    "edit_similarity_probability",
]
