"""Edit-distance kernels for deterministic strings.

Three entry points, increasingly specialized:

* :func:`edit_distance` — the full Wagner–Fischer dynamic program.
* :func:`edit_distance_banded` — O(k·min(|r|,|s|)) banded DP returning the
  distance when it is ``<= k`` and ``k + 1`` otherwise.
* :func:`edit_distance_within` — boolean threshold test with the
  prefix-pruning early-exit of Section 6.2 (abort as soon as a full DP row
  exceeds ``k``).

All of these operate on plain Python strings; the uncertain-string layer
dispatches per possible world.
"""

from __future__ import annotations


def edit_distance(left: str, right: str) -> int:
    """Levenshtein distance via the classic two-row dynamic program.

    Unit costs for insertion, deletion, and substitution — the measure used
    throughout the paper.
    """
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    if len(left) < len(right):
        left, right = right, left
    previous = list(range(len(right) + 1))
    current = [0] * (len(right) + 1)
    for i, left_char in enumerate(left, start=1):
        current[0] = i
        for j, right_char in enumerate(right, start=1):
            cost = 0 if left_char == right_char else 1
            current[j] = min(
                previous[j] + 1,          # delete from left
                current[j - 1] + 1,       # insert into left
                previous[j - 1] + cost,   # substitute / match
            )
        previous, current = current, previous
    return previous[len(right)]


def edit_distance_banded(left: str, right: str, k: int) -> int:
    """Edit distance restricted to the ``|i - j| <= k`` band.

    Returns the exact distance when it is at most ``k``; otherwise returns
    ``k + 1`` (a sentinel meaning "more than k"). Runs in
    ``O((2k + 1) * min(|left|, |right|))``.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    length_gap = abs(len(left) - len(right))
    if length_gap > k:
        return k + 1
    if left == right:
        return 0
    if len(left) < len(right):
        left, right = right, left
    n, m = len(left), len(right)
    big = k + 1
    # previous[j] holds D[i-1][j]; only j in [i - k, i + k] is meaningful.
    # Two rows are allocated once and swapped — each iteration touches
    # only the O(k) band slice plus the guard cells the next row reads
    # (current[lo - 1] below the band, current[hi + 1] above it), so no
    # O(m) list is built per outer iteration.
    previous = [j if j <= k else big for j in range(m + 1)]
    current = [big] * (m + 1)
    for i in range(1, n + 1):
        lo = max(1, i - k)
        hi = min(m, i + k)
        if i <= k:
            current[0] = i
            row_min = i
        else:
            # Guard: the cell left of the band is out of band for this
            # row (it may hold a stale value from two rows ago).
            current[lo - 1] = big
            row_min = big
        left_char = left[i - 1]
        for j in range(lo, hi + 1):
            cost = 0 if left_char == right[j - 1] else 1
            best = previous[j - 1] + cost
            if previous[j] + 1 < best:
                best = previous[j] + 1
            if current[j - 1] + 1 < best:
                best = current[j - 1] + 1
            if best > big:
                best = big
            current[j] = best
            if best < row_min:
                row_min = best
        if row_min > k:
            return big
        if hi < m:
            # Guard: the next row reads previous[hi + 1] (its band grows
            # one cell to the right); mark it out of band.
            current[hi + 1] = big
        previous, current = current, previous
    return previous[m] if previous[m] <= k else big


def edit_distance_within(left: str, right: str, k: int) -> bool:
    """True iff ``ed(left, right) <= k`` (banded DP with early exit).

    This is the verification predicate applied per possible world; the
    banded kernel already aborts as soon as a row minimum exceeds ``k``
    (prefix pruning, Section 6.2).
    """
    return edit_distance_banded(left, right, k) <= k
