"""Exact ``Pr(ed(R, S) <= k)`` by possible-world enumeration.

This is the semantic ground truth for (k, τ)-matching (Section 1):

    ``Pr(ed(R, S) <= k) = sum over worlds pw_{i,j} with ed(r_i, s_j) <= k
    of p(r_i) * p(s_j)``

It is exponential in the number of uncertain positions and exists as the
reference against which the trie/naive verifiers and every filter bound are
tested. For production verification use :mod:`repro.verify`.
"""

from __future__ import annotations

import math

from repro.distance.edit import edit_distance_banded
from repro.uncertain.string import UncertainString
from repro.uncertain.worlds import enumerate_worlds

#: Enumeration guard (joint worlds).
DEFAULT_PAIR_LIMIT = 2_000_000


def edit_similarity_probability(
    left: UncertainString,
    right: UncertainString,
    k: int,
    pair_limit: int | None = DEFAULT_PAIR_LIMIT,
) -> float:
    """Exact probability that the edit distance is at most ``k``.

    Uses the banded kernel per world pair, and skips entirely when the
    length gap already exceeds ``k`` (all worlds share the strings'
    lengths under the character-level model).
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if abs(len(left) - len(right)) > k:
        return 0.0
    left_worlds = list(enumerate_worlds(left, limit=None))
    right_worlds = list(enumerate_worlds(right, limit=None))
    if pair_limit is not None and len(left_worlds) * len(right_worlds) > pair_limit:
        raise ValueError(
            f"refusing to enumerate {len(left_worlds) * len(right_worlds)} world "
            f"pairs (limit {pair_limit})"
        )
    # math.fsum keeps the accumulation exact: naive += can drift by an
    # ulp per term, enough to flip a > tau decision on knife-edge pairs.
    terms = [
        left_prob * right_prob
        for left_text, left_prob in left_worlds
        for right_text, right_prob in right_worlds
        if edit_distance_banded(left_text, right_text, k) <= k
    ]
    return math.fsum(terms)
