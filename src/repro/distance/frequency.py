"""Frequency vectors and frequency distance (Section 2.2; Kahveci–Singh).

For deterministic strings ``r, s`` over alphabet Σ, the frequency distance

    ``fd(r, s) = max(pD, nD)``
    ``pD = sum over c with f(r)_c > f(s)_c of (f(r)_c - f(s)_c)``
    ``nD = sum over c with f(r)_c < f(s)_c of (f(s)_c - f(r)_c)``

lower-bounds the edit distance: ``fd(r, s) <= ed(r, s)``. The uncertain
extension (Lemma 6 / Theorem 3) lives in :mod:`repro.filters.frequency`.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping

from repro.uncertain.alphabet import Alphabet


def frequency_vector(text: str, alphabet: Alphabet | None = None) -> dict[str, int]:
    """Character counts of ``text``.

    When ``alphabet`` is given the result has an entry for every symbol
    (zeros included) in alphabet order, matching the paper's
    ``f(s) = [f(s)_1, ..., f(s)_sigma]``; otherwise only observed
    characters appear.
    """
    counts = Counter(text)
    if alphabet is None:
        return dict(counts)
    return {symbol: counts.get(symbol, 0) for symbol in alphabet}


def positive_negative_distance(
    left_counts: Mapping[str, int], right_counts: Mapping[str, int]
) -> tuple[int, int]:
    """``(pD, nD)`` between two frequency vectors (dicts keyed by char)."""
    positive = 0
    negative = 0
    for char in left_counts.keys() | right_counts.keys():
        diff = left_counts.get(char, 0) - right_counts.get(char, 0)
        if diff > 0:
            positive += diff
        elif diff < 0:
            negative -= diff
    return positive, negative


def frequency_distance(left: str, right: str) -> int:
    """``fd(left, right) = max(pD, nD)``; a lower bound on edit distance."""
    positive, negative = positive_negative_distance(
        Counter(left), Counter(right)
    )
    return max(positive, negative)
