"""Position-aware substring selection (Section 2.1, after Pass-Join [14]).

Given a segment of ``s`` starting at (0-based) position ``p`` and a string
``r`` with length gap ``delta = |r| - |s|``, a preserved segment can only
re-appear in ``r`` at a start position shifted by the net
insertions-minus-deletions occurring before it. With at most ``k`` edits
total, the shift lies in ``[-floor((k - delta) / 2), floor((k + delta) / 2)]``
— the paper's selection window, at most ``k + 1`` candidate substrings per
segment.

Three modes are provided:

* ``"shift"`` — the window above (the paper's stated formula; complete).
* ``"multimatch"`` — additionally intersects Pass-Join's multi-match-aware
  constraint that uses the segment index (tighter, still complete for the
  one-match pigeonhole with ``m = k + 1``; used as an ablation).
* ``"window"`` — the loose symmetric window ``[p - k, p + k]`` that the
  paper's Table 1 appears to use (kept to reproduce that table verbatim).
"""

from __future__ import annotations

from typing import Literal

from repro.partition.even import Segment

SelectionMode = Literal["shift", "multimatch", "window"]

#: All accepted selection modes, in documentation order.
SELECTION_MODES: tuple[SelectionMode, ...] = ("shift", "multimatch", "window")


def selection_start_range(
    segment: Segment,
    r_length: int,
    s_length: int,
    k: int,
    m: int,
    mode: SelectionMode = "shift",
) -> tuple[int, int]:
    """Inclusive 0-based start-position range ``(lo, hi)`` in ``r``.

    The range is already clipped to valid window positions
    ``[0, r_length - segment.length]``; an empty range is returned as
    ``(0, -1)``-style ``lo > hi``.
    """
    if mode not in SELECTION_MODES:
        raise ValueError(f"unknown selection mode {mode!r}")
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    delta = r_length - s_length
    pos = segment.start
    if mode == "window":
        lo, hi = pos - k, pos + k
    else:
        # floor division implements the mathematical floor for negatives too.
        lo = pos - (k - delta) // 2
        hi = pos + (k + delta) // 2
        if mode == "multimatch":
            # Pass-Join multi-match-aware constraint: at most x-1 edits may
            # precede segment x and at most m-x may follow it.
            x = segment.index
            lo = max(lo, pos - (x - 1), pos + delta - (m - x))
            hi = min(hi, pos + (x - 1), pos + delta + (m - x))
    lo = max(lo, 0)
    hi = min(hi, r_length - segment.length)
    return lo, hi


def substring_starts(
    segment: Segment,
    r_length: int,
    s_length: int,
    k: int,
    m: int,
    mode: SelectionMode = "shift",
) -> list[int]:
    """The candidate start positions as a list (possibly empty)."""
    lo, hi = selection_start_range(segment, r_length, s_length, k, m, mode)
    return list(range(lo, hi + 1))
