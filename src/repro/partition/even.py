"""Even-partition scheme (Section 4).

The paper fixes a system parameter ``q`` and divides each string of length
``l`` into ``m = max(k + 1, floor(l / q))`` disjoint segments using an even
partition: when ``m = floor(l / q)`` the last ``l - m * q`` segments have
length ``q + 1`` and the rest have length ``q``. We implement the general
even split (first segments get ``floor(l / m)``, the last ``l mod m`` get
one extra), which reduces to the paper's formula in that case and also
covers the short-string regime where ``k + 1 > floor(l / q)``.
"""

from __future__ import annotations

from typing import NamedTuple


class Segment(NamedTuple):
    """One partition segment: 0-based ``start`` and ``length``.

    ``index`` is the 1-based segment number ``x`` used by the paper's
    formulas (multi-match-aware selection needs it).
    """

    index: int
    start: int
    length: int

    @property
    def end(self) -> int:
        """Exclusive end offset."""
        return self.start + self.length


def segment_count(length: int, q: int, k: int) -> int:
    """``m = max(k + 1, floor(length / q))`` clamped to ``[1, length]``.

    Clamping to ``length`` keeps every segment non-empty for strings shorter
    than ``k + 1``; in that regime ``m <= k`` so the pigeonhole requirement
    ``>= m - k`` matches is vacuous and the q-gram filter passes everything
    (safe, merely not selective).
    """
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    if q <= 0:
        raise ValueError(f"q must be positive, got {q}")
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    m = max(k + 1, length // q)
    return max(1, min(m, length))


def even_partition(length: int, m: int) -> list[Segment]:
    """Split ``[0, length)`` into ``m`` contiguous, nearly equal segments.

    The first ``m - (length mod m)`` segments have length
    ``floor(length / m)`` and the remaining ones one extra, so segment
    lengths differ by at most 1 and later segments are never shorter —
    matching the paper's "last segments have length q + 1" convention.
    """
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    if length < m:
        raise ValueError(f"cannot split length {length} into {m} non-empty segments")
    base = length // m
    extra = length % m
    segments: list[Segment] = []
    start = 0
    for x in range(1, m + 1):
        seg_len = base + (1 if x > m - extra else 0)
        segments.append(Segment(index=x, start=start, length=seg_len))
        start += seg_len
    return segments


def partition_for(length: int, q: int, k: int) -> list[Segment]:
    """Partition a string of ``length`` per the paper's policy for (q, k)."""
    return even_partition(length, segment_count(length, q, k))
