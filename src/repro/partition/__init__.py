"""Even partitioning and position-aware substring selection (Section 2.1).

These are the Pass-Join [14, 15] building blocks the paper reuses: a string
``s`` is split into ``m`` disjoint segments, and for each segment only a
small window of substrings of the other string needs to be tested for a
match (the "position aware" selection whose size is bounded by ``k + 1``).
"""

from repro.partition.even import Segment, even_partition, partition_for, segment_count
from repro.partition.selection import (
    SelectionMode,
    selection_start_range,
    substring_starts,
)

__all__ = [
    "Segment",
    "even_partition",
    "partition_for",
    "segment_count",
    "SelectionMode",
    "selection_start_range",
    "substring_starts",
]
