"""The segment inverted index ``L^x_l`` (Section 4).

For every string length ``l`` present in the collection and every segment
position ``x`` of the canonical (q, k) partition of that length, the index
stores a mapping from deterministic segment instances ``w`` to the posting
list ``L^x_l(w) = [(string id, Pr(w = S_i^x)), ...]`` sorted by id. A
string id appears at most once per list and in as many lists of ``L^x_l``
as its segment has instances.

Strings are inserted in ascending id order by the join driver *after*
being queried, so posting lists stay sorted by construction and no pair is
enumerated twice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.filters.alpha import GroupMode, equivalent_substring_set
from repro.filters.events import markov_tail_bound, tail_probability
from repro.index.merge import join_sorted_lists, merge_weighted_postings
from repro.partition.even import Segment, partition_for
from repro.partition.selection import SelectionMode, substring_starts
from repro.uncertain.string import UncertainString
from repro.uncertain.worlds import enumerate_worlds


@dataclass(frozen=True)
class IndexCandidate:
    """One candidate produced by an index probe.

    ``alphas`` holds the segment match probabilities for the candidate's
    partition (zeros for unmatched segments); ``upper`` is the Theorem 2
    bound computed from them.
    """

    string_id: int
    alphas: tuple[float, ...]
    matched_segments: int
    required: int
    upper: float


class SegmentInvertedIndex:
    """Incremental inverted index over segment instances.

    Parameters
    ----------
    k, q:
        Edit threshold and segment length target; they determine the
        canonical partition of every length.
    selection, group_mode, bound_mode:
        Substring-selection window, overlap-group estimator, and tail
        bound, as in :class:`repro.filters.qgram.QGramFilter`.
    """

    def __init__(
        self,
        k: int,
        q: int = 3,
        selection: SelectionMode = "shift",
        group_mode: GroupMode = "exact",
        bound_mode: str = "paper",
    ) -> None:
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if q <= 0:
            raise ValueError(f"q must be positive, got {q}")
        self.k = k
        self.q = q
        self.selection = selection
        self.group_mode = group_mode
        self.bound_mode = bound_mode
        # (length, segment index x) -> instance w -> sorted postings.
        self._lists: dict[tuple[int, int], dict[str, list[tuple[int, float]]]] = {}
        self._partitions: dict[int, list[Segment]] = {}
        self._ids_by_length: dict[int, list[int]] = {}
        self._indexed_lengths: set[int] = set()
        self._entry_count = 0
        self._last_id: int | None = None

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def partition_of(self, length: int) -> list[Segment]:
        """Canonical (q, k) partition of strings with ``length``.

        Zero-length strings have no segments; they flow through the
        vacuous-pigeonhole path like other strings shorter than k + 1.
        """
        partition = self._partitions.get(length)
        if partition is None:
            partition = [] if length == 0 else partition_for(length, self.q, self.k)
            self._partitions[length] = partition
        return partition

    def add(self, string_id: int, string: UncertainString) -> None:
        """Insert ``string``'s segment instances; ids must be ascending."""
        if self._last_id is not None and string_id <= self._last_id:
            raise ValueError(
                f"string ids must be inserted in ascending order "
                f"({string_id} after {self._last_id})"
            )
        self._last_id = string_id
        length = len(string)
        self._indexed_lengths.add(length)
        self._ids_by_length.setdefault(length, []).append(string_id)
        for segment in self.partition_of(length):
            lists = self._lists.setdefault((length, segment.index), {})
            piece = string.substring(segment.start, segment.length)
            for word, prob in enumerate_worlds(piece, limit=None):
                if prob > 0.0:
                    lists.setdefault(word, []).append((string_id, prob))
                    self._entry_count += 1

    @property
    def entry_count(self) -> int:
        """Total posting entries — the Figure 7 index-size measure."""
        return self._entry_count

    @property
    def indexed_lengths(self) -> set[int]:
        """String lengths currently present in the index."""
        return set(self._indexed_lengths)

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------

    def query(self, query: UncertainString, tau: float) -> list[IndexCandidate]:
        """All indexed candidates ``S_i`` that survive Lemma 5 + Theorem 2.

        Only lengths within ``k`` of ``|query|`` are probed. For each such
        length the query's equivalent substring sets are built once per
        segment and merged against the posting lists with top-pointer
        scans; candidates failing the ``>= m - k`` count or whose bound is
        ``<= tau`` are pruned here.
        """
        out: list[IndexCandidate] = []
        for length in sorted(self._indexed_lengths):
            if abs(length - len(query)) > self.k:
                continue
            out.extend(self._query_length(query, length, tau))
        return out

    def probe(self, query: UncertainString, tau: float) -> list[tuple[int, float]]:
        """``(string id, Theorem 2 upper bound)`` for every surviving
        candidate, ascending by id — the flat adapter surface consumed by
        :class:`repro.core.engine.SegmentIndexSource`."""
        pairs = [
            (candidate.string_id, candidate.upper)
            for candidate in self.query(query, tau)
        ]
        pairs.sort()
        return pairs

    def _query_length(
        self, query: UncertainString, length: int, tau: float
    ) -> list[IndexCandidate]:
        segments = self.partition_of(length)
        m = len(segments)
        required = m - self.k
        if required <= 0:
            # Strings shorter than k + 1: the pigeonhole gives no pruning
            # power, so every indexed string of this length is a candidate.
            return [
                IndexCandidate(
                    string_id=string_id,
                    alphas=(0.0,) * m,
                    matched_segments=0,
                    required=required,
                    upper=1.0,
                )
                for string_id in self._ids_by_length.get(length, [])
            ]
        per_segment: list[list[tuple[int, float]]] = []
        survivors_possible = 0
        for segment in segments:
            lists = self._lists.get((length, segment.index))
            merged: list[tuple[int, float]] = []
            if lists:
                starts = substring_starts(
                    segment, len(query), length, self.k, m, self.selection
                )
                if starts:
                    equivalent = equivalent_substring_set(
                        query, starts, segment.length, self.group_mode
                    )
                    weighted = [
                        (weight, lists[word])
                        for word, weight in equivalent.items()
                        if word in lists
                    ]
                    if weighted:
                        merged = merge_weighted_postings(weighted)
            per_segment.append(merged)
            if merged:
                survivors_possible += 1
        if survivors_possible < required:
            return []
        candidates: list[IndexCandidate] = []
        for string_id, entries in join_sorted_lists(per_segment):
            matched = sum(1 for _, alpha in entries if alpha > 0.0)
            if matched < required:
                continue
            alphas = [0.0] * m
            for segment_offset, alpha in entries:
                alphas[segment_offset] = min(1.0, alpha)
            if self.bound_mode == "markov":
                upper = markov_tail_bound(alphas, required)
            else:
                upper = tail_probability(alphas, required)
            if upper <= tau:
                continue
            candidates.append(
                IndexCandidate(
                    string_id=string_id,
                    alphas=tuple(alphas),
                    matched_segments=matched,
                    required=required,
                    upper=upper,
                )
            )
        return candidates
