"""The segment inverted index ``L^x_l`` (Section 4).

For every string length ``l`` present in the collection and every segment
position ``x`` of the canonical (q, k) partition of that length, the index
stores a mapping from deterministic segment instances ``w`` to the posting
list ``L^x_l(w) = [(string id, Pr(w = S_i^x)), ...]`` sorted by id. A
string id appears at most once per list and in as many lists of ``L^x_l``
as its segment has instances.

Strings are inserted in ascending id order by the join driver *after*
being queried, so posting lists stay sorted by construction and no pair is
enumerated twice.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.filters.alpha import GroupMode
from repro.index.probe import IndexCandidate, query_candidates
from repro.partition.even import Segment, partition_for
from repro.partition.selection import SelectionMode
from repro.uncertain.string import UncertainString
from repro.uncertain.worlds import enumerate_worlds

__all__ = ["IndexCandidate", "SegmentInvertedIndex"]


class SegmentInvertedIndex:
    """Incremental inverted index over segment instances.

    Parameters
    ----------
    k, q:
        Edit threshold and segment length target; they determine the
        canonical partition of every length.
    selection, group_mode, bound_mode:
        Substring-selection window, overlap-group estimator, and tail
        bound, as in :class:`repro.filters.qgram.QGramFilter`.
    """

    def __init__(
        self,
        k: int,
        q: int = 3,
        selection: SelectionMode = "shift",
        group_mode: GroupMode = "exact",
        bound_mode: str = "paper",
    ) -> None:
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if q <= 0:
            raise ValueError(f"q must be positive, got {q}")
        self.k = k
        self.q = q
        self.selection = selection
        self.group_mode = group_mode
        self.bound_mode = bound_mode
        # (length, segment index x) -> instance w -> sorted postings.
        self._lists: dict[tuple[int, int], dict[str, list[tuple[int, float]]]] = {}
        self._partitions: dict[int, list[Segment]] = {}
        self._ids_by_length: dict[int, list[int]] = {}
        self._indexed_lengths: set[int] = set()
        self._entry_count = 0
        self._last_id: int | None = None

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def partition_of(self, length: int) -> list[Segment]:
        """Canonical (q, k) partition of strings with ``length``.

        Zero-length strings have no segments; they flow through the
        vacuous-pigeonhole path like other strings shorter than k + 1.
        """
        partition = self._partitions.get(length)
        if partition is None:
            partition = [] if length == 0 else partition_for(length, self.q, self.k)
            self._partitions[length] = partition
        return partition

    def add(self, string_id: int, string: UncertainString) -> None:
        """Insert ``string``'s segment instances; ids must be ascending."""
        if self._last_id is not None and string_id <= self._last_id:
            raise ValueError(
                f"string ids must be inserted in ascending order "
                f"({string_id} after {self._last_id})"
            )
        self._last_id = string_id
        length = len(string)
        self._indexed_lengths.add(length)
        self._ids_by_length.setdefault(length, []).append(string_id)
        for segment in self.partition_of(length):
            lists = self._lists.setdefault((length, segment.index), {})
            piece = string.substring(segment.start, segment.length)
            for word, prob in enumerate_worlds(piece, limit=None):
                if prob > 0.0:
                    lists.setdefault(word, []).append((string_id, prob))
                    self._entry_count += 1

    @property
    def entry_count(self) -> int:
        """Total posting entries — the Figure 7 index-size measure."""
        return self._entry_count

    @property
    def indexed_lengths(self) -> set[int]:
        """String lengths currently present in the index."""
        return set(self._indexed_lengths)

    # ------------------------------------------------------------------
    # probing — the PostingView surface of repro.index.probe
    # ------------------------------------------------------------------

    def visit_lengths(self) -> list[int]:
        """Lengths with at least one indexed string, ascending."""
        return sorted(self._indexed_lengths)

    def ids_of_length(self, length: int) -> Sequence[int]:
        """Ids of the indexed strings of ``length``, ascending."""
        return self._ids_by_length.get(length, [])

    def has_segment(self, length: int, segment_index: int) -> bool:
        """Whether any posting list exists for ``(length, segment)``."""
        return bool(self._lists.get((length, segment_index)))

    def posting_lists(
        self, length: int, segment_index: int, words: Sequence[str]
    ) -> Mapping[str, Sequence[tuple[int, float]]]:
        """The posting lists present among ``words``."""
        lists = self._lists.get((length, segment_index))
        if not lists:
            return {}
        return {word: lists[word] for word in words if word in lists}

    def query(self, query: UncertainString, tau: float) -> list[IndexCandidate]:
        """All indexed candidates ``S_i`` that survive Lemma 5 + Theorem 2.

        The shared probe math of :mod:`repro.index.probe` over this
        index's posting lists; see :func:`~repro.index.probe.query_candidates`
        for the pruning sequence.
        """
        return query_candidates(
            self,
            query,
            tau,
            k=self.k,
            selection=self.selection,
            group_mode=self.group_mode,
            bound_mode=self.bound_mode,
        )

    def probe(self, query: UncertainString, tau: float) -> list[tuple[int, float]]:
        """``(string id, Theorem 2 upper bound)`` for every surviving
        candidate, ascending by id — the flat adapter surface consumed by
        :class:`repro.core.engine.SegmentIndexSource`."""
        pairs = [
            (candidate.string_id, candidate.upper)
            for candidate in self.query(query, tau)
        ]
        pairs.sort()
        return pairs
