"""Sorted-posting merges with "top pointers" (Section 4).

The paper scans the inverted lists ``L^x_l(w)`` for all ``w in q(r, x)`` in
parallel: at each step the minimum string-id among the list heads is
popped, its ``alpha_x`` contribution accumulated from every list currently
headed by that id, and the corresponding top pointers advanced. A second
merge across the per-segment result lists ``L_{alpha_x}`` counts, per
string id, how many segments matched. Both are classic k-way merges,
implemented here with a heap over the list heads.
"""

from __future__ import annotations

import heapq
from typing import Sequence

#: A posting: (string id, probability attached to this id in this list).
Posting = tuple[int, float]


def merge_weighted_postings(
    lists: Sequence[tuple[float, Sequence[Posting]]],
) -> list[Posting]:
    """Union-merge weighted posting lists into ``(id, sum of weight*prob)``.

    ``lists`` holds ``(weight, postings)`` pairs — weight is ``p_r(w)`` for
    the substring the list belongs to, and each posting carries
    ``Pr(w = S_i^x)``. Output is sorted by string id; each id appears once
    with its accumulated ``alpha_x`` contribution.
    """
    heap: list[tuple[int, int, int]] = []
    for which, (weight, postings) in enumerate(lists):
        if postings:
            heap.append((postings[0][0], which, 0))
    heapq.heapify(heap)
    merged: list[Posting] = []
    while heap:
        current_id = heap[0][0]
        alpha = 0.0
        while heap and heap[0][0] == current_id:
            _, which, offset = heapq.heappop(heap)
            weight, postings = lists[which]
            alpha += weight * postings[offset][1]
            offset += 1
            if offset < len(postings):
                heapq.heappush(heap, (postings[offset][0], which, offset))
        merged.append((current_id, alpha))
    return merged


def join_sorted_lists(
    lists: Sequence[Sequence[Posting]],
) -> list[tuple[int, list[tuple[int, float]]]]:
    """Merge per-segment ``L_{alpha_x}`` lists, tagging values by segment.

    Returns, per string id in ascending order, the list of
    ``(segment index, alpha_x)`` pairs for segments in which the id
    appeared — exactly the information needed to count matched segments
    (Lemma 5) and to feed the Theorem 2 DP.
    """
    heap: list[tuple[int, int, int]] = []
    for which, postings in enumerate(lists):
        if postings:
            heap.append((postings[0][0], which, 0))
    heapq.heapify(heap)
    joined: list[tuple[int, list[tuple[int, float]]]] = []
    while heap:
        current_id = heap[0][0]
        entries: list[tuple[int, float]] = []
        while heap and heap[0][0] == current_id:
            _, which, offset = heapq.heappop(heap)
            postings = lists[which]
            entries.append((which, postings[offset][1]))
            offset += 1
            if offset < len(postings):
                heapq.heappush(heap, (postings[offset][0], which, offset))
        joined.append((current_id, entries))
    return joined
