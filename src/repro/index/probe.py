"""Backend-independent probe math for the segment index (Section 4).

The Lemma 5 + Theorem 2 candidate computation — equivalent substring
sets per segment, weighted posting merges, segment-count pigeonhole,
tail bound, τ prune — is one fixed sequence of float operations. The
repo's byte-identity guarantee across index backends (the in-memory
dict index, the out-of-core SQLite store) holds because that sequence
lives *here*, exactly once, parameterized by a :class:`PostingView`
that only answers "which posting lists exist and what do they hold".
Both backends therefore accumulate the same floats in the same order;
neither can drift without the other.

A view answers in *rank* space: posting entries carry the insertion
rank the index was built under, and every returned candidate's
``string_id`` is such a rank. Callers that key results differently
(e.g. :class:`repro.core.engine.SegmentIndexSource`, whose ranks are
visit positions) translate afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Protocol, Sequence

from repro.filters.alpha import GroupMode, equivalent_substring_set
from repro.filters.events import markov_tail_bound, tail_probability
from repro.index.merge import join_sorted_lists, merge_weighted_postings
from repro.partition.even import Segment
from repro.partition.selection import SelectionMode, substring_starts
from repro.uncertain.string import UncertainString


@dataclass(frozen=True)
class IndexCandidate:
    """One candidate produced by an index probe.

    ``alphas`` holds the segment match probabilities for the candidate's
    partition (zeros for unmatched segments); ``upper`` is the Theorem 2
    bound computed from them.
    """

    string_id: int
    alphas: tuple[float, ...]
    matched_segments: int
    required: int
    upper: float


class PostingView(Protocol):
    """What a probe needs to know about an index, wherever it lives.

    Implementations: :class:`repro.index.inverted.SegmentInvertedIndex`
    (postings in dicts) and the rank-limited store views of
    :mod:`repro.store` (postings in SQLite pages or a prebuilt memory
    image). All ids are insertion ranks.
    """

    def partition_of(self, length: int) -> Sequence[Segment]:
        """Canonical (q, k) partition of strings with ``length``."""
        ...

    def visit_lengths(self) -> Iterable[int]:
        """Lengths with at least one indexed string, ascending."""
        ...

    def ids_of_length(self, length: int) -> Sequence[int]:
        """Ranks of the indexed strings of ``length``, ascending."""
        ...

    def has_segment(self, length: int, segment_index: int) -> bool:
        """Whether any posting list exists for ``(length, segment)``.

        Purely a short-circuit — a ``True`` for an ultimately empty
        segment only costs the equivalent-set computation, never
        changes a result.
        """
        ...

    def posting_lists(
        self, length: int, segment_index: int, words: Sequence[str]
    ) -> Mapping[str, Sequence[tuple[int, float]]]:
        """The non-empty posting lists among ``words``.

        Each list is ``[(rank, prob), ...]`` ascending by rank — the
        insertion-sorted order :func:`merge_weighted_postings` requires.
        Words without postings may be omitted or mapped to empty lists;
        either way the merge below ignores them.
        """
        ...


def query_candidates(
    view: PostingView,
    query: UncertainString,
    tau: float,
    *,
    k: int,
    selection: SelectionMode,
    group_mode: GroupMode,
    bound_mode: str,
) -> list[IndexCandidate]:
    """All indexed candidates surviving Lemma 5 + Theorem 2.

    Only lengths within ``k`` of ``|query|`` are probed; per length the
    query's equivalent substring sets are built once per segment and
    merged against the posting lists with top-pointer scans. Candidates
    failing the ``>= m - k`` count or whose bound is ``<= tau`` are
    pruned here.
    """
    out: list[IndexCandidate] = []
    query_length = len(query)
    for length in view.visit_lengths():
        if abs(length - query_length) > k:
            continue
        out.extend(
            query_length_candidates(
                view,
                query,
                length,
                tau,
                k=k,
                selection=selection,
                group_mode=group_mode,
                bound_mode=bound_mode,
            )
        )
    return out


def query_length_candidates(
    view: PostingView,
    query: UncertainString,
    length: int,
    tau: float,
    *,
    k: int,
    selection: SelectionMode,
    group_mode: GroupMode,
    bound_mode: str,
) -> list[IndexCandidate]:
    """The surviving candidates among indexed strings of one length."""
    segments = view.partition_of(length)
    m = len(segments)
    required = m - k
    if required <= 0:
        # Strings shorter than k + 1: the pigeonhole gives no pruning
        # power, so every indexed string of this length is a candidate.
        return [
            IndexCandidate(
                string_id=string_id,
                alphas=(0.0,) * m,
                matched_segments=0,
                required=required,
                upper=1.0,
            )
            for string_id in view.ids_of_length(length)
        ]
    per_segment: list[list[tuple[int, float]]] = []
    survivors_possible = 0
    for segment in segments:
        merged: list[tuple[int, float]] = []
        if view.has_segment(length, segment.index):
            starts = substring_starts(
                segment, len(query), length, k, m, selection
            )
            if starts:
                equivalent = equivalent_substring_set(
                    query, starts, segment.length, group_mode
                )
                lists = view.posting_lists(
                    length, segment.index, list(equivalent)
                )
                weighted = [
                    (weight, lists[word])
                    for word, weight in equivalent.items()
                    if word in lists and lists[word]
                ]
                if weighted:
                    merged = merge_weighted_postings(weighted)
        per_segment.append(merged)
        if merged:
            survivors_possible += 1
    if survivors_possible < required:
        return []
    candidates: list[IndexCandidate] = []
    for string_id, entries in join_sorted_lists(per_segment):
        matched = sum(1 for _, alpha in entries if alpha > 0.0)
        if matched < required:
            continue
        alphas = [0.0] * m
        for segment_offset, alpha in entries:
            alphas[segment_offset] = min(1.0, alpha)
        if bound_mode == "markov":
            upper = markov_tail_bound(alphas, required)
        else:
            upper = tail_probability(alphas, required)
        if upper <= tau:
            continue
        candidates.append(
            IndexCandidate(
                string_id=string_id,
                alphas=tuple(alphas),
                matched_segments=matched,
                required=required,
                upper=upper,
            )
        )
    return candidates
