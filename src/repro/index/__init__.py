"""Inverted segment indexing (Section 4).

Strings are visited in ascending length order; each visited string's
segments are instantiated into per-(length, segment) inverted lists
``L^x_l``. A query string ``R`` probes the lists with its equivalent
substring sets ``q(r, x)``; sorted posting merges produce, per candidate
string id, the segment match probabilities ``alpha_x`` — feeding the
Lemma 5 count check and the Theorem 2 bound without comparing ``R``
against every string in the collection.
"""

from repro.index.merge import merge_weighted_postings, join_sorted_lists
from repro.index.inverted import SegmentInvertedIndex, IndexCandidate
from repro.index.persistence import load_index, save_index

__all__ = [
    "merge_weighted_postings",
    "join_sorted_lists",
    "SegmentInvertedIndex",
    "IndexCandidate",
    "load_index",
    "save_index",
]
