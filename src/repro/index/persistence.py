"""Save/load for segment inverted indexes.

A search service should not rebuild its index on every restart
(instantiating every segment of every string is the expensive part of
index construction). The on-disk format is a single JSON document —
portable, diffable, and forward-checked by a format version.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.index.inverted import SegmentInvertedIndex

#: Bump when the on-disk layout changes incompatibly.
FORMAT_VERSION = 1


def save_index(index: SegmentInvertedIndex, path: str | Path) -> None:
    """Serialize ``index`` (postings and configuration) to ``path``."""
    lists = {
        f"{length}:{segment}": postings
        for (length, segment), postings in index._lists.items()
    }
    document = {
        "format": FORMAT_VERSION,
        "k": index.k,
        "q": index.q,
        "selection": index.selection,
        "group_mode": index.group_mode,
        "bound_mode": index.bound_mode,
        "last_id": index._last_id,
        "ids_by_length": {
            str(length): ids for length, ids in index._ids_by_length.items()
        },
        "lists": lists,
    }
    Path(path).write_text(json.dumps(document), encoding="utf-8")


def load_index(path: str | Path) -> SegmentInvertedIndex:
    """Reconstruct an index saved by :func:`save_index`."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    version = document.get("format")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported index format {version!r} (expected {FORMAT_VERSION})"
        )
    index = SegmentInvertedIndex(
        k=document["k"],
        q=document["q"],
        selection=document["selection"],
        group_mode=document["group_mode"],
        bound_mode=document["bound_mode"],
    )
    entry_count = 0
    for key, postings in document["lists"].items():
        length_text, _, segment_text = key.partition(":")
        lists = index._lists.setdefault(
            (int(length_text), int(segment_text)), {}
        )
        for word, entries in postings.items():
            lists[word] = [(int(i), float(p)) for i, p in entries]
            entry_count += len(entries)
    for length_text, ids in document["ids_by_length"].items():
        length = int(length_text)
        index._ids_by_length[length] = list(ids)
        index._indexed_lengths.add(length)
    index._entry_count = entry_count
    index._last_id = document["last_id"]
    return index
