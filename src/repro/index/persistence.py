"""Save/load for segment inverted indexes.

A search service should not rebuild its index on every restart
(instantiating every segment of every string is the expensive part of
index construction). The on-disk format is a single JSON document —
portable, diffable, and guarded by a magic string plus a format
version. Writes are crash-atomic (tmp file + rename), and any
unreadable, truncated, or mis-headed file surfaces as
:class:`~repro.core.errors.CheckpointCorruptError` naming the offending
path — never as a raw ``JSONDecodeError``/``KeyError`` leaking from the
decoder.

Sharded joins add a second entry point pair:
:func:`save_shard_index` / :func:`load_shard_index` persist a *band's*
index inside one shard of a partitioned run, tagging the document with
a ``shard`` section (join fingerprint, shard coordinates, band index).
A shard then only rebuilds the bands it owns — on resume, a band whose
snapshot exists reloads instead of re-segmenting its strings — and a
snapshot copied in from a different join or decomposition is rejected
with :class:`~repro.core.errors.CheckpointMismatchError` instead of
silently probing the wrong postings.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.errors import CheckpointCorruptError, CheckpointMismatchError
from repro.index.inverted import SegmentInvertedIndex
from repro.util.atomic import atomic_write_text

#: Identifies the file type independently of its version.
INDEX_MAGIC = "repro-segment-index"
#: Bump when the on-disk layout changes incompatibly.
FORMAT_VERSION = 2


def _index_document(index: SegmentInvertedIndex) -> dict[str, Any]:
    """The JSON document form of ``index`` (postings + configuration)."""
    lists = {
        f"{length}:{segment}": postings
        for (length, segment), postings in index._lists.items()
    }
    return {
        "magic": INDEX_MAGIC,
        "format": FORMAT_VERSION,
        "k": index.k,
        "q": index.q,
        "selection": index.selection,
        "group_mode": index.group_mode,
        "bound_mode": index.bound_mode,
        "last_id": index._last_id,
        "ids_by_length": {
            str(length): ids for length, ids in index._ids_by_length.items()
        },
        "lists": lists,
    }


def _write_document(document: dict[str, Any], path: str | Path) -> None:
    """Atomically write a JSON document (tmp file + rename).

    An index snapshot is built once and reused by every later run, so a
    silently corrupt file is worse here than a slow save: sync before
    the rename to survive power loss, not just process crashes.
    """
    atomic_write_text(path, json.dumps(document), fsync=True)


def _read_document(path: str | Path) -> dict[str, Any]:
    """Read back an index document, validating magic and version."""
    source = Path(path)
    try:
        text = source.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise
    except UnicodeDecodeError as exc:
        raise CheckpointCorruptError(
            str(source), f"not a UTF-8 index file: {exc}"
        ) from exc
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointCorruptError(
            str(source), f"invalid or truncated JSON: {exc}"
        ) from exc
    if not isinstance(document, dict):
        raise CheckpointCorruptError(
            str(source), "index document is not a JSON object"
        )
    magic = document.get("magic")
    if magic != INDEX_MAGIC:
        raise CheckpointCorruptError(
            str(source),
            f"bad magic {magic!r} (expected {INDEX_MAGIC!r}); "
            "not a segment-index file",
        )
    version = document.get("format")
    if version != FORMAT_VERSION:
        raise CheckpointCorruptError(
            str(source),
            f"unsupported index format {version!r} "
            f"(expected {FORMAT_VERSION})",
        )
    return document


def _index_from_document(
    document: dict[str, Any], path: str | Path
) -> SegmentInvertedIndex:
    """Reconstruct an index from its (already header-checked) document."""
    try:
        index = SegmentInvertedIndex(
            k=document["k"],
            q=document["q"],
            selection=document["selection"],
            group_mode=document["group_mode"],
            bound_mode=document["bound_mode"],
        )
        entry_count = 0
        for key, postings in document["lists"].items():
            length_text, _, segment_text = key.partition(":")
            lists = index._lists.setdefault(
                (int(length_text), int(segment_text)), {}
            )
            for word, entries in postings.items():
                lists[word] = [(int(i), float(p)) for i, p in entries]
                entry_count += len(entries)
        for length_text, ids in document["ids_by_length"].items():
            length = int(length_text)
            index._ids_by_length[length] = list(ids)
            index._indexed_lengths.add(length)
        index._entry_count = entry_count
        index._last_id = document["last_id"]
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise CheckpointCorruptError(
            str(path), f"malformed index document: {exc!r}"
        ) from exc
    return index


def save_index(index: SegmentInvertedIndex, path: str | Path) -> None:
    """Serialize ``index`` (postings and configuration) to ``path``.

    The write goes through a tmp file and an atomic rename, so a crash
    mid-save never leaves a half-written index behind.
    """
    _write_document(_index_document(index), path)


def load_index(path: str | Path) -> SegmentInvertedIndex:
    """Reconstruct an index saved by :func:`save_index`.

    Raises :class:`CheckpointCorruptError` (carrying ``path``) for
    anything that is not a well-formed current-version index document:
    invalid JSON, truncated files, wrong magic, unsupported versions,
    or structurally malformed postings. A missing file still raises
    ``FileNotFoundError``. Extra sections (e.g. the ``shard`` tag of a
    per-shard snapshot) are ignored.
    """
    document = _read_document(path)
    return _index_from_document(document, path)


def peek_index_meta(path: str | Path) -> dict[str, Any]:
    """Header fields of a persisted index, without decoding postings.

    The serve layer's pre-swap validation: a reload candidate snapshot
    is checked against the serving configuration (``k``/``q``/selection
    knobs) and collection size (``last_id``) *before* any postings are
    reconstructed, so pointing a reload at the wrong snapshot fails
    fast. Raises the same :class:`CheckpointCorruptError` taxonomy as
    :func:`load_index` for unreadable or mis-headed files.
    """
    document = _read_document(path)
    meta: dict[str, Any] = {}
    try:
        for field in ("k", "q", "selection", "group_mode", "bound_mode", "last_id"):
            meta[field] = document[field]
    except KeyError as exc:
        raise CheckpointCorruptError(
            str(path), f"index document is missing header field {exc}"
        ) from exc
    return meta


def save_shard_index(
    index: SegmentInvertedIndex,
    path: str | Path,
    *,
    fingerprint: str,
    shard_index: int,
    shard_count: int,
    band: int,
) -> None:
    """Persist one band's index inside a shard of a partitioned run.

    Identical to :func:`save_index` plus a ``shard`` section binding
    the snapshot to its join fingerprint, shard coordinates, and band —
    what :func:`load_shard_index` validates before reuse.
    """
    document = _index_document(index)
    document["shard"] = {
        "fingerprint": fingerprint,
        "index": shard_index,
        "count": shard_count,
        "band": band,
    }
    _write_document(document, path)


def load_shard_index(
    path: str | Path,
    *,
    fingerprint: str,
    shard_index: int,
    shard_count: int,
    band: int,
) -> SegmentInvertedIndex:
    """Reload a band index snapshot saved by :func:`save_shard_index`.

    Beyond :func:`load_index`'s corruption checks, the embedded
    ``shard`` section must match every expected coordinate; a snapshot
    from a different join, decomposition, or band raises
    :class:`CheckpointMismatchError` — a shard must never probe
    postings it did not build for exactly this plan.
    """
    document = _read_document(path)
    tag = document.get("shard")
    if not isinstance(tag, dict):
        raise CheckpointCorruptError(
            str(path), "missing shard section; not a per-shard index snapshot"
        )
    expected = {
        "fingerprint": fingerprint,
        "index": shard_index,
        "count": shard_count,
        "band": band,
    }
    if {key: tag.get(key) for key in expected} != expected:
        raise CheckpointMismatchError(
            str(path),
            "index snapshot belongs to a different join or shard plan "
            f"(got shard section {tag!r}); refusing to reuse it",
        )
    return _index_from_document(document, path)
