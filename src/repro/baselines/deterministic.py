"""Pass-Join for deterministic strings (Li et al. [14]).

The deterministic ancestor of the paper's indexing scheme: partition each
string into ``m`` segments, index segments per (length, position), probe
with position-aware selected substrings, verify candidates with the
banded edit-distance kernel. Used to quantify the probabilistic overhead
factor discussed at the end of Section 4.
"""

from __future__ import annotations

from typing import Sequence

from repro.distance.edit import edit_distance_banded
from repro.partition.even import partition_for
from repro.partition.selection import SelectionMode, substring_starts


def deterministic_pass_join(
    strings: Sequence[str],
    k: int,
    q: int = 3,
    selection: SelectionMode = "shift",
) -> list[tuple[int, int, int]]:
    """All ``(i, j, ed)`` with ``i < j`` and ``ed(s_i, s_j) <= k``."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    order = sorted(range(len(strings)), key=lambda i: (len(strings[i]), i))
    # (length, segment index) -> segment text -> list of ranks
    index: dict[tuple[int, int], dict[str, list[int]]] = {}
    partitions: dict[int, list] = {}
    rank_to_id: dict[int, int] = {}
    results: list[tuple[int, int, int]] = []
    for rank, string_id in enumerate(order):
        text = strings[string_id]
        length = len(text)
        candidates: set[int] = set()
        for other_length in range(max(1, length - k), length + 1):
            segments = partitions.get(other_length)
            if segments is None:
                segments = partition_for(other_length, q, k)
                partitions[other_length] = segments
            m = len(segments)
            for segment in segments:
                lists = index.get((other_length, segment.index))
                if not lists:
                    continue
                for start in substring_starts(
                    segment, length, other_length, k, m, selection
                ):
                    word = text[start : start + segment.length]
                    ranks = lists.get(word)
                    if ranks:
                        candidates.update(ranks)
        for other_rank in sorted(candidates):
            other_id = rank_to_id[other_rank]
            distance = edit_distance_banded(text, strings[other_id], k)
            if distance <= k:
                left, right = sorted((string_id, other_id))
                results.append((left, right, distance))
        segments = partitions.get(length)
        if segments is None:
            segments = partition_for(length, q, k)
            partitions[length] = segments
        for segment in segments:
            lists = index.setdefault((length, segment.index), {})
            word = text[segment.start : segment.end]
            lists.setdefault(word, []).append(rank)
        rank_to_id[rank] = string_id
    results.sort()
    return results
