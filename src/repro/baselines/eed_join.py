"""Expected-edit-distance join (Jestes et al. [10]) — the Section 7.9 rival.

Reports all pairs with ``eed(R, S) <= k_eed``. Pruning uses two valid
lower bounds on EED:

* ``|len(R) - len(S)|`` — every joint world pays at least the length gap;
* ``(E[pD] + E[nD]) / 2`` — per world ``fd = max(pD, nD) >= (pD + nD)/2``
  and ``fd <= ed``, so the expectation is a lower bound on EED (this is
  where [10]'s frequency-distance filtering reappears).

Surviving pairs are evaluated exactly by joint-world enumeration (the
naive verification the paper contrasts with in Section 7.9), with a
Monte-Carlo fallback above a world-count budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.distance.eed import expected_edit_distance, sampled_expected_edit_distance
from repro.filters.frequency import FrequencyProfile, expected_positive_negative
from repro.uncertain.string import UncertainString
from repro.util.rng import ensure_rng


@dataclass
class EedJoinOutcome:
    """Pairs plus the work counters compared in Section 7.9."""

    pairs: list[tuple[int, int, float]]
    candidate_evaluations: int = 0
    exact_evaluations: int = 0
    sampled_evaluations: int = 0
    pruned_by_length: int = 0
    pruned_by_frequency: int = 0
    #: world pairs enumerated during exact EED evaluation.
    world_pairs_compared: int = 0

    def id_pairs(self) -> set[tuple[int, int]]:
        return {(left, right) for left, right, _ in self.pairs}


def eed_join(
    collection: Sequence[UncertainString],
    k_eed: float,
    world_pair_budget: int = 20_000,
    samples: int = 128,
    rng: random.Random | int | None = 0,
) -> EedJoinOutcome:
    """All pairs with expected edit distance at most ``k_eed``."""
    if k_eed < 0:
        raise ValueError(f"k_eed must be non-negative, got {k_eed}")
    generator = ensure_rng(rng)
    profiles = [FrequencyProfile(string) for string in collection]
    outcome = EedJoinOutcome(pairs=[])
    for i in range(len(collection)):
        for j in range(i + 1, len(collection)):
            left, right = collection[i], collection[j]
            if abs(len(left) - len(right)) > k_eed:
                outcome.pruned_by_length += 1
                continue
            expected_pd, expected_nd = expected_positive_negative(
                profiles[i], profiles[j]
            )
            if (expected_pd + expected_nd) / 2.0 > k_eed:
                outcome.pruned_by_frequency += 1
                continue
            outcome.candidate_evaluations += 1
            world_pairs = left.world_count() * right.world_count()
            if world_pairs <= world_pair_budget:
                outcome.exact_evaluations += 1
                outcome.world_pairs_compared += world_pairs
                value = expected_edit_distance(left, right, pair_limit=None)
            else:
                outcome.sampled_evaluations += 1
                value = sampled_expected_edit_distance(
                    left, right, samples=samples, rng=generator
                )
            if value <= k_eed:
                outcome.pairs.append((i, j, value))
    outcome.pairs.sort()
    return outcome
