"""Brute-force (k, τ) join: the semantic ground truth.

Enumerates joint possible worlds per pair (with only the length filter as
a shortcut). Exponential — reserved for tests and small validation runs.
"""

from __future__ import annotations

from typing import Sequence

from repro.distance.probability import edit_similarity_probability
from repro.uncertain.string import UncertainString


def brute_force_join(
    collection: Sequence[UncertainString],
    k: int,
    tau: float,
    pair_limit: int | None = 2_000_000,
) -> list[tuple[int, int, float]]:
    """All ``(i, j, probability)`` with ``i < j`` and probability > τ."""
    results: list[tuple[int, int, float]] = []
    for i in range(len(collection)):
        for j in range(i + 1, len(collection)):
            if abs(len(collection[i]) - len(collection[j])) > k:
                continue
            probability = edit_similarity_probability(
                collection[i], collection[j], k, pair_limit=pair_limit
            )
            if probability > tau:
                results.append((i, j, probability))
    return results


def brute_force_search(
    collection: Sequence[UncertainString],
    query: UncertainString,
    k: int,
    tau: float,
    pair_limit: int | None = 2_000_000,
) -> list[tuple[int, float]]:
    """All ``(i, probability)`` with ``Pr(ed(query, S_i) <= k) > tau``."""
    results: list[tuple[int, float]] = []
    for i, string in enumerate(collection):
        if abs(len(string) - len(query)) > k:
            continue
        probability = edit_similarity_probability(
            query, string, k, pair_limit=pair_limit
        )
        if probability > tau:
            results.append((i, probability))
    return results
