"""Baselines and oracles.

* :func:`brute_force_join` — possible-world-enumeration ground truth for
  (k, τ)-matching; every join variant is tested against it.
* :func:`eed_join` — the expected-edit-distance join of Jestes et al. [10]
  (Section 7.9 comparison).
* :func:`deterministic_pass_join` — Pass-Join over deterministic strings,
  the yardstick for the "competitive with the deterministic counterpart"
  discussion at the end of Section 4.
"""

from repro.baselines.brute import brute_force_join, brute_force_search
from repro.baselines.eed_join import EedJoinOutcome, eed_join
from repro.baselines.deterministic import deterministic_pass_join

__all__ = [
    "brute_force_join",
    "brute_force_search",
    "EedJoinOutcome",
    "eed_join",
    "deterministic_pass_join",
]
