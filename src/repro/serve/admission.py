"""Admission control: bounded concurrency, explicit shedding.

A server that accepts every connection and queues unboundedly does not
fail — it *wedges*: latency grows without limit, memory grows with the
queue, and every client eventually times out with no information. The
:class:`AdmissionController` makes overload an explicit, typed outcome
instead:

* at most ``max_in_flight`` requests execute concurrently (a
  semaphore);
* at most ``queue_limit`` further requests *wait* for a slot, and only
  for ``queue_timeout`` seconds — both bounds small, both deliberate;
* anything beyond that is shed immediately with
  :class:`~repro.core.errors.ServiceOverloadedError`, which the HTTP
  layer turns into ``503`` + ``Retry-After``. A shed request never
  started, so retrying it is lossless.

The controller also owns the drain primitive of crash-only shutdown:
:meth:`drained` blocks until the in-flight count reaches zero or a
drain deadline expires — the caller then aborts rather than waiting
forever for a straggler.
"""

from __future__ import annotations

import threading

from repro.core.deadline import Deadline
from repro.core.errors import ConfigurationError, ServiceOverloadedError

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded-concurrency gate in front of request execution.

    Thread-safe; one instance fronts all handler threads of a server.
    Use as a context manager per request::

        with admission.admit():   # may raise ServiceOverloadedError
            ... handle the request ...

    Parameters
    ----------
    max_in_flight:
        Concurrent requests allowed past the gate.
    queue_limit:
        Requests allowed to *wait* for a slot at any moment; arrivals
        beyond it are shed without waiting at all (so the wait line
        itself cannot grow unboundedly).
    queue_timeout:
        Longest a queued request waits for a slot before being shed.
    retry_after:
        The hint (seconds) attached to every shed, surfaced to clients
        as the ``Retry-After`` header.
    """

    def __init__(
        self,
        max_in_flight: int = 8,
        queue_limit: int = 16,
        queue_timeout: float = 0.25,
        retry_after: float = 0.5,
    ) -> None:
        if max_in_flight < 1:
            raise ConfigurationError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        if queue_limit < 0:
            raise ConfigurationError(
                f"queue_limit must be >= 0, got {queue_limit}"
            )
        if queue_timeout < 0:
            raise ConfigurationError(
                f"queue_timeout must be >= 0, got {queue_timeout}"
            )
        if retry_after <= 0:
            raise ConfigurationError(
                f"retry_after must be positive, got {retry_after}"
            )
        self.max_in_flight = max_in_flight
        self.queue_limit = queue_limit
        self.queue_timeout = queue_timeout
        self.retry_after = retry_after
        self._slots = threading.Semaphore(max_in_flight)
        # One condition guards both counters and doubles as the drain
        # signal: every slot release notifies waiters in ``drained``.
        self._state = threading.Condition()
        self._in_flight = 0
        self._waiting = 0
        self._shed = 0

    @property
    def in_flight(self) -> int:
        """Requests currently executing (snapshot)."""
        with self._state:
            return self._in_flight

    @property
    def waiting(self) -> int:
        """Requests currently waiting for a slot (snapshot)."""
        with self._state:
            return self._waiting

    @property
    def shed(self) -> int:
        """Total requests shed since construction (snapshot)."""
        with self._state:
            return self._shed

    def admit(self) -> "_Admission":
        """A context manager holding one execution slot.

        Entering acquires a slot (waiting at most ``queue_timeout``
        behind at most ``queue_limit`` other waiters) or raises
        :class:`ServiceOverloadedError`; exiting releases the slot.
        """
        return _Admission(self)

    def _acquire(self) -> None:
        # Fast path: a free slot admits immediately, without joining
        # the wait line — so ``queue_limit=0`` means "no waiting", not
        # "no admissions".
        if self._slots.acquire(blocking=False):
            with self._state:
                self._in_flight += 1
            return
        with self._state:
            if self._waiting >= self.queue_limit:
                self._shed += 1
                raise ServiceOverloadedError(
                    self.retry_after,
                    f"wait line full ({self.queue_limit} already queued "
                    f"behind {self.max_in_flight} in flight)",
                )
            self._waiting += 1
        try:
            acquired = self._slots.acquire(timeout=self.queue_timeout)
        finally:
            with self._state:
                self._waiting -= 1
        if not acquired:
            with self._state:
                self._shed += 1
            raise ServiceOverloadedError(
                self.retry_after,
                f"no execution slot freed within {self.queue_timeout:g}s "
                f"({self.max_in_flight} in flight)",
            )
        with self._state:
            self._in_flight += 1

    def _release(self) -> None:
        self._slots.release()
        with self._state:
            self._in_flight -= 1
            self._state.notify_all()

    def drained(self, deadline: Deadline) -> bool:
        """Wait for every admitted request to finish, bounded by ``deadline``.

        Returns ``True`` once the in-flight count reaches zero, or
        ``False`` when the deadline expires first — the crash-only
        shutdown path then abandons the stragglers instead of hanging.
        New admissions during the wait are the caller's problem: stop
        accepting first, then drain.
        """
        with self._state:
            while self._in_flight > 0:
                remaining = deadline.remaining()
                if remaining <= 0:
                    return False
                self._state.wait(
                    timeout=None if remaining == float("inf") else remaining
                )
            return True


class _Admission:
    """The per-request slot handle (see :meth:`AdmissionController.admit`)."""

    __slots__ = ("_controller",)

    def __init__(self, controller: AdmissionController) -> None:
        self._controller = controller

    def __enter__(self) -> "_Admission":
        self._controller._acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._controller._release()
