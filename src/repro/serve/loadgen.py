"""Closed-loop load harness for the serve layer.

Spins up an in-process :class:`~repro.serve.http.ServerRunner`, hammers
it with concurrent clients over real sockets, and reports latency
percentiles alongside the robustness counters — how many requests were
shed, degraded, deadline-expired, or dropped. The same measurement
backs three consumers:

* ``benchmarks/load_serve.py`` — the standalone CLI harness,
* :func:`measure_serve` — the ``serve`` section of the benchmark
  suite (``repro-join bench``), gated against ``BENCH_8.json`` in CI,
* the serve tests, which reuse :func:`run_load` for saturation
  scenarios.

Outcome classification is exhaustive on purpose: every request ends in
exactly one of ``completed`` / ``shed`` / ``deadline_exceeded`` /
``dropped`` / ``errors`` — if the counts don't add up to ``requests``,
something hung, and that is precisely the bug this layer exists to
make impossible.
"""

from __future__ import annotations

import http.client
import json
import math
import threading
import time
from typing import Any, Sequence

from repro.core.config import JoinConfig
from repro.serve.http import ServerRunner
from repro.serve.service import JoinService, ServeOptions
from repro.uncertain.parser import format_uncertain
from repro.uncertain.string import UncertainString

__all__ = ["measure_serve", "percentile", "run_load"]


def percentile(latencies: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0 < q <= 1) by the nearest-rank method."""
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class _ClientStats:
    """Shared outcome tally across client threads."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.latencies_ms: list[float] = []
        self.completed = 0
        self.degraded = 0
        self.shed = 0
        self.deadline_exceeded = 0
        self.dropped = 0
        self.errors = 0

    def account(self, status: "int | None", document: "dict | None", ms: float) -> None:
        with self.lock:
            if status is None:
                self.dropped += 1
                return
            self.latencies_ms.append(ms)
            if status == 200:
                self.completed += 1
                if document is not None and document.get("degraded"):
                    self.degraded += 1
            elif status == 503:
                self.shed += 1
            elif status == 504:
                self.deadline_exceeded += 1
            else:
                self.errors += 1


def _post(
    connection: http.client.HTTPConnection, path: str, payload: dict
) -> tuple["int | None", "dict | None"]:
    """One request; ``(None, None)`` for a dropped/garbled exchange."""
    body = json.dumps(payload)
    try:
        connection.request(
            "POST", path, body=body, headers={"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        raw = response.read()
        try:
            document = json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError):
            # A corrupt-resp fault: the transport worked, the payload
            # is garbage. Count it with the dropped exchanges — the
            # client observed an explicit, immediate failure.
            return None, None
        return response.status, document
    except (http.client.HTTPException, ConnectionError, OSError):
        connection.close()
        return None, None


def run_load(
    service: JoinService,
    queries: Sequence[str],
    clients: int = 4,
    requests: int = 40,
    topk_every: int = 5,
    topk_count: int = 5,
    client_timeout: float = 60.0,
) -> dict[str, Any]:
    """Drive ``requests`` total requests through ``clients`` threads.

    Request ``i`` (arrival-ordered via a shared counter, so fault plans
    target deterministically *issued* request indices even though
    completion order races) queries ``queries[i % len(queries)]``;
    every ``topk_every``-th request is a top-k instead of a search.
    Returns the measurement document (latency percentiles over every
    request that got an HTTP response, plus the exhaustive outcome
    tally and the server's own ``serve.*`` counters).
    """
    runner = ServerRunner(service).start()
    host, port = runner.address
    tally = _ClientStats()
    next_request = threading.Lock()
    issued = [0]

    def take_index() -> "int | None":
        with next_request:
            if issued[0] >= requests:
                return None
            index = issued[0]
            issued[0] += 1
            return index

    def client_loop() -> None:
        # The client must outlive the server's request deadline, or a
        # server-side 504 races the socket timeout and miscounts as a
        # drop instead of a deadline_exceeded.
        connection = http.client.HTTPConnection(host, port, timeout=client_timeout)
        try:
            while True:
                index = take_index()
                if index is None:
                    return
                query = queries[index % len(queries)]
                if topk_every and index % topk_every == topk_every - 1:
                    path, payload = "/topk", {"query": query, "count": topk_count}
                else:
                    path, payload = "/search", {"query": query}
                start = time.perf_counter()
                status, document = _post(connection, path, payload)
                ms = (time.perf_counter() - start) * 1e3
                tally.account(status, document, ms)
        finally:
            connection.close()

    wall_start = time.perf_counter()
    threads = [
        threading.Thread(target=client_loop, name=f"loadgen-{i}", daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    drained = runner.shutdown()

    latencies = tally.latencies_ms
    answered = (
        tally.completed + tally.shed + tally.deadline_exceeded + tally.errors
    )
    return {
        "clients": clients,
        "requests": requests,
        "completed": tally.completed,
        "degraded": tally.degraded,
        "shed": tally.shed,
        "deadline_exceeded": tally.deadline_exceeded,
        "dropped": tally.dropped,
        "errors": tally.errors,
        "answered": answered,
        "unaccounted": requests - answered - tally.dropped,
        "p50_ms": percentile(latencies, 0.50),
        "p95_ms": percentile(latencies, 0.95),
        "p99_ms": percentile(latencies, 0.99),
        "wall_s": wall,
        "qps": answered / wall if wall > 0 else 0.0,
        "drained": drained,
        "counters": service.stats.serve_counts(),
    }


def _bench_service(size: int, options: ServeOptions) -> tuple[JoinService, list[str]]:
    """Deterministic dblp-like serve workload (collection + query texts)."""
    from repro.datasets import dblp_like_collection

    # max_uncertain_positions=4 keeps exact verification tractable for
    # the top-k requests (the heap starts at tau=0, so early candidates
    # are verified with no CDF pruning; world counts must stay small).
    collection: list[UncertainString] = dblp_like_collection(
        size, theta=0.2, rng=1234, max_uncertain_positions=4
    )
    config = JoinConfig.for_algorithm("QFCT", k=2, tau=0.1, q=3)
    service = JoinService(collection, config, options)
    # precision=12: the parser's probability-sum tolerance is 1e-6, so
    # the default 6-significant-digit rendering can fail to re-parse.
    queries = [
        format_uncertain(s, precision=12)
        for s in collection[: max(8, size // 8)]
    ]
    return service, queries


def measure_serve(quick: bool = False) -> dict[str, Any]:
    """The benchmark suite's ``serve`` section (one mixed workload).

    Degradation and faults are off: the gate tracks the *exact* path's
    latency (p95) and would be blinded by deliberately shed or sampled
    requests; the robustness behaviours have their own deterministic
    tests and the smoke harness. Admission limits are sized so the
    workload never sheds on a healthy machine — a ``shed > 0`` here is
    itself a red flag the gate surfaces via the counters.
    """
    size = 60 if quick else 120
    options = ServeOptions(
        max_in_flight=8,
        queue_limit=32,
        queue_timeout=5.0,
        request_timeout=30.0,
        degrade_margin=0.0,
    )
    service, queries = _bench_service(size, options)
    # Warm pass (direct calls, no HTTP): populate the CDF memo tables
    # and per-string profiles so the timed percentiles measure the
    # steady-state service, mirroring measure_kernel's warm call.
    for query in queries:
        service.search(query)
    service.topk(queries[0], 5)
    document = run_load(
        service,
        queries,
        clients=4,
        requests=24 if quick else 60,
        topk_every=5,
    )
    document["size"] = size
    return document
