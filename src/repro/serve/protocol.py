"""The serve layer's JSON wire protocol.

Requests are JSON objects; responses are JSON objects with
``sort_keys`` serialization so a response is a deterministic byte
string — the byte-identity tests compare served answers against the
offline drivers through this encoding.

Every failure is a *typed* error document, never a hang and never a
bare traceback::

    {"error": {"type": "overloaded", "detail": "...", "retry_after": 0.5}}

``type`` comes from a closed vocabulary (:data:`ERROR_STATUS` maps each
to its HTTP status), so clients can switch on it. A
``deadline_exceeded`` error additionally carries the partial results
accumulated before the budget ran out, with ``"partial": true``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.errors import ConfigurationError
from repro.core.results import SearchMatch

__all__ = [
    "ERROR_STATUS",
    "encode_document",
    "error_document",
    "match_document",
    "parse_request",
]

#: Error ``type`` → HTTP status. The vocabulary is closed: the handler
#: only ever emits these, and tests assert against it.
ERROR_STATUS: dict[str, int] = {
    "bad_request": 400,
    "not_found": 404,
    "overloaded": 503,
    "draining": 503,
    "deadline_exceeded": 504,
    "reload_failed": 500,
    "internal_error": 500,
}


def encode_document(document: dict[str, Any]) -> bytes:
    """The canonical wire encoding (sorted keys, compact separators).

    Deterministic by construction: two structurally equal documents
    always encode to the same bytes, which is what the
    byte-identity-under-faults tests compare.
    """
    return json.dumps(
        document, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def error_document(
    error_type: str, detail: str, **extra: Any
) -> dict[str, Any]:
    """A typed error response body.

    ``error_type`` must come from :data:`ERROR_STATUS`; ``extra`` fields
    (``retry_after``, partial ``matches``, …) merge into the ``error``
    object.
    """
    if error_type not in ERROR_STATUS:
        raise ValueError(f"unknown error type {error_type!r}")
    payload: dict[str, Any] = {"type": error_type, "detail": detail}
    payload.update(extra)
    return {"error": payload}


def match_document(match: SearchMatch) -> dict[str, Any]:
    """One search hit as its wire form (stable field set)."""
    return {"id": match.string_id, "probability": match.probability}


def _require_object(document: Any) -> dict[str, Any]:
    if not isinstance(document, dict):
        raise ConfigurationError(
            f"request body must be a JSON object, got {type(document).__name__}"
        )
    return document


def _float_field(
    document: dict[str, Any], name: str, default: "float | None"
) -> "float | None":
    value = document.get(name, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"request field {name!r} must be a number, got {value!r}"
        )
    return float(value)


def _int_field(
    document: dict[str, Any], name: str, default: "int | None"
) -> "int | None":
    value = document.get(name, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            f"request field {name!r} must be an integer, got {value!r}"
        )
    return value


def _string_field(document: dict[str, Any], name: str) -> str:
    value = document.get(name)
    if not isinstance(value, str) or not value:
        raise ConfigurationError(
            f"request field {name!r} must be a non-empty string"
        )
    return value


_KNOWN_FIELDS = {
    "search": {"query", "tau", "k", "timeout"},
    "topk": {"query", "count", "k", "timeout"},
    "mini-join": {"strings", "tau", "k", "timeout"},
}


def parse_request(endpoint: str, body: bytes) -> dict[str, Any]:
    """Decode and validate a request body for ``endpoint``.

    Returns a normalized field dict (``query``/``strings`` stay textual
    — the service parses uncertain-string notation so syntax errors are
    reported per field). Raises
    :class:`~repro.core.errors.ConfigurationError` for malformed JSON,
    non-object bodies, unknown fields, and ill-typed values; the HTTP
    layer maps that to a ``bad_request`` 400.
    """
    try:
        decoded = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"request body is not valid JSON: {exc}") from exc
    document = _require_object(decoded)
    known = _KNOWN_FIELDS[endpoint]
    unknown = sorted(set(document) - known)
    if unknown:
        raise ConfigurationError(
            f"unknown request field(s) {unknown} for {endpoint!r}; "
            f"expected a subset of {sorted(known)}"
        )
    fields: dict[str, Any] = {
        "timeout": _float_field(document, "timeout", None),
        "k": _int_field(document, "k", None),
    }
    if endpoint in ("search", "mini-join"):
        fields["tau"] = _float_field(document, "tau", None)
    if endpoint in ("search", "topk"):
        fields["query"] = _string_field(document, "query")
    if endpoint == "topk":
        count = _int_field(document, "count", None)
        if count is None or count <= 0:
            raise ConfigurationError(
                f"request field 'count' must be a positive integer, got {count!r}"
            )
        fields["count"] = count
    if endpoint == "mini-join":
        strings = document.get("strings")
        if (
            not isinstance(strings, list)
            or not strings
            or not all(isinstance(s, str) and s for s in strings)
        ):
            raise ConfigurationError(
                "request field 'strings' must be a non-empty list of "
                "non-empty strings"
            )
        fields["strings"] = list(strings)
    if fields["timeout"] is not None and fields["timeout"] <= 0:
        raise ConfigurationError(
            f"request field 'timeout' must be positive, got {fields['timeout']}"
        )
    if fields["k"] is not None and fields["k"] < 0:
        raise ConfigurationError(
            f"request field 'k' must be non-negative, got {fields['k']}"
        )
    return fields
