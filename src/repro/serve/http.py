"""HTTP transport for :class:`~repro.serve.service.JoinService`.

Stdlib-only (``http.server.ThreadingHTTPServer``): one daemon thread
per connection, every request passing admission control before any
work starts. Routes::

    POST /search        {"query": "...", "tau"?: t, "k"?: k, "timeout"?: s}
    POST /topk          {"query": "...", "count": n, "k"?, "timeout"?}
    POST /mini-join     {"strings": [...], "tau"?, "k"?, "timeout"?}
    POST /admin/reload  {"collection"?: path, "index"?: path, "store"?: path}
    GET  /healthz       liveness (always 200 while the process serves)
    GET  /readyz        readiness (503 once draining)
    GET  /stats         counters + serving-state snapshot

Failure contract: every response is a typed JSON document with the
status from :data:`~repro.serve.protocol.ERROR_STATUS` — overload is
``503`` with ``Retry-After``, deadline expiry is ``504`` carrying
partial results, an in-handler crash is a typed ``500`` (the thread
dies, the server does not). The injected request-path faults
(``slow@``/``drop@``/``corrupt-resp@``/``crash@``) exercise exactly
those paths deterministically by request arrival index.

Shutdown is crash-only (:meth:`ServerRunner.shutdown`): stop
accepting, flip ``/readyz`` to draining, wait for in-flight requests
up to the drain deadline, then abandon stragglers and close — a
wedged request can delay shutdown by at most the drain budget, never
block it.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from repro.core.deadline import Deadline
from repro.core.errors import ConfigurationError, ServiceOverloadedError
from repro.serve.admission import AdmissionController
from repro.serve.protocol import (
    ERROR_STATUS,
    encode_document,
    error_document,
    parse_request,
)
from repro.serve.service import JoinService
from repro.util.faults import FaultPlan, FaultSpec

__all__ = ["ServeHTTPServer", "ServerRunner"]

#: Largest accepted request body; anything bigger is a typed 400, not
#: an attempt to buffer an unbounded payload.
MAX_BODY_BYTES = 4 * 1024 * 1024


class ServeHTTPServer(ThreadingHTTPServer):
    """The threaded server binding a :class:`JoinService` to a port."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: JoinService) -> None:
        super().__init__(address, _Handler)
        self.service = service
        options = service.options
        self.admission = AdmissionController(
            max_in_flight=options.max_in_flight,
            queue_limit=options.queue_limit,
            queue_timeout=options.queue_timeout,
            retry_after=options.retry_after,
        )
        self.fault_plan = FaultPlan.from_spec(options.fault_spec)
        self._request_counter = 0
        self._counter_lock = threading.Lock()

    def next_request_index(self) -> int:
        """0-based arrival order — the fault plan's request coordinate."""
        with self._counter_lock:
            index = self._request_counter
            self._request_counter += 1
            return index


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    #: Socket read timeout: a client that stalls mid-body ties up its
    #: handler thread for at most this long, not forever.
    timeout = 30.0
    server: ServeHTTPServer  # narrowed for the route methods

    # Quiet by default: per-request access logging from dozens of
    # threads would interleave garbage into benchmark/CI output.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    # -- routing -------------------------------------------------------

    def do_GET(self) -> None:
        service = self.server.service
        if self.path == "/healthz":
            self._send(200, {"status": "alive"})
        elif self.path == "/readyz":
            if service.draining:
                self._send(
                    503, error_document("draining", "server is shutting down")
                )
            else:
                self._send(
                    200,
                    {
                        "status": "ready",
                        "strings": len(service),
                        "generation": service.generation,
                    },
                )
        elif self.path == "/stats":
            document = service.status_document()
            document["admission"] = {
                "in_flight": self.server.admission.in_flight,
                "waiting": self.server.admission.waiting,
                "shed": self.server.admission.shed,
            }
            self._send(200, document)
        else:
            self._send(
                404, error_document("not_found", f"no route {self.path!r}")
            )

    def do_POST(self) -> None:
        service = self.server.service
        request_index = self.server.next_request_index()
        fault = self.server.fault_plan.request_fault(request_index)
        if fault is not None and fault.kind == "drop":
            # The injected connection drop: no status line, no body —
            # the client sees a clean RemoteDisconnected, which is an
            # *explicit* failure at its end, never a hang at ours.
            service.stats.record("serve", "fault_drop")
            self.close_connection = True
            return
        try:
            body = self._read_body()
        except ConfigurationError as exc:
            self._send(400, error_document("bad_request", str(exc)))
            return
        if self.path == "/admin/reload":
            self._handle_reload(body)
            return
        endpoint = self.path.lstrip("/")
        if endpoint not in ("search", "topk", "mini-join"):
            self._send(
                404, error_document("not_found", f"no route {self.path!r}")
            )
            return
        try:
            with self.server.admission.admit():
                self._run_request(endpoint, body, fault)
        except ServiceOverloadedError as exc:
            service.stats.record("serve", "shed")
            self._send(
                503,
                error_document(
                    "overloaded", exc.detail, retry_after=exc.retry_after
                ),
                extra_headers=(("Retry-After", f"{exc.retry_after:g}"),),
            )

    # -- request execution --------------------------------------------

    def _run_request(
        self, endpoint: str, body: bytes, fault: "FaultSpec | None"
    ) -> None:
        service = self.server.service
        corrupt_response = fault is not None and fault.kind == "corrupt-resp"
        try:
            if fault is not None and fault.kind == "slow":
                # Stall while admitted: the request's own deadline (and
                # the load around it) keeps running, which is the point.
                service.stats.record("serve", "fault_slow")
                time.sleep(fault.seconds)
            if fault is not None and fault.kind == "crash":
                service.stats.record("serve", "fault_crash")
                raise RuntimeError(
                    f"injected crash: request {fault.band}"
                )
            fields = parse_request(endpoint, body)
            document = self._dispatch(endpoint, fields)
        except ConfigurationError as exc:
            self._send(400, error_document("bad_request", str(exc)))
            return
        except Exception as exc:  # noqa: BLE001 - the typed-500 backstop
            service.stats.record("serve", "internal_error")
            self._send(
                500,
                error_document(
                    "internal_error", f"{type(exc).__name__}: {exc}"
                ),
            )
            return
        status = _status_of(document)
        if corrupt_response:
            service.stats.record("serve", "fault_corrupt_resp")
        self._send(status, document, corrupt=corrupt_response)

    def _dispatch(self, endpoint: str, fields: dict[str, Any]) -> dict[str, Any]:
        service = self.server.service
        if endpoint == "search":
            return service.search(
                fields["query"],
                tau=fields["tau"],
                k=fields["k"],
                timeout=fields["timeout"],
            )
        if endpoint == "topk":
            return service.topk(
                fields["query"],
                fields["count"],
                k=fields["k"],
                timeout=fields["timeout"],
            )
        return service.mini_join(
            fields["strings"],
            tau=fields["tau"],
            k=fields["k"],
            timeout=fields["timeout"],
        )

    def _handle_reload(self, body: bytes) -> None:
        try:
            decoded = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send(
                400,
                error_document(
                    "bad_request", f"request body is not valid JSON: {exc}"
                ),
            )
            return
        if not isinstance(decoded, dict):
            self._send(
                400,
                error_document("bad_request", "reload body must be an object"),
            )
            return
        document = self.server.service.reload(
            collection_path=decoded.get("collection"),
            index_path=decoded.get("index"),
            store_path=decoded.get("store"),
        )
        self._send(_status_of(document), document)

    # -- plumbing ------------------------------------------------------

    def _read_body(self) -> bytes:
        length_text = self.headers.get("Content-Length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise ConfigurationError(
                f"bad Content-Length {length_text!r}"
            ) from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise ConfigurationError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        return self.rfile.read(length) if length else b""

    def _send(
        self,
        status: int,
        document: dict[str, Any],
        extra_headers: tuple[tuple[str, str], ...] = (),
        corrupt: bool = False,
    ) -> None:
        body = encode_document(document)
        if corrupt:
            # Injected response corruption: the advertised length stays
            # honest, the payload is garbled — clients must fail their
            # JSON decode, not misread a truncated-but-valid prefix.
            body = b"\xff\xfe" + body[2:]
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in extra_headers:
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # The client went away mid-response; its problem, not a
            # reason to unwind the handler thread noisily.
            self.close_connection = True


def _status_of(document: dict[str, Any]) -> int:
    """HTTP status for a service document (200 unless a typed error)."""
    error = document.get("error")
    if isinstance(error, dict):
        return ERROR_STATUS.get(error.get("type", ""), 500)
    return 200


class ServerRunner:
    """Lifecycle wrapper: background accept loop + crash-only shutdown.

    Used by the CLI, the load harness, and the tests::

        runner = ServerRunner(service, host="127.0.0.1", port=0)
        runner.start()
        ... requests against runner.address ...
        drained = runner.shutdown()
    """

    def __init__(
        self, service: JoinService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self.httpd = ServeHTTPServer((host, port), service)
        self._thread: "threading.Thread | None" = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolved even for port 0)."""
        host, port = self.httpd.server_address[:2]
        return str(host), int(port)

    def start(self) -> "ServerRunner":
        """Start the accept loop on a daemon thread; returns self."""
        thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-accept",
            daemon=True,
        )
        thread.start()
        self._thread = thread
        return self

    def shutdown(self, drain_timeout: "float | None" = None) -> bool:
        """Stop accepting, drain bounded, then close no matter what.

        Returns ``True`` when every in-flight request finished inside
        the drain budget, ``False`` when stragglers were abandoned
        (their daemon threads die with the process — crash-only by
        design). Idempotent.
        """
        budget = (
            drain_timeout
            if drain_timeout is not None
            else self.service.options.drain_timeout
        )
        self.service.draining = True
        self.httpd.shutdown()  # stops the accept loop, waits for it
        drained = self.httpd.admission.drained(Deadline(budget))
        if not drained:
            self.service.stats.record(
                "serve", "drain_abandoned", self.httpd.admission.in_flight
            )
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        return drained


def serve_until_interrupted(
    service: JoinService,
    host: str,
    port: int,
    announce: "Callable[[str], None] | None" = None,
) -> int:
    """The CLI's blocking serve loop with POSIX signal wiring.

    ``SIGTERM``/``SIGINT`` trigger the crash-only shutdown (exit 0 when
    the drain completed, 75 when stragglers were abandoned); ``SIGHUP``
    triggers a warm reload on a helper thread (the signal handler only
    sets the wheels turning — reload failures keep the old generation
    and are reported through the ``serve.reload_failed`` counter).
    """
    import signal

    runner = ServerRunner(service, host=host, port=port).start()
    stop = threading.Event()

    def _request_stop(signum: int, frame: Any) -> None:
        stop.set()

    def _request_reload(signum: int, frame: Any) -> None:
        threading.Thread(
            target=service.reload, name="repro-serve-reload", daemon=True
        ).start()

    previous: dict[int, Any] = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _request_stop)
    if hasattr(signal, "SIGHUP"):
        previous[signal.SIGHUP] = signal.signal(signal.SIGHUP, _request_reload)
    try:
        if announce is not None:
            bound_host, bound_port = runner.address
            announce(f"serving {len(service)} string(s) on {bound_host}:{bound_port}")
        stop.wait()
        drained = runner.shutdown()
        return 0 if drained else 75
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
