"""The serving core: one warm index, many concurrent requests.

:class:`JoinService` owns the expensive state — the collection, the
:class:`~repro.core.search.SimilaritySearcher` (segment index + shared
:class:`~repro.core.context.CollectionContext` feature caches) — and
answers ``search`` / ``topk`` / ``mini-join`` requests from any number
of threads. Transport (HTTP, a test calling methods directly) lives
elsewhere; every robustness decision that is about *answers* lives
here:

**Per-request τ and k.** τ is a pure threshold change and reuses the
shared engine verbatim (:meth:`JoinConfig.with_tau`). A non-native k
cannot reuse the segment index (it is physically built per k), so such
requests run the paper's FCT/CT/T variant over a per-request
length-filter source (:meth:`JoinConfig.with_request_k`) — same
answers as an offline run of that variant, documented cost.

**The degradation ladder.** Tier 0 is the exact pipeline — responses
byte-identical to the offline drivers. When the request deadline comes
under pressure (less than ``degrade_margin`` of the budget left), the
remaining candidates switch to the Hoeffding-bounded sampling verifier
(:func:`repro.verify.sampling.sampled_verify_threshold`, deterministic
per-pair seed) and the response is flagged ``degraded: true`` — an
approximate answer in time beats an exact answer too late, but only
ever labelled as such. Tier 2 is hard expiry: a typed
``deadline_exceeded`` error carrying the partial results, raised by
the cooperative check points, never a hang.

**Warm reload.** :meth:`reload` builds and validates a complete new
generation (collection re-read, optional index snapshot header-checked
against the serving config before postings load) while the old one
keeps serving; the swap is a single reference assignment, and *any*
failure — corrupt snapshot, unreadable file, malformed record — leaves
the old generation in place and returns a typed ``reload_failed``.
"""

from __future__ import annotations

import hashlib
import heapq
import threading
from dataclasses import dataclass, replace
from typing import Any, Sequence

from repro.core.config import JoinConfig
from repro.core.context import CollectionContext
from repro.core.deadline import Deadline, deadline_scope
from repro.core.engine import JoinEngine, LengthBandSource
from repro.core.errors import (
    ConfigurationError,
    DeadlineExceededError,
    ReproError,
)
from repro.core.pipeline import StageChain
from repro.core.results import SearchMatch
from repro.core.search import QUERY_ID, SimilaritySearcher
from repro.core.stats import JoinStatistics
from repro.datasets.loader import load_collection
from repro.index.persistence import load_index, peek_index_meta
from repro.serve.protocol import error_document, match_document
from repro.uncertain.parser import UncertainStringSyntaxError, parse_uncertain
from repro.uncertain.string import UncertainString
from repro.verify.sampling import sampled_verify_threshold

__all__ = ["JoinService", "ServeOptions"]


@dataclass(frozen=True)
class ServeOptions:
    """Robustness knobs of the serving layer.

    Parameters
    ----------
    max_in_flight / queue_limit / queue_timeout / retry_after:
        Admission control; see
        :class:`~repro.serve.admission.AdmissionController`.
    request_timeout:
        Default per-request deadline in seconds (a request may ask for
        less via its ``timeout`` field; asking for more is capped here
        — the server's budget is not client-negotiable upward).
    degrade_margin:
        Fraction of the request budget below which the verifier
        degrades to sampling. ``0`` disables degradation (requests run
        exact until they hit the hard deadline).
    degrade_max_samples:
        Sample budget per degraded pair (small by design: degradation
        exists to finish fast).
    degrade_delta:
        Hoeffding confidence parameter of the degraded verifier.
    sampling_seed:
        Global seed mixed into each degraded pair's deterministic RNG,
        so a degraded answer is reproducible for a given (seed, query,
        candidate).
    drain_timeout:
        Crash-only shutdown: how long to wait for in-flight requests
        before abandoning them.
    fault_spec:
        Request-path fault plan (``slow@I/SECONDS``, ``drop@I``,
        ``corrupt-resp@I``, ``crash@I``) in
        :meth:`repro.util.faults.FaultPlan.from_spec` syntax; testing
        hook, ``None`` injects nothing.
    """

    max_in_flight: int = 8
    queue_limit: int = 16
    queue_timeout: float = 0.25
    retry_after: float = 0.5
    request_timeout: float = 5.0
    degrade_margin: float = 0.25
    degrade_max_samples: int = 2048
    degrade_delta: float = 1e-3
    sampling_seed: int = 0
    drain_timeout: float = 5.0
    fault_spec: "str | None" = None

    def __post_init__(self) -> None:
        if self.request_timeout <= 0:
            raise ConfigurationError(
                f"request_timeout must be positive, got {self.request_timeout}"
            )
        if not 0.0 <= self.degrade_margin < 1.0:
            raise ConfigurationError(
                f"degrade_margin must be in [0, 1), got {self.degrade_margin}"
            )
        if self.degrade_max_samples < 1:
            raise ConfigurationError(
                "degrade_max_samples must be >= 1, "
                f"got {self.degrade_max_samples}"
            )
        if not 0.0 < self.degrade_delta < 1.0:
            raise ConfigurationError(
                f"degrade_delta must be in (0, 1), got {self.degrade_delta}"
            )
        if self.drain_timeout <= 0:
            raise ConfigurationError(
                f"drain_timeout must be positive, got {self.drain_timeout}"
            )


class _Generation:
    """One immutable serving generation: collection + warm searcher.

    A request snapshots ``service._state`` once and works against that
    object for its whole lifetime, so a concurrent reload can swap the
    service's reference without ever changing state under a request.

    A generation is either in-memory (``collection`` materialized,
    optionally fed from ``collection_path``/``index``) or store-backed
    (``store`` set: the collection is the store's lazy facade, strings
    hydrate through its bounded LRU, and features live in a bounded
    :class:`~repro.store.source.StoreContext`) — requests are agnostic
    to which.
    """

    def __init__(
        self,
        collection: "Sequence[UncertainString] | None",
        config: JoinConfig,
        generation: int,
        collection_path: "str | None" = None,
        index_path: "str | None" = None,
        index: Any = None,
        store: Any = None,
        store_path: "str | None" = None,
    ) -> None:
        self.config = config
        self.generation = generation
        self.collection_path = collection_path
        self.index_path = index_path
        self.store = store
        self.store_path = store_path
        if store is not None:
            from repro.store.base import DEFAULT_CACHE_SIZE
            from repro.store.source import StoreContext

            cache_size = getattr(store, "cache_size", DEFAULT_CACHE_SIZE)
            self.context: CollectionContext = StoreContext(cache_size)
            self.searcher = SimilaritySearcher.from_store(
                store, config, context=self.context
            )
            self.collection: Sequence[UncertainString] = (
                self.searcher.collection
            )
        else:
            assert collection is not None
            self.collection = list(collection)
            self.context = CollectionContext()
            self.searcher = SimilaritySearcher(
                self.collection, config, context=self.context, index=index
            )
        # Exact twin of the searcher's chain for ranking work (top-k
        # needs exact probabilities); shares the feature context, so
        # profiles computed by either chain serve both.
        self.exact_chain = StageChain(
            config, force_exact=True, context=self.context
        )


def _pair_seed(seed: int, query_text: str, candidate_id: int) -> int:
    """Deterministic RNG seed for one degraded (query, candidate) pair."""
    digest = hashlib.sha256(
        f"{seed}|{candidate_id}|{query_text}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


class JoinService:
    """Thread-safe query service over one (reloadable) collection.

    All methods return JSON-ready documents; failures inside a request
    surface as the typed error documents of
    :mod:`repro.serve.protocol`, raised exceptions are limited to
    programming errors. Construction is the expensive step (index
    build); requests share the warm state.
    """

    def __init__(
        self,
        collection: "Sequence[UncertainString] | None",
        config: JoinConfig,
        options: "ServeOptions | None" = None,
        collection_path: "str | None" = None,
        index_path: "str | None" = None,
        index: Any = None,
        store: Any = None,
        store_path: "str | None" = None,
    ) -> None:
        # Serving is in-thread and serial per request: the banded
        # multiprocess driver's knobs don't apply here.
        self._config = replace(
            config, workers=1, checkpoint_dir=None, shard=None, fault_spec=None
        )
        self.options = options if options is not None else ServeOptions()
        if (store is None) == (collection is None):
            raise ConfigurationError(
                "JoinService needs exactly one of collection or store"
            )
        total = len(store) if store is not None else len(collection or ())
        self.stats = JoinStatistics(total_strings=total)
        self.draining = False
        self._swap_lock = threading.Lock()
        self._state = _Generation(
            collection,
            self._config,
            generation=0,
            collection_path=collection_path,
            index_path=index_path,
            index=index,
            store=store,
            store_path=store_path,
        )

    @classmethod
    def from_files(
        cls,
        collection_path: str,
        config: JoinConfig,
        options: "ServeOptions | None" = None,
        index_path: "str | None" = None,
    ) -> "JoinService":
        """Build a service from a collection file (+ optional snapshot)."""
        collection = load_collection(collection_path)
        index = None
        if index_path is not None:
            _validate_snapshot(index_path, config, len(collection))
            index = load_index(index_path)
        return cls(
            collection,
            config,
            options,
            collection_path=collection_path,
            index_path=index_path,
            index=index,
        )

    @classmethod
    def from_store(
        cls,
        store_path: str,
        config: JoinConfig,
        options: "ServeOptions | None" = None,
    ) -> "JoinService":
        """Serve out of a prebuilt SQLite index store (DESIGN.md §6i).

        Startup reads only the store header and the visit-order
        bookkeeping — no string is parsed until a request touches it —
        so serving a collection far larger than RAM starts in seconds
        and stays flat in memory. The store must have been built under
        the serving config's ``(k, q)``; a mismatch fails construction
        with the same typed error an offline store join would raise.
        """
        from repro.store.sqlite import SqliteStore

        store = SqliteStore(store_path)
        store.meta.check_compatible(config)
        return cls(None, config, options, store=store, store_path=store_path)

    @property
    def generation(self) -> int:
        """The serving generation (bumped by every successful reload)."""
        return self._state.generation

    @property
    def config(self) -> JoinConfig:
        """The (serialized-execution) serving configuration."""
        return self._config

    def __len__(self) -> int:
        return len(self._state.collection)

    # ------------------------------------------------------------------
    # request endpoints

    def search(
        self,
        query_text: str,
        tau: "float | None" = None,
        k: "int | None" = None,
        timeout: "float | None" = None,
    ) -> dict[str, Any]:
        """All collection strings similar to the query under (k, τ).

        Exact answers are byte-identical (through the wire encoding) to
        :meth:`SimilaritySearcher.search` offline; degraded and partial
        answers are flagged as such.
        """
        state = self._state
        self.stats.record("serve", "requests")
        try:
            query = _parse_query(query_text)
            request_config = _request_config(state.config, tau, k)
        except ConfigurationError as exc:
            return error_document("bad_request", str(exc))
        deadline = self._deadline(timeout)
        matches: list[SearchMatch] = []
        degraded = False
        try:
            with deadline_scope(deadline):
                degraded = self._collect_matches(
                    state, query, query_text, request_config, deadline, matches
                )
        except DeadlineExceededError as exc:
            return self._deadline_error(
                exc, [match_document(m) for m in sorted(matches)]
            )
        matches.sort()
        return {
            "matches": [match_document(m) for m in matches],
            "count": len(matches),
            "tau": request_config.tau,
            "k": request_config.k,
            "algorithm": request_config.algorithm_name,
            "degraded": degraded,
            "generation": state.generation,
        }

    def topk(
        self,
        query_text: str,
        count: int,
        k: "int | None" = None,
        timeout: "float | None" = None,
    ) -> dict[str, Any]:
        """The ``count`` collection strings most probably similar.

        Adaptive-threshold ranking (the top-N join's τ ladder applied
        to one probe): τ starts at 0 and rises to the current N-th best
        probability, so every stage prunes against it. Exact mode ranks
        by exact probabilities; degraded mode ranks by the sampling
        estimate (flagged).
        """
        state = self._state
        self.stats.record("serve", "requests")
        if count <= 0:
            return error_document(
                "bad_request", f"count must be positive, got {count}"
            )
        try:
            query = _parse_query(query_text)
            request_config = _request_config(state.config, None, k)
        except ConfigurationError as exc:
            return error_document("bad_request", str(exc))
        deadline = self._deadline(timeout)
        # Min-heap of (probability, candidate_id); heap[0] is the cut.
        best: list[tuple[float, int]] = []

        def current_tau() -> float:
            return best[0][0] if len(best) == count else 0.0

        degraded = False
        try:
            with deadline_scope(deadline):
                degraded = self._collect_topk(
                    state, query, query_text, request_config, deadline,
                    current_tau, best, count,
                )
        except DeadlineExceededError as exc:
            return self._deadline_error(exc, _topk_documents(best))
        return {
            "matches": _topk_documents(best),
            "count": len(best),
            "requested": count,
            "k": request_config.k,
            "algorithm": request_config.algorithm_name,
            "degraded": degraded,
            "generation": state.generation,
        }

    def mini_join(
        self,
        strings_text: Sequence[str],
        tau: "float | None" = None,
        k: "int | None" = None,
        timeout: "float | None" = None,
    ) -> dict[str, Any]:
        """Self-join the request's own strings under (k, τ).

        Runs the serial streaming engine over the request payload (ids
        are positions in the request list) — identical pairs to an
        offline ``repro-join join`` of the same strings. Bounded by the
        request deadline through the chain's cooperative check points;
        no sampling tier (the answer is pairs, not a racing scan, so
        expiry returns the partial pair list instead).
        """
        state = self._state
        self.stats.record("serve", "requests")
        try:
            strings = [_parse_query(text) for text in strings_text]
            request_config = _request_config(state.config, tau, k)
        except ConfigurationError as exc:
            return error_document("bad_request", str(exc))
        deadline = self._deadline(timeout)
        pairs: list[dict[str, Any]] = []
        try:
            with deadline_scope(deadline):
                for pair in JoinEngine(request_config, stats=self.stats).join(
                    strings
                ):
                    deadline.check()
                    pairs.append(
                        {
                            "left": pair.left_id,
                            "right": pair.right_id,
                            "probability": pair.probability,
                        }
                    )
        except DeadlineExceededError as exc:
            return self._deadline_error(exc, _sorted_pairs(pairs))
        return {
            "pairs": _sorted_pairs(pairs),
            "count": len(pairs),
            "tau": request_config.tau,
            "k": request_config.k,
            "algorithm": request_config.algorithm_name,
            "degraded": False,
            "generation": state.generation,
        }

    # ------------------------------------------------------------------
    # reload / introspection

    def reload(
        self,
        collection_path: "str | None" = None,
        index_path: "str | None" = None,
        store_path: "str | None" = None,
    ) -> dict[str, Any]:
        """Swap in a freshly built generation; keep the old one on failure.

        The new collection (and optional index snapshot) is read and
        fully validated *before* the swap — requests keep hitting the
        old generation throughout, and the swap itself is one reference
        assignment, so there is no window where a request sees a
        half-built state. Every failure path returns a typed
        ``reload_failed`` document with the old generation intact.

        ``store_path`` reloads a store-backed service onto a new (or
        rebuilt) store file: the header and compatibility checks run
        against the *new* path while the old store keeps serving, and
        in-flight requests finish on the old generation's connections
        even after the swap. A store-backed service with no explicit
        path reuses its current store path — ``repro-join index build``
        replaces the file atomically, so re-opening the same path picks
        up the new contents. Passing both a collection and a store path
        is rejected; passing one or the other switches the service to
        that mode.
        """
        with self._swap_lock:
            old = self._state
            if collection_path is not None and store_path is not None:
                self.stats.record("serve", "reload_failed")
                return error_document(
                    "reload_failed",
                    "pass either a collection path or a store path, not both",
                    generation=old.generation,
                )
            want_store = store_path is not None or (
                collection_path is None and old.store_path is not None
            )
            if want_store:
                source = store_path or old.store_path
                assert source is not None
                try:
                    from repro.store.sqlite import SqliteStore

                    store = SqliteStore(source)
                    store.meta.check_compatible(self._config)
                    fresh = _Generation(
                        None,
                        self._config,
                        generation=old.generation + 1,
                        store=store,
                        store_path=source,
                    )
                except (ReproError, OSError) as exc:
                    self.stats.record("serve", "reload_failed")
                    return error_document(
                        "reload_failed",
                        f"{type(exc).__name__}: {exc}",
                        generation=old.generation,
                    )
                self._state = fresh
                self.stats.total_strings = len(fresh.collection)
                self.stats.record("serve", "reloaded")
                return {
                    "reloaded": True,
                    "generation": fresh.generation,
                    "strings": len(fresh.collection),
                    "collection": None,
                    "index": None,
                    "store": source,
                }
            source = collection_path or old.collection_path
            if source is None:
                self.stats.record("serve", "reload_failed")
                return error_document(
                    "reload_failed",
                    "service was built from an in-memory collection; "
                    "pass a collection path to reload",
                    generation=old.generation,
                )
            snapshot = index_path if index_path is not None else old.index_path
            try:
                collection = load_collection(source)
                index = None
                if snapshot is not None:
                    _validate_snapshot(snapshot, self._config, len(collection))
                    index = load_index(snapshot)
                fresh = _Generation(
                    collection,
                    self._config,
                    generation=old.generation + 1,
                    collection_path=source,
                    index_path=snapshot,
                    index=index,
                )
            except (ReproError, OSError) as exc:
                self.stats.record("serve", "reload_failed")
                return error_document(
                    "reload_failed",
                    f"{type(exc).__name__}: {exc}",
                    generation=old.generation,
                )
            self._state = fresh
            self.stats.total_strings = len(fresh.collection)
            self.stats.record("serve", "reloaded")
            return {
                "reloaded": True,
                "generation": fresh.generation,
                "strings": len(fresh.collection),
                "collection": source,
                "index": snapshot,
                "store": None,
            }

    def status_document(self) -> dict[str, Any]:
        """The ``/stats`` payload: counters + serving-state snapshot."""
        state = self._state
        return {
            "generation": state.generation,
            "strings": len(state.collection),
            "algorithm": state.config.algorithm_name,
            "k": state.config.k,
            "tau": state.config.tau,
            "store": state.store_path,
            "draining": self.draining,
            "counters": self.stats.counter_report(),
        }

    # ------------------------------------------------------------------
    # internals

    def _deadline(self, timeout: "float | None") -> Deadline:
        """The request deadline: client ask, capped by the server cap."""
        cap = self.options.request_timeout
        if timeout is None:
            return Deadline(cap)
        return Deadline(min(timeout, cap))

    def _deadline_error(
        self, exc: DeadlineExceededError, partial: list[dict[str, Any]]
    ) -> dict[str, Any]:
        self.stats.record("serve", "deadline_exceeded")
        return error_document(
            "deadline_exceeded",
            str(exc),
            partial=True,
            matches=partial,
        )

    def _request_source(
        self,
        state: _Generation,
        request_config: JoinConfig,
    ) -> tuple[Any, Any]:
        """``(engine_like, candidate source)`` for one request's config.

        The native k reuses the shared searcher (segment index, warm
        profiles). A non-native k builds a request-local length-filter
        source over the shared collection — bookkeeping only, no
        segmentation, features still resolved through the generation's
        shared context by the chain.
        """
        if request_config.k == state.config.k:
            engine = state.searcher.engine
            return engine, engine.source
        source = LengthBandSource(request_config.k)
        if state.store is not None:
            # Length bookkeeping straight from the store — building the
            # per-request source hydrates nothing.
            for string_id, length in zip(
                state.store.ids_in_visit_order(),
                state.store.lengths_in_visit_order(),
            ):
                source.register(string_id, length)
            return state, source
        throwaway = JoinStatistics()
        order = sorted(
            range(len(state.collection)),
            key=lambda i: (len(state.collection[i]), i),
        )
        for string_id in order:
            source.add(string_id, state.collection[string_id], throwaway)
        return state, source

    def _collect_matches(
        self,
        state: _Generation,
        query: UncertainString,
        query_text: str,
        request_config: JoinConfig,
        deadline: Deadline,
        out: list[SearchMatch],
    ) -> bool:
        """Tier 0/1 of the ladder; appends into ``out`` so partial
        results survive a hard expiry. Returns the degraded flag."""
        stats = self.stats
        holder, source = self._request_source(state, request_config)
        if request_config.k == state.config.k:
            chain = holder.chain
            string_of = holder.string
        else:
            chain = StageChain(request_config, context=state.context)
            string_of = lambda cid: state.collection[cid]  # noqa: E731
        threshold = request_config.tau
        provider = lambda: threshold  # noqa: E731
        context = chain.context(QUERY_ID, query)
        candidates = source.probe(query, threshold, stats)
        degraded = False
        for candidate_id, upper in candidates:
            deadline.check()
            if not degraded and self.options.degrade_margin > 0:
                if deadline.under_pressure(self.options.degrade_margin):
                    degraded = True
                    stats.record("serve", "degraded")
            if degraded:
                decision = self._sampled(
                    query, query_text, string_of(candidate_id),
                    candidate_id, request_config.k, threshold,
                )
                if decision.similar:
                    out.append(SearchMatch(candidate_id, None))
            else:
                similar, probability = chain.refine(
                    context, candidate_id, string_of(candidate_id),
                    provider, stats, upper,
                )
                if similar:
                    out.append(SearchMatch(candidate_id, probability))
        return degraded

    def _collect_topk(
        self,
        state: _Generation,
        query: UncertainString,
        query_text: str,
        request_config: JoinConfig,
        deadline: Deadline,
        current_tau: Any,
        best: list[tuple[float, int]],
        count: int,
    ) -> bool:
        stats = self.stats
        holder, source = self._request_source(state, request_config)
        if request_config.k == state.config.k:
            chain = state.exact_chain
            string_of = holder.string
        else:
            chain = StageChain(
                request_config, force_exact=True, context=state.context
            )
            string_of = lambda cid: state.collection[cid]  # noqa: E731
        context = chain.context(QUERY_ID, query)
        candidates = source.probe(query, current_tau(), stats)
        degraded = False
        for candidate_id, upper in candidates:
            deadline.check()
            if not degraded and self.options.degrade_margin > 0:
                if deadline.under_pressure(self.options.degrade_margin):
                    degraded = True
                    stats.record("serve", "degraded")
            if degraded:
                decision = self._sampled(
                    query, query_text, string_of(candidate_id),
                    candidate_id, request_config.k, current_tau(),
                )
                if decision.similar:
                    heapq.heappush(best, (decision.estimate, candidate_id))
                    if len(best) > count:
                        heapq.heappop(best)
            else:
                similar, probability = chain.refine(
                    context, candidate_id, string_of(candidate_id),
                    current_tau, stats, upper,
                )
                if similar and probability is not None:
                    heapq.heappush(best, (probability, candidate_id))
                    if len(best) > count:
                        heapq.heappop(best)
        return degraded

    def _sampled(
        self,
        query: UncertainString,
        query_text: str,
        candidate: UncertainString,
        candidate_id: int,
        k: int,
        tau: float,
    ) -> Any:
        """One degraded-tier verification (deterministic per-pair RNG)."""
        self.stats.record("serve", "sampled")
        return sampled_verify_threshold(
            query,
            candidate,
            k,
            tau,
            delta=self.options.degrade_delta,
            max_samples=self.options.degrade_max_samples,
            rng=_pair_seed(self.options.sampling_seed, query_text, candidate_id),
        )


def _parse_query(text: str) -> UncertainString:
    """Parse request notation, folding syntax errors into bad_request."""
    try:
        return parse_uncertain(text)
    except UncertainStringSyntaxError as exc:
        raise ConfigurationError(f"bad uncertain string {text!r}: {exc}") from exc


def _request_config(
    base: JoinConfig, tau: "float | None", k: "int | None"
) -> JoinConfig:
    """``base`` specialized to one request's τ/k (validation included)."""
    config = base
    if tau is not None:
        config = config.with_tau(tau)
    if k is not None:
        config = config.with_request_k(k)
    return config


def _topk_documents(best: list[tuple[float, int]]) -> list[dict[str, Any]]:
    """Heap contents as ranked wire documents (probability desc)."""
    return [
        {"id": candidate_id, "probability": probability}
        for probability, candidate_id in sorted(best, reverse=True)
    ]


def _sorted_pairs(pairs: list[dict[str, Any]]) -> list[dict[str, Any]]:
    return sorted(pairs, key=lambda p: (p["left"], p["right"]))


def _validate_snapshot(
    path: str, config: JoinConfig, collection_size: int
) -> None:
    """Header-check an index snapshot against the serving config.

    Catches the cheap-to-detect mismatches (wrong k/q/index knobs,
    wrong collection size) *before* postings are parsed, so a reload
    pointed at the wrong snapshot fails fast and typed.
    """
    from repro.core.errors import CheckpointMismatchError

    meta = peek_index_meta(path)
    expected = {
        "k": config.k,
        "q": config.q,
        "selection": config.selection,
        "group_mode": config.group_mode,
        "bound_mode": config.bound_mode,
    }
    actual = {key: meta.get(key) for key in expected}
    if actual != expected:
        raise CheckpointMismatchError(
            str(path),
            f"index snapshot was built under {actual}, "
            f"serving config needs {expected}",
        )
    if meta.get("last_id") != collection_size - 1:
        raise CheckpointMismatchError(
            str(path),
            f"index snapshot covers {meta.get('last_id', -1) + 1} string(s), "
            f"collection has {collection_size}",
        )
