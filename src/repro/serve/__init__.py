"""Online join/search serving (`repro-join serve`).

The build-once / query-many layer over the paper's machinery: a
persistent threaded server constructs the
:class:`~repro.core.search.SimilaritySearcher` (Section 4 segment
index + :class:`~repro.core.context.CollectionContext`) once and
answers ``search`` / ``topk`` / ``mini-join`` requests (JSON over
HTTP) with per-request τ/k — the serving model of *Probabilistic
Threshold Indexing for Uncertain Strings* (PAPERS.md) layered on this
repo's engine.

Robustness carries the design (DESIGN.md §6h):

* **admission control** (:mod:`repro.serve.admission`) — max-in-flight
  semaphore + bounded wait; excess load is shed as an explicit ``503``
  with ``Retry-After``, never queued unboundedly;
* **deadlines** (:mod:`repro.core.deadline`) — every admitted request
  runs under a monotonic cooperative deadline scope enforced inside
  the engine's refinement path; expiry is a typed
  ``deadline_exceeded`` response carrying any partial results, never a
  hang;
* **graceful degradation** (:mod:`repro.serve.service`) — under
  deadline pressure the exact verifier falls back to the
  Hoeffding-bounded sampling verifier and the response is flagged
  ``degraded: true``;
* **warm snapshot reload** — ``/admin/reload`` (or ``SIGHUP``)
  atomically swaps in a revalidated collection/index generation; a
  corrupt snapshot keeps the old generation serving;
* **crash-only shutdown** — drain in-flight requests against a drain
  deadline, then abort;
* **request-path fault injection** — the executor's
  :class:`~repro.util.faults.FaultPlan` grammar extended with
  ``slow@``/``drop@``/``corrupt-resp@`` request targets so tests can
  prove byte-identical answers and bounded latency under faults.
"""

from repro.serve.admission import AdmissionController
from repro.serve.protocol import (
    ERROR_STATUS,
    error_document,
    match_document,
)
from repro.serve.service import JoinService, ServeOptions

__all__ = [
    "AdmissionController",
    "ERROR_STATUS",
    "JoinService",
    "ServeOptions",
    "error_document",
    "match_document",
]
