"""Monotonic-clock deadlines with cooperative in-thread enforcement.

The fault-tolerant executor's per-band deadline is a ``SIGALRM`` timer,
which only arms in the *main thread* of a process — fine for pool
workers (tasks run in the worker's main thread), silently inert when
the same band code is driven from a server thread. A long-running
service needs a deadline mechanism that works in any thread, so this
module provides the cooperative complement:

* :class:`Deadline` — an immutable-budget, monotonic-clock deadline
  (``time.monotonic``, so wall-clock jumps cannot fire or defer it)
  with ``remaining()``/``expired()``/``check()``;
* a per-thread *deadline scope* stack (:func:`deadline_scope`): hot
  loops call :func:`check_active`, which raises
  :class:`~repro.core.errors.DeadlineExceededError` when the innermost
  scope's budget is gone and costs one thread-local lookup when no
  scope is active;
* the checks themselves live in the engine's refinement path
  (:mod:`repro.core.pipeline`, :meth:`JoinEngine.probe`), so *any*
  work routed through the stage chain — an offline band task, a served
  search request — honours the innermost active deadline without the
  deadline being threaded through every call signature.

Cooperative means exactly that: code which never re-enters the stage
chain (a single enormous trie verification, a C-level loop) is bounded
only by the granularity of its check points. The executor therefore
keeps ``SIGALRM`` as a preemptive layer where it is usable and uses
the scope mechanism as the everywhere-else fallback; the serve layer
pairs scopes with admission control so a request that blows through a
check point late still cannot wedge the server's accept loop.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.core.errors import DeadlineExceededError

__all__ = [
    "Deadline",
    "active_deadline",
    "check_active",
    "deadline_scope",
]


class Deadline:
    """A fixed time budget anchored to the monotonic clock.

    ``budget`` is seconds from construction; ``None`` never expires
    (useful for "no limit" code paths that still want the interface).
    Instances are immutable once created and safe to share across
    threads — every method is a pure read of the monotonic clock.
    """

    __slots__ = ("budget", "_expires_at", "_started_at")

    def __init__(self, budget: "float | None") -> None:
        if budget is not None and budget <= 0:
            raise ValueError(f"budget must be positive or None, got {budget}")
        self.budget = budget
        self._started_at = time.monotonic()
        self._expires_at = (
            None if budget is None else self._started_at + budget
        )

    @classmethod
    def after(cls, seconds: "float | None") -> "Deadline":
        """Alias constructor reading as prose: ``Deadline.after(0.5)``."""
        return cls(seconds)

    @property
    def elapsed(self) -> float:
        """Seconds since this deadline was created."""
        return time.monotonic() - self._started_at

    def remaining(self) -> float:
        """Seconds left before expiry (``inf`` for a limitless deadline).

        Never negative: an expired deadline reports ``0.0``.
        """
        if self._expires_at is None:
            return float("inf")
        return max(0.0, self._expires_at - time.monotonic())

    def expired(self) -> bool:
        """Whether the budget is exhausted."""
        return self._expires_at is not None and time.monotonic() >= self._expires_at

    def check(self) -> None:
        """Raise :class:`DeadlineExceededError` once the budget is gone."""
        if self.expired():
            assert self.budget is not None
            raise DeadlineExceededError(self.budget, self.elapsed)

    def under_pressure(self, margin: float) -> bool:
        """Whether less than ``margin`` of the budget remains.

        ``margin`` is a fraction of the original budget in ``[0, 1]`` —
        the degradation trigger of the serve layer's fallback ladder. A
        limitless deadline is never under pressure.
        """
        if self.budget is None:
            return False
        return self.remaining() < margin * self.budget

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.budget is None:
            return "Deadline(budget=None)"
        return (
            f"Deadline(budget={self.budget:.3f}, "
            f"remaining={self.remaining():.3f})"
        )


class _Scopes(threading.local):
    """Per-thread stack of active deadline scopes."""

    def __init__(self) -> None:
        self.stack: list[Deadline] = []


_SCOPES = _Scopes()


def active_deadline() -> "Deadline | None":
    """The innermost deadline scope of the current thread, if any."""
    stack = _SCOPES.stack
    return stack[-1] if stack else None


def check_active() -> None:
    """Cooperative check point: enforce the innermost active scope.

    Costs one thread-local attribute read when no scope is active, so
    it is safe to call from per-candidate hot loops.
    """
    stack = _SCOPES.stack
    if stack:
        stack[-1].check()


@contextmanager
def deadline_scope(deadline: Deadline) -> Iterator[Deadline]:
    """Make ``deadline`` the current thread's innermost active scope.

    Scopes nest: the innermost one is enforced by :func:`check_active`
    (an outer scope's expiry surfaces once the inner scope pops). The
    scope is strictly per-thread — it never leaks into pool workers or
    sibling request threads.
    """
    _SCOPES.stack.append(deadline)
    try:
        yield deadline
    finally:
        popped = _SCOPES.stack.pop()
        assert popped is deadline, "deadline scopes popped out of order"
