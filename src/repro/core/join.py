"""The self-join driver (Section 4).

Strings are visited in ascending length order (ties by id). For the
current string ``R`` the driver finds all similar strings *among already
visited strings only* — via the inverted segment index when q-gram
filtering is enabled, else via the plain length filter — refines the
candidates through the configured filter stack, verifies survivors, and
only then inserts ``R``'s segments into the index. No pair is enumerated
twice.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import JoinConfig
from repro.core.pipeline import CandidateRefiner
from repro.core.results import JoinOutcome, JoinPair
from repro.core.stats import JoinStatistics
from repro.index.inverted import SegmentInvertedIndex
from repro.uncertain.string import UncertainString


def similarity_join(
    collection: Sequence[UncertainString], config: JoinConfig
) -> JoinOutcome:
    """All pairs ``(i, j)`` with ``Pr(ed(S_i, S_j) <= k) > tau``.

    Returns a :class:`JoinOutcome` whose pairs are keyed by positions in
    ``collection`` (``left_id < right_id``) and whose stats carry the
    per-stage counters/timers the benchmarks report.

    With ``config.workers > 1`` the work is delegated to the
    length-banded parallel driver (:mod:`repro.core.parallel`), which
    produces an identical pair list.
    """
    if config.workers > 1:
        from repro.core.parallel import parallel_similarity_join

        return parallel_similarity_join(collection, config)
    stats = JoinStatistics(total_strings=len(collection))
    refiner = CandidateRefiner(config, stats)
    index = (
        SegmentInvertedIndex(
            k=config.k,
            q=config.q,
            selection=config.selection,
            group_mode=config.group_mode,
            bound_mode=config.bound_mode,
        )
        if config.uses_qgram
        else None
    )
    # Visit order: ascending length, ties by id. Ranks (positions in this
    # order) are the ids used inside the index so insertions stay sorted.
    order = sorted(range(len(collection)), key=lambda i: (len(collection[i]), i))
    rank_to_id = {rank: string_id for rank, string_id in enumerate(order)}
    visited_by_length: dict[int, list[int]] = {}
    visited_lengths_count: dict[int, int] = {}

    pairs: list[JoinPair] = []
    total_timer = stats.timer("total").start()
    for rank, string_id in enumerate(order):
        current = collection[string_id]
        length = len(current)

        eligible = sum(
            count
            for other_length, count in visited_lengths_count.items()
            if abs(other_length - length) <= config.k
        )
        stats.length_eligible_pairs += eligible

        if index is not None:
            with stats.timer("qgram"):
                candidates = [
                    (candidate.string_id, candidate.upper)
                    for candidate in index.query(current, config.tau)
                ]
            stats.qgram_survivors += len(candidates)
            stats.qgram_rejected += eligible - len(candidates)
        else:
            candidates = []
            for other_length, ranks in visited_by_length.items():
                if abs(other_length - length) <= config.k:
                    candidates.extend((other, None) for other in ranks)
            stats.length_survivors += len(candidates)

        for other_rank, _upper in sorted(candidates):
            other_id = rank_to_id[other_rank]
            other = collection[other_id]
            similar, probability = refiner.refine(
                string_id, current, other_id, other
            )
            if similar:
                left, right = sorted((string_id, other_id))
                pairs.append(JoinPair(left, right, probability))

        if index is not None:
            with stats.timer("index"):
                index.add(rank, current)
        visited_by_length.setdefault(length, []).append(rank)
        visited_lengths_count[length] = visited_lengths_count.get(length, 0) + 1
    total_timer.stop()
    stats.result_pairs = len(pairs)
    pairs.sort()
    return JoinOutcome(pairs=pairs, stats=stats)
