"""The self-join driver (Section 4).

A thin adapter over :class:`repro.core.engine.JoinEngine`: the engine
owns visit order (ascending length, ties by id), candidate generation
against already-visited strings, refinement, and statistics; this module
only collects the streamed pairs, sorts them, and wraps the outcome.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import JoinConfig
from repro.core.context import CollectionContext
from repro.core.engine import JoinEngine
from repro.core.results import JoinOutcome, JoinPair
from repro.core.stats import JoinStatistics
from repro.uncertain.string import UncertainString


def similarity_join(
    collection: Sequence[UncertainString],
    config: JoinConfig,
    context: CollectionContext | None = None,
    index_length_cap: int | None = None,
) -> JoinOutcome:
    """All pairs ``(i, j)`` with ``Pr(ed(S_i, S_j) <= k) > tau``.

    Returns a :class:`JoinOutcome` whose pairs are keyed by positions in
    ``collection`` (``left_id < right_id``) and whose stats carry the
    per-stage counters/timers the benchmarks report. For pair-by-pair
    consumption use :func:`repro.core.engine.iter_join_pairs`.

    With ``config.workers > 1`` or a ``config.checkpoint_dir`` set the
    work is delegated to the length-banded parallel driver
    (:mod:`repro.core.parallel`) under a pluggable execution backend
    (:mod:`repro.core.dispatch`: serial, process pool, or ``--shard``
    slice) with the fault-tolerant band executor's retries, timeouts,
    and checkpoint/resume; the pair list is identical either way. In
    shard mode (``config.shard``) the outcome holds only that shard's
    pairs — :func:`repro.core.merge.merge_run` folds the shards.

    ``context`` optionally supplies precomputed per-string features
    (profiles, support alphabets, certainty flags) keyed by position in
    ``collection`` — the parallel band driver passes each band's slice
    of the parent's shared :class:`CollectionContext` here.

    ``index_length_cap`` (serial path only) marks strings longer than
    the cap probe-only — see :meth:`JoinEngine.join`. The band driver
    caps at its owned length so halo strings pair with owned strings
    but never with each other.
    """
    if config.workers > 1 or config.checkpoint_dir is not None:
        from repro.core.parallel import parallel_similarity_join

        return parallel_similarity_join(collection, config)
    stats = JoinStatistics(total_strings=len(collection))
    engine = JoinEngine(config, stats=stats, context=context)
    pairs: list[JoinPair] = []
    with stats.timer("total"):
        pairs.extend(engine.join(collection, index_length_cap=index_length_cap))
    stats.result_pairs = len(pairs)
    pairs.sort()
    return JoinOutcome(pairs=pairs, stats=stats)
