"""The streaming join engine every driver routes through.

The paper's pipeline (length filter → q-gram segment index → frequency
distance → CDF bounds → trie/DP verification) is *one* algorithm; this
module owns it once. :class:`JoinEngine` combines

* a :class:`CandidateSource` — candidate generation among previously
  added strings, with the rank ↔ id mapping and visited-length
  bookkeeping the drivers used to re-derive. Two implementations:
  :class:`SegmentIndexSource` (the Section 4 inverted segment index)
  and :class:`LengthBandSource` (the plain length filter, for variants
  without q-gram filtering);
* the data-driven :class:`~repro.core.pipeline.StageChain`
  (frequency → CDF → verify), with τ supplied per candidate by a
  :data:`~repro.core.pipeline.TauProvider`;
* per-stage counters/timers recorded through the stage-name-keyed
  registry of :class:`~repro.core.stats.JoinStatistics` — identically
  for every driver.

The API is generator-based: :meth:`JoinEngine.join` /
:meth:`JoinEngine.matches` yield results *as they are discovered*, so
batch drivers collect them, the incremental joiner stays resumable, and
early-terminating consumers (top-N, serving) stop pulling whenever they
have enough.
"""

from __future__ import annotations

from typing import Any, Iterator, Protocol, Sequence, runtime_checkable

from repro.core.config import JoinConfig
from repro.core.context import CollectionContext
from repro.core.errors import ConfigurationError
from repro.core.pipeline import StageChain, TauProvider
from repro.core.results import JoinPair, SearchMatch
from repro.core.stats import JoinStatistics
from repro.index.inverted import SegmentInvertedIndex
from repro.uncertain.string import UncertainString

#: One generated candidate: ``(string id, Theorem 2 upper bound)``;
#: the bound is ``None`` when the source cannot compute one.
SourceCandidate = tuple[int, "float | None"]


class StringLookup(Protocol):
    """The engine's candidate-string mapping: a plain dict by default,
    a bounded :class:`~repro.store.source.StoreStringCache` when the
    strings live out of core."""

    def __getitem__(self, string_id: int) -> UncertainString: ...

    def __setitem__(
        self, string_id: int, string: UncertainString
    ) -> None: ...

    def __len__(self) -> int: ...


@runtime_checkable
class CandidateSource(Protocol):
    """Candidate generation among previously added strings.

    A source owns the visit bookkeeping the drivers used to duplicate:
    the internal rank (insertion order) ↔ caller id mapping, and the
    per-length population counts behind the ``length``/``qgram`` stage
    counters. ``probe`` must count identically in every driver:
    ``length.eligible`` for the length-filter universe, plus either
    ``qgram.survivors``/``qgram.rejected`` (index sources) or
    ``length.survivors`` (plain length filter).
    """

    def add(
        self, string_id: int, string: UncertainString, stats: JoinStatistics
    ) -> None:
        """Register ``string`` so later probes can return it."""
        ...

    def probe(
        self, query: UncertainString, tau: float, stats: JoinStatistics
    ) -> list[SourceCandidate]:
        """Candidates among added strings, ascending by insertion rank."""
        ...

    def __len__(self) -> int: ...


class SegmentIndexSource:
    """Candidate generation through the Section 4 inverted segment index.

    Strings are indexed under their insertion rank (ranks ascend by
    construction, which keeps posting lists sorted); probes prune with
    Lemma 5 + Theorem 2 and report the surviving candidates' Theorem 2
    upper bounds for the chain to reuse.
    """

    def __init__(
        self,
        config: JoinConfig,
        index: SegmentInvertedIndex | None = None,
    ) -> None:
        self._k = config.k
        # A preloaded ``index`` (a per-shard snapshot from
        # repro.index.persistence) skips per-string segmentation: `add`
        # still rebuilds the rank↔id and length bookkeeping — which
        # requires the caller to replay the exact insertion order the
        # snapshot was built under — but no postings are re-derived.
        self._preloaded = index is not None
        self._index = (
            index
            if index is not None
            else SegmentInvertedIndex(
                k=config.k,
                q=config.q,
                selection=config.selection,
                group_mode=config.group_mode,
                bound_mode=config.bound_mode,
            )
        )
        self._rank_to_id: list[int] = []
        self._count_by_length: dict[int, int] = {}

    @property
    def index(self) -> SegmentInvertedIndex:
        """The wrapped index (size reporting, persistence)."""
        return self._index

    def __len__(self) -> int:
        return len(self._rank_to_id)

    def add(
        self, string_id: int, string: UncertainString, stats: JoinStatistics
    ) -> None:
        rank = len(self._rank_to_id)
        if not self._preloaded:
            with stats.timer("index"):
                self._index.add(rank, string)
        self._rank_to_id.append(string_id)
        length = len(string)
        self._count_by_length[length] = self._count_by_length.get(length, 0) + 1

    def probe(
        self, query: UncertainString, tau: float, stats: JoinStatistics
    ) -> list[SourceCandidate]:
        length = len(query)
        eligible = sum(
            count
            for other_length, count in self._count_by_length.items()
            if abs(other_length - length) <= self._k
        )
        stats.record("length", "eligible", eligible)
        with stats.timer("qgram"):
            ranked = self._index.probe(query, tau)
        stats.record("qgram", "survivors", len(ranked))
        stats.record("qgram", "rejected", eligible - len(ranked))
        return [(self._rank_to_id[rank], upper) for rank, upper in ranked]


class LengthBandSource:
    """Plain length-filter candidate generation (no q-gram index).

    Serves the paper variants without **Q**: every added string within
    edit-threshold length distance of the query is a candidate, with no
    upper bound attached.
    """

    def __init__(self, k: int) -> None:
        if k < 0:
            raise ConfigurationError(f"k must be non-negative, got {k}")
        self._k = k
        self._rank_to_id: list[int] = []
        self._ranks_by_length: dict[int, list[int]] = {}

    def __len__(self) -> int:
        return len(self._rank_to_id)

    def register(self, string_id: int, length: int) -> None:
        """Register one string by id and length, without hydrating it
        (the store-backed searcher's bulk-registration hook)."""
        rank = len(self._rank_to_id)
        self._rank_to_id.append(string_id)
        self._ranks_by_length.setdefault(length, []).append(rank)

    def add(
        self, string_id: int, string: UncertainString, stats: JoinStatistics
    ) -> None:
        self.register(string_id, len(string))

    def probe(
        self, query: UncertainString, tau: float, stats: JoinStatistics
    ) -> list[SourceCandidate]:
        length = len(query)
        ranks: list[int] = []
        for other_length, members in self._ranks_by_length.items():
            if abs(other_length - length) <= self._k:
                ranks.extend(members)
        ranks.sort()
        # Everything length-eligible survives: eligible == survivors here.
        stats.record("length", "eligible", len(ranks))
        stats.record("length", "survivors", len(ranks))
        return [(self._rank_to_id[rank], None) for rank in ranks]


def make_source(
    config: JoinConfig,
    index: SegmentInvertedIndex | None = None,
    store: Any = None,
) -> CandidateSource:
    """The candidate source ``config``'s filter stack calls for.

    ``index`` hands a :class:`SegmentIndexSource` a preloaded segment
    index (a persisted snapshot) instead of building one per string; it
    is only meaningful for q-gram configs and must be ``None`` for
    filter stacks without **Q**. ``store`` (an
    :class:`~repro.store.base.IndexStore`) routes q-gram candidate
    generation through the store's prebuilt postings instead — the two
    are mutually exclusive. Non-q-gram stacks never read postings, so
    under ``store`` they still get the plain length filter.
    """
    if index is not None and store is not None:
        raise ConfigurationError(
            "a preloaded segment index and an index store are mutually "
            "exclusive candidate-generation backends"
        )
    if store is not None:
        if config.uses_qgram:
            from repro.store.source import StoreIndexSource

            return StoreIndexSource(config, store)
        store.meta.check_compatible(config)
        return LengthBandSource(config.k)
    if config.uses_qgram:
        return SegmentIndexSource(config, index=index)
    if index is not None:
        raise ConfigurationError(
            "a preloaded segment index requires the qgram filter "
            f"(filters={config.filters!r} has no use for it)"
        )
    return LengthBandSource(config.k)


class JoinEngine:
    """One streaming (k, τ)-matching engine: source + stage chain + stats.

    Drivers differ only in how they feed and consume it: the batch
    self-join collects :meth:`join`; the searcher adds its collection
    once and calls :meth:`matches` per query; the incremental joiner
    interleaves :meth:`probe` and :meth:`add`; the top-N join passes an
    adaptive ``tau`` provider and keeps the N best yields.

    Parameters
    ----------
    config:
        Pipeline knobs. The engine itself is serial — parallel drivers
        shard the input and run one engine per band.
    stats:
        Statistics sink; a fresh one is created when omitted. Reassign
        :attr:`stats` to redirect subsequent recording (the searcher
        does this per query).
    tau:
        Per-candidate threshold provider; defaults to the constant
        ``config.tau``.
    force_exact:
        Always verify to the exact probability (see
        :class:`~repro.core.pipeline.StageChain`).
    context:
        Shared :class:`~repro.core.context.CollectionContext` of
        per-string features (frequency profiles, support alphabets,
        certainty fast-path data), for engines that outlive one run
        over the same indexed strings — or parallel band engines
        reusing the parent process's finished features.
    index:
        Preloaded segment index (a per-shard snapshot from
        :mod:`repro.index.persistence`) for q-gram configs; the caller
        must then :meth:`add` the same strings in the same order the
        snapshot was built under, which rebuilds the id bookkeeping
        without re-segmenting any string.
    store:
        An :class:`~repro.store.base.IndexStore`: candidate generation
        reads the store's prebuilt postings, and candidate strings are
        hydrated on demand through a bounded LRU instead of being held
        in a dict — peak RSS tracks the cache, not the collection.
        Mutually exclusive with ``index``; adds must replay the store's
        (length, id) visit order.
    store_cache:
        The hydration cache to use with ``store`` (a
        :class:`~repro.store.source.StoreStringCache`); by default one
        is created at the store's configured capacity. Drivers pass a
        shared cache so the engine and their collection facade hit one
        LRU.
    """

    def __init__(
        self,
        config: JoinConfig,
        stats: JoinStatistics | None = None,
        tau: TauProvider | None = None,
        force_exact: bool = False,
        context: CollectionContext | None = None,
        index: "SegmentInvertedIndex | None" = None,
        store: Any = None,
        store_cache: Any = None,
    ) -> None:
        self.config = config
        self.stats = stats if stats is not None else JoinStatistics()
        # Batch refinement folds the whole candidate block under one τ
        # read, so it is only sound when τ is the constant config.tau —
        # an adaptive provider (top-N) must keep the per-candidate path
        # that re-reads τ between pulls.
        self._constant_tau = tau is None
        self.tau: TauProvider = tau if tau is not None else (lambda: config.tau)
        self.source = make_source(config, index=index, store=store)
        self.chain = StageChain(config, force_exact=force_exact, context=context)
        self._strings: StringLookup
        if store is not None:
            from repro.store.base import DEFAULT_CACHE_SIZE
            from repro.store.source import StoreStringCache

            self._strings = (
                store_cache
                if store_cache is not None
                else StoreStringCache(
                    store, getattr(store, "cache_size", DEFAULT_CACHE_SIZE)
                )
            )
        else:
            if store_cache is not None:
                raise ConfigurationError(
                    "store_cache is only meaningful together with store"
                )
            self._strings = {}

    def __len__(self) -> int:
        return len(self._strings)

    def string(self, string_id: int) -> UncertainString:
        """A previously added string."""
        return self._strings[string_id]

    def add(self, string_id: int, string: UncertainString) -> None:
        """Register ``string`` under ``string_id`` (ids must be unique;
        internal ranks follow insertion order)."""
        self.source.add(string_id, string, self.stats)
        self._strings[string_id] = string

    def probe(
        self,
        query_id: int,
        query: UncertainString,
        *,
        stats: JoinStatistics | None = None,
        tau: "TauProvider | float | None" = None,
    ) -> Iterator[tuple[int, bool, "float | None"]]:
        """Refine ``query`` against every added candidate, lazily.

        Yields ``(candidate_id, similar, probability)`` per candidate in
        insertion-rank order. The τ provider is re-read for each
        candidate, so consumers may tighten the threshold between pulls
        (the adaptive top-N loop does). Negative ``query_id``s mark
        transient queries: their frequency profiles stay probe-local.

        ``stats`` redirects this probe's recording to a per-call sink
        instead of :attr:`stats` — the serving layer answers concurrent
        requests over one shared engine, each request folding its own
        sink, so the shared attribute is never reassigned underneath a
        sibling thread. ``tau`` overrides the engine's threshold for
        this probe only: a float enables the constant-τ batch path, a
        callable is treated as an adaptive provider (scalar path).
        """
        run_stats = stats if stats is not None else self.stats
        if tau is None:
            provider = self.tau
            constant = self._constant_tau
        elif callable(tau):
            provider = tau
            constant = False
        else:
            threshold = float(tau)
            provider = lambda: threshold  # noqa: E731
            constant = True
        context = self.chain.context(query_id, query)
        candidates = self.source.probe(query, provider(), run_stats)
        # Store-backed string caches hydrate the whole candidate block
        # in one batched read instead of one miss per candidate.
        prefetch = getattr(self._strings, "prefetch", None)
        if prefetch is not None and len(candidates) >= 2:
            prefetch([candidate_id for candidate_id, _ in candidates])
        if constant and self.chain.batch_refine and len(candidates) >= 2:
            # Batch-refine path (DESIGN.md §6f): group the probe's
            # surviving candidates and run each filter stage as one
            # vectorized kernel call over the block. Results are
            # byte-identical to the scalar loop below.
            entries = [
                (candidate_id, self._strings[candidate_id], upper)
                for candidate_id, upper in candidates
            ]
            refined = self.chain.refine_block(
                context, entries, provider(), run_stats
            )
            for (candidate_id, _, _), (similar, probability) in zip(
                entries, refined
            ):
                yield candidate_id, similar, probability
            return
        for candidate_id, upper in candidates:
            similar, probability = self.chain.refine(
                context,
                candidate_id,
                self._strings[candidate_id],
                provider,
                run_stats,
                upper,
            )
            yield candidate_id, similar, probability

    def matches(
        self,
        query: UncertainString,
        query_id: int = -1,
        *,
        stats: JoinStatistics | None = None,
        tau: "TauProvider | float | None" = None,
    ) -> Iterator[SearchMatch]:
        """Stream the added strings similar to ``query`` under (k, τ).

        ``stats``/``tau`` are per-call overrides (see :meth:`probe`).
        """
        for candidate_id, similar, probability in self.probe(
            query_id, query, stats=stats, tau=tau
        ):
            if similar:
                yield SearchMatch(candidate_id, probability)

    def join(
        self,
        collection: Sequence[UncertainString],
        index_length_cap: int | None = None,
        order: "Sequence[int] | None" = None,
    ) -> Iterator[JoinPair]:
        """Stream the self-join of ``collection`` pair by pair.

        Visits strings in ascending (length, id) order — each string is
        probed against the already-added prefix, then added, so no pair
        is enumerated twice. Pairs are yielded as discovered (grouped by
        their later-visited string), not globally sorted.

        ``order`` supplies that visit order precomputed (it must be the
        ascending (length, id) permutation of ``collection``'s ids) —
        the store-backed driver passes the store's recorded order so the
        sort never hydrates the collection.

        ``index_length_cap`` makes strings longer than the cap
        *probe-only*: they query the index but are never added to it, so
        no pair between two over-cap strings is ever generated — the
        banded parallel driver uses this to skip the halo×halo pairs its
        neighbor band owns (and would otherwise evaluate redundantly).
        Pairs with at most one over-cap member are produced exactly as
        without the cap: the visit order is ascending by length, so every
        under-cap candidate is already indexed when an over-cap string
        probes.
        """
        if order is None:
            order = sorted(
                range(len(collection)), key=lambda i: (len(collection[i]), i)
            )
        for string_id in order:
            current = collection[string_id]
            for other_id, similar, probability in self.probe(string_id, current):
                if similar:
                    left, right = (
                        (other_id, string_id)
                        if other_id < string_id
                        else (string_id, other_id)
                    )
                    yield JoinPair(left, right, probability)
            if index_length_cap is None or len(current) <= index_length_cap:
                self.add(string_id, current)


def iter_join_pairs(
    collection: Sequence[UncertainString],
    config: JoinConfig,
    stats: JoinStatistics | None = None,
) -> Iterator[JoinPair]:
    """Stream a self-join's result pairs as they are discovered.

    The streaming form of :func:`repro.core.join.similarity_join`: same
    pairs and probabilities, yielded incrementally in discovery order
    instead of returned sorted. Serial only — set ``config.workers`` to
    1 (the batch driver handles banded parallelism).
    """
    if config.workers != 1:
        raise ConfigurationError(
            "iter_join_pairs streams the serial visit loop; "
            f"config.workers must be 1, got {config.workers}"
        )
    engine = JoinEngine(config, stats=stats)
    return engine.join(collection)


def iter_matches(
    collection: Sequence[UncertainString],
    query: UncertainString,
    config: JoinConfig,
    stats: JoinStatistics | None = None,
) -> Iterator[SearchMatch]:
    """Stream one-shot search hits (index built at call time).

    For repeated queries over one collection, build a
    :class:`~repro.core.search.SimilaritySearcher` instead.
    """
    engine = JoinEngine(config, stats=stats)
    order = sorted(range(len(collection)), key=lambda i: (len(collection[i]), i))
    for string_id in order:
        engine.add(string_id, collection[string_id])
    return engine.matches(query)
