"""Top-N similarity join: the N most probably similar pairs.

A (k, τ)-join needs a τ; when the right value is unknown, analysts often
want "the N most likely duplicates" instead. This adapter runs the
ordinary :class:`~repro.core.engine.JoinEngine` with an *adaptive*
:data:`~repro.core.pipeline.TauProvider`: τ starts at 0 and rises to the
N-th best probability found so far, so every stage — the index probe
(Theorem 2), frequency distance (Theorem 3), CDF bounds, and the
source's plumbed upper bound — prunes against a monotonically tightening
τ. Exactly the pruning logic the fixed-τ proof gives, applied to a
growing bound; no stage logic is duplicated here.
"""

from __future__ import annotations

import heapq
from typing import Any, Sequence

from repro.core.config import JoinConfig
from repro.core.engine import JoinEngine
from repro.core.results import JoinOutcome, JoinPair
from repro.core.stats import JoinStatistics
from repro.uncertain.string import UncertainString


def top_k_join(
    collection: "Sequence[UncertainString] | None",
    k: int,
    count: int,
    q: int = 3,
    config: JoinConfig | None = None,
    *,
    store: Any = None,
) -> JoinOutcome:
    """The ``count`` pairs with the highest ``Pr(ed <= k)`` (all > 0).

    Ties at the cut-off are broken arbitrarily. ``config`` may override
    pipeline knobs — including ``verification`` — with two caveats:
    ``tau`` is ignored (the threshold is adaptive), and every reported
    pair always carries its exact probability (ranking requires it), so
    ``report_probabilities=False`` is promoted to exact verification
    rather than skipping it. ``workers`` must be 1: the adaptive
    threshold makes the visit loop inherently sequential.

    ``store`` runs the same adaptive loop out of core over a prebuilt
    :class:`~repro.store.base.IndexStore` (pass ``collection=None``):
    identical pairs, bounded memory.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if (store is None) == (collection is None):
        raise ValueError(
            "top_k_join needs exactly one of collection or store"
        )
    base = config if config is not None else JoinConfig(k=k, tau=0.0, q=q)
    if base.k != k or base.q != q:
        raise ValueError("config.k / config.q must match the k / q arguments")
    if base.workers != 1:
        raise ValueError(
            "top_k_join does not support config.workers > 1: the adaptive "
            "threshold is shared mutable state across the visit loop, so "
            f"the join is inherently sequential (got workers={base.workers})"
        )

    if store is not None:
        total = len(store)
    else:
        assert collection is not None
        total = len(collection)
    stats = JoinStatistics(total_strings=total)
    # Min-heap of (probability, left, right); heap[0] is the adaptive cut.
    best: list[tuple[float, int, int]] = []

    def current_tau() -> float:
        return best[0][0] if len(best) == count else 0.0

    if store is not None:
        from repro.store.base import DEFAULT_CACHE_SIZE
        from repro.store.source import (
            StoreCollection,
            StoreContext,
            StoreStringCache,
        )

        cache_size = getattr(store, "cache_size", DEFAULT_CACHE_SIZE)
        cache = StoreStringCache(store, cache_size)
        engine = JoinEngine(
            base,
            stats=stats,
            tau=current_tau,
            force_exact=True,
            context=StoreContext(cache_size),
            store=store,
            store_cache=cache,
        )
        pair_iter = engine.join(
            StoreCollection(store, cache=cache),
            order=store.ids_in_visit_order(),
        )
    else:
        assert collection is not None
        engine = JoinEngine(
            base, stats=stats, tau=current_tau, force_exact=True
        )
        pair_iter = engine.join(collection)
    with stats.timer("total"):
        for pair in pair_iter:
            assert pair.probability is not None  # force_exact guarantees it
            heapq.heappush(best, (pair.probability, pair.left_id, pair.right_id))
            if len(best) > count:
                heapq.heappop(best)

    pairs = [
        JoinPair(left, right, probability)
        for probability, left, right in sorted(best, reverse=True)
    ]
    stats.result_pairs = len(pairs)
    return JoinOutcome(pairs=pairs, stats=stats)
