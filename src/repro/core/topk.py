"""Top-N similarity join: the N most probably similar pairs.

A (k, τ)-join needs a τ; when the right value is unknown, analysts often
want "the N most likely duplicates" instead. This extension runs the
paper's pipeline with an *adaptive* probability threshold: τ starts at 0
and rises to the N-th best probability found so far, so every filter
(Theorem 2, Theorem 3, CDF upper bounds) prunes against a monotonically
tightening τ — exactly the pruning logic the fixed-τ proof gives, applied
to a growing bound.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.core.config import JoinConfig
from repro.core.results import JoinOutcome, JoinPair
from repro.core.stats import JoinStatistics
from repro.filters.cdf import CdfBoundFilter
from repro.filters.frequency import FrequencyDistanceFilter, FrequencyProfile
from repro.index.inverted import SegmentInvertedIndex
from repro.uncertain.string import UncertainString
from repro.verify.trie import Trie, build_trie
from repro.verify.trie_verify import trie_verify


def top_k_join(
    collection: Sequence[UncertainString],
    k: int,
    count: int,
    q: int = 3,
    config: JoinConfig | None = None,
) -> JoinOutcome:
    """The ``count`` pairs with the highest ``Pr(ed <= k)`` (all > 0).

    Ties at the cut-off are broken arbitrarily. ``config`` may override
    pipeline knobs; its ``tau`` is ignored (the threshold is adaptive)
    and verification always computes exact probabilities.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    base = config if config is not None else JoinConfig(k=k, tau=0.0, q=q)
    if base.k != k or base.q != q:
        raise ValueError("config.k / config.q must match the k / q arguments")

    stats = JoinStatistics(total_strings=len(collection))
    index = (
        SegmentInvertedIndex(
            k=k,
            q=q,
            selection=base.selection,
            group_mode=base.group_mode,
            bound_mode=base.bound_mode,
        )
        if base.uses_qgram
        else None
    )
    frequency = FrequencyDistanceFilter(k) if base.uses_frequency else None
    cdf = CdfBoundFilter(k) if base.uses_cdf else None
    profiles: dict[int, FrequencyProfile] = {}

    def profile(string_id: int, string: UncertainString) -> FrequencyProfile:
        prof = profiles.get(string_id)
        if prof is None:
            prof = FrequencyProfile(string)
            profiles[string_id] = prof
        return prof

    # Min-heap of (probability, left, right); heap[0] is the adaptive cut.
    best: list[tuple[float, int, int]] = []

    def current_tau() -> float:
        return best[0][0] if len(best) == count else 0.0

    order = sorted(range(len(collection)), key=lambda i: (len(collection[i]), i))
    rank_to_id = {rank: string_id for rank, string_id in enumerate(order)}
    visited_by_length: dict[int, list[int]] = {}
    total = stats.timer("total").start()
    for rank, string_id in enumerate(order):
        current = collection[string_id]
        current_trie: Trie | None = None
        if index is not None:
            with stats.timer("qgram"):
                candidates = [c.string_id for c in index.query(current, current_tau())]
            stats.qgram_survivors += len(candidates)
        else:
            candidates = [
                other
                for length, ranks in visited_by_length.items()
                if abs(length - len(current)) <= k
                for other in ranks
            ]
            stats.length_survivors += len(candidates)
        for other_rank in sorted(candidates):
            other_id = rank_to_id[other_rank]
            other = collection[other_id]
            tau_now = current_tau()
            if frequency is not None:
                stats.frequency_checked += 1
                with stats.timer("frequency"):
                    decision = frequency.decide(
                        profile(string_id, current), profile(other_id, other), tau_now
                    )
                if decision.rejected:
                    continue
                stats.frequency_survivors += 1
            if cdf is not None:
                stats.cdf_checked += 1
                with stats.timer("cdf"):
                    decision = cdf.decide(current, other, tau_now)
                if decision.rejected:
                    stats.cdf_rejected += 1
                    continue
            stats.verifications += 1
            with stats.timer("verification"):
                if current_trie is None:
                    current_trie = build_trie(current)
                probability = trie_verify(current, other, k, left_trie=current_trie)
            if probability <= tau_now or probability <= 0.0:
                stats.false_candidates += 1
                continue
            stats.verification_hits += 1
            left, right = sorted((string_id, other_id))
            heapq.heappush(best, (probability, left, right))
            if len(best) > count:
                heapq.heappop(best)
        if index is not None:
            with stats.timer("index"):
                index.add(rank, current)
        visited_by_length.setdefault(len(current), []).append(rank)
    total.stop()

    pairs = [
        JoinPair(left, right, probability)
        for probability, left, right in sorted(best, reverse=True)
    ]
    stats.result_pairs = len(pairs)
    return JoinOutcome(pairs=pairs, stats=stats)
