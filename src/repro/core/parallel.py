"""Length-banded parallel join drivers.

The Pass-Join-style partition scheme makes length bands naturally
shard-able: a pair ``(R, S)`` can survive the length filter only when
``||R| - |S|| <= k``, so disjoint contiguous length ranges — each
extended by a k-wide *halo* of the next-longer strings — can be joined
independently and their results concatenated. MinJoin exploits the same
observation to parallelize edit-similarity joins; here each band runs
the ordinary sequential driver of :mod:`repro.core.join` /
:mod:`repro.core.join_two` under the fault-tolerant band executor
(:mod:`repro.core.executor`): one future per band, per-band
timeout/retries with in-process degradation, and optional atomic
checkpointing so a killed run resumes instead of restarting.

**Ownership rule** (every pair produced exactly once): a pair belongs to
the band that owns its *shorter* string, ties broken by the smaller id.
A band's task set is its owned strings plus the halo — strings whose
length is in ``(high, high + k]``. Pairs whose shorter string falls in
the halo are discarded by the band: the next band owns them. Ties in
length never straddle a band boundary because bands are unions of whole
length groups.

The merged pair list is *identical* to the serial driver's, including
reported probabilities: within a band, strings keep their global
(length, id) visit order, so each pair is refined with the same query /
candidate orientation — and therefore the same floats — as in the
serial loop. Bands are also *deterministic*, which is what makes them
sound units of retry and resume: re-running a band can only reproduce
the same pairs.

The R×S join shards the same way over the indexed (right) collection;
there each pair has exactly one right string, so band ownership of the
right string makes pairs unique without a discard step.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
from dataclasses import dataclass, replace
from typing import Any, Sequence

from repro.core.checkpoint import CheckpointStore, ShardCheckpointStore
from repro.core.config import JoinConfig
from repro.core.context import CollectionContext
from repro.core.dispatch import resolve_execution_backend, shard_slice
from repro.core.engine import SegmentIndexSource
from repro.core.executor import RetryPolicy
from repro.core.join import similarity_join
from repro.core.join_two import probe_join, similarity_join_two
from repro.core.results import JoinOutcome, JoinPair
from repro.core.search import SimilaritySearcher
from repro.core.stats import JoinStatistics
from repro.index.persistence import load_shard_index, save_shard_index
from repro.uncertain.parser import format_uncertain
from repro.uncertain.string import UncertainString
from repro.util.faults import FaultPlan

#: Below this many strings the banding and process-spawn overhead cannot
#: pay for itself; the drivers fall back to the serial path. Tests and
#: callers that want banding regardless pass ``min_parallel=0``.
MIN_PARALLEL_STRINGS = 64


@dataclass(frozen=True)
class LengthBand:
    """One shard of a length-banded join.

    ``low``/``high`` delimit the *owned* length range; ``member_ids``
    holds the ids (ascending) of every string the band's task must see —
    owned strings plus the k-wide halo ``(high, high + k]``.
    """

    index: int
    low: int
    high: int
    member_ids: tuple[int, ...]

    def owns_length(self, length: int) -> bool:
        """Whether a string of ``length`` is owned (not halo) here."""
        return self.low <= length <= self.high


def plan_length_bands(
    lengths: Sequence[int], workers: int, k: int
) -> list[LengthBand]:
    """Partition string lengths into at most ``workers`` contiguous bands.

    Whole length groups are assigned greedily so each band owns roughly
    ``len(lengths) / workers`` strings (quantile split over the sorted
    distinct lengths). Because a band is a union of complete length
    groups, two strings of equal length always share a band — the
    ownership tie-break by id therefore never crosses a band boundary.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    counts: dict[int, int] = {}
    for length in lengths:
        counts[length] = counts.get(length, 0) + 1
    distinct = sorted(counts)
    if not distinct:
        return []
    total = len(lengths)
    bounds: list[tuple[int, int]] = []
    band_low = distinct[0]
    accumulated = 0
    for position, length in enumerate(distinct):
        accumulated += counts[length]
        if position == len(distinct) - 1:
            bounds.append((band_low, length))
            break
        share = (len(bounds) + 1) * total / workers
        if accumulated >= share and len(bounds) < workers - 1:
            bounds.append((band_low, length))
            band_low = distinct[position + 1]
    bands = []
    for index, (low, high) in enumerate(bounds):
        member_ids = tuple(
            string_id
            for string_id, length in enumerate(lengths)
            if low <= length <= high + k
        )
        bands.append(LengthBand(index, low, high, member_ids))
    return bands


# ----------------------------------------------------------------------
# fork-shared worker state
# ----------------------------------------------------------------------

#: Per-process shared join state: ``(token, collections, contexts)``.
#: The parent publishes it before dispatch; band payloads then carry
#: only id lists + config. Fork workers inherit this module global for
#: free; spawn/forkserver workers receive it exactly once through the
#: pool initializer (one pickle per *worker*, not per band).
_SHARED: "tuple[int, tuple[Any, ...], tuple[Any, ...]] | None" = None

#: Monotone tokens so a stale band task can never silently read the
#: state of a different join running in the same process.
_TOKENS = itertools.count(1)


def _publish_shared(
    token: int, collections: tuple[Any, ...], contexts: tuple[Any, ...]
) -> None:
    global _SHARED
    _SHARED = (token, collections, contexts)


def _worker_init(
    token: int, state: "tuple[tuple[Any, ...], tuple[Any, ...]] | None"
) -> None:
    """Pool initializer: adopt the parent's shared collection state.

    Under the ``fork`` start method the module global is inherited at
    fork time and ``state`` is ``None``; under ``spawn``/``forkserver``
    the collections and feature contexts arrive here, pickled once per
    worker process.
    """
    if state is not None:
        _publish_shared(token, *state)


def _shared_state(token: int) -> tuple[tuple[Any, ...], tuple[Any, ...]]:
    if _SHARED is None or _SHARED[0] != token:
        have = _SHARED[0] if _SHARED is not None else None
        raise RuntimeError(
            "band task ran without its shared collection state "
            f"(want token {token}, have {have})"
        )
    return _SHARED[1], _SHARED[2]


def _pool_publication(
    token: int,
    collections: tuple[Any, ...],
    contexts: tuple[Any, ...],
    mp_context: Any,
) -> dict[str, Any]:
    """Publish shared state in-parent; return pool kwargs for run_bands.

    The in-process execution paths (``use_processes=False``, retry
    degradation) read the parent's module global directly; pool workers
    get it via fork inheritance or the initializer, never per band.
    """
    _publish_shared(token, collections, contexts)
    method = (
        mp_context.get_start_method()
        if mp_context is not None
        else multiprocessing.get_start_method()
    )
    state = None if method == "fork" else (collections, contexts)
    return {
        "initializer": _worker_init,
        "initargs": (token, state),
        "mp_context": mp_context,
    }


# ----------------------------------------------------------------------
# band tasks (module-level so ProcessPoolExecutor can pickle them)
# ----------------------------------------------------------------------


def _self_join_band(
    payload: tuple[int, int, tuple[int, ...], int, JoinConfig],
) -> tuple[int, list[JoinPair], JoinStatistics]:
    """Join one band's task set; keep only the pairs the band owns.

    The payload carries only ``(band, token, ids, owned_high, config)``
    — strings and per-string features come from the process-shared
    state, so nothing string-sized is pickled per band. Task strings
    are resolved in ascending original-id order, so local ids preserve
    the global (length, id) visit order and every kept pair is refined
    exactly as the serial driver would refine it.

    Halo strings (length above ``owned_high``) are probe-only: capping
    the engine's index at the owned length keeps halo×halo pairs — which
    the next band owns and this band would discard anyway — from ever
    being generated, instead of evaluating them through the full filter
    chain first. Owned×halo pairs are unaffected: every owned string
    precedes every halo string in the (length, id) visit order, so it is
    already indexed when the halo string probes.
    """
    band_index, token, original_ids, owned_high, config = payload
    (collection,), (context,) = _shared_state(token)
    # Store-backed collections expose bulk hydration: one batched read
    # for the band instead of per-string cache misses.
    take = getattr(collection, "take", None)
    strings = (
        list(take(original_ids))
        if take is not None
        else [collection[string_id] for string_id in original_ids]
    )
    outcome = similarity_join(
        strings,
        config,
        context=context.subcontext(original_ids),
        index_length_cap=owned_high,
    )
    kept: list[JoinPair] = []
    for pair in outcome.pairs:
        left_len = len(strings[pair.left_id])
        right_len = len(strings[pair.right_id])
        # Owner: shorter string, ties by smaller (local == original) id.
        owner_length = min(
            (left_len, pair.left_id), (right_len, pair.right_id)
        )[0]
        if owner_length <= owned_high:
            kept.append(
                JoinPair(
                    original_ids[pair.left_id],
                    original_ids[pair.right_id],
                    pair.probability,
                )
            )
    return band_index, kept, outcome.stats


#: Optional 6th element of a two-join payload: where this band's index
#: snapshot lives, plus the identity it must carry to be reusable.
SnapshotMeta = tuple[str, str, int, int]


def _two_join_band(
    payload: "tuple[int, int, tuple[int, ...], tuple[int, ...], JoinConfig] | tuple[int, int, tuple[int, ...], tuple[int, ...], JoinConfig, SnapshotMeta]",
) -> tuple[int, list[JoinPair], JoinStatistics]:
    """R×S band task: probe the owned right band with eligible left strings.

    Left strings probe as transient queries (their features stay
    probe-local), so only the indexed right band takes a feature
    subcontext from the shared state.

    Sharded runs append a :data:`SnapshotMeta` element
    ``(path, fingerprint, shard_index, shard_count)``: the band reloads
    its persisted segment index from ``path`` when a snapshot of
    exactly this join/shard/band exists (skipping re-segmentation on
    resume) and persists one after building otherwise. Non-shard
    payloads keep the historical 5-tuple shape.
    """
    band_index, token, left_ids, right_ids, config = payload[:5]
    snapshot: SnapshotMeta | None = payload[5] if len(payload) > 5 else None
    (left, right), (right_context,) = _shared_state(token)
    left_strings = [left[left_id] for left_id in left_ids]
    right_strings = [right[right_id] for right_id in right_ids]
    index = None
    if snapshot is not None and config.uses_qgram:
        path, fingerprint, shard_index, shard_count = snapshot
        try:
            index = load_shard_index(
                path,
                fingerprint=fingerprint,
                shard_index=shard_index,
                shard_count=shard_count,
                band=band_index,
            )
        except FileNotFoundError:
            index = None
    searcher = SimilaritySearcher(
        right_strings,
        config,
        context=right_context.subcontext(right_ids),
        index=index,
    )
    if (
        snapshot is not None
        and config.uses_qgram
        and index is None
        and isinstance(searcher.engine.source, SegmentIndexSource)
    ):
        path, fingerprint, shard_index, shard_count = snapshot
        save_shard_index(
            searcher.engine.source.index,
            path,
            fingerprint=fingerprint,
            shard_index=shard_index,
            shard_count=shard_count,
            band=band_index,
        )
    outcome = probe_join(
        searcher, left_strings, len(left_strings) + len(right_strings)
    )
    pairs = [
        JoinPair(left_ids[pair.left_id], right_ids[pair.right_id], pair.probability)
        for pair in outcome.pairs
    ]
    return band_index, pairs, outcome.stats


# ----------------------------------------------------------------------
# resilience wiring
# ----------------------------------------------------------------------


def _join_fingerprint(
    kind: str,
    config: JoinConfig,
    bands: Sequence[LengthBand],
    *collections: Sequence[UncertainString],
) -> str:
    """Digest identifying one join run for checkpoint compatibility.

    Covers the input collections (exact distributions), every
    result-affecting config knob, and the band plan — resuming with a
    different ``--workers`` (hence a different plan) must be rejected.
    Runtime-only knobs (retries, timeouts, fault injection) are
    deliberately excluded: they cannot change the output.
    """
    digest = hashlib.sha256()
    digest.update(kind.encode("utf-8"))
    knobs = (
        config.k,
        config.tau,
        config.q,
        config.filters,
        config.verification,
        config.selection,
        config.group_mode,
        config.bound_mode,
        config.report_probabilities,
        config.early_stop_verification,
    )
    digest.update(repr(knobs).encode("utf-8"))
    plan = [(band.low, band.high, band.member_ids) for band in bands]
    digest.update(repr(plan).encode("utf-8"))
    for collection in collections:
        for string in collection:
            digest.update(format_uncertain(string, precision=17).encode("utf-8"))
            digest.update(b"\n")
        digest.update(b"\x00")
    return digest.hexdigest()


def _resilience(
    config: JoinConfig,
    policy: RetryPolicy | None,
    faults: FaultPlan | None,
    run_dir: "str | None",
) -> tuple[RetryPolicy, FaultPlan, "str | None"]:
    """Resolve executor knobs: explicit arguments win over config fields."""
    if policy is None:
        policy = RetryPolicy(
            retries=config.retries, timeout=config.band_timeout
        )
    if faults is None:
        faults = FaultPlan.from_spec(config.fault_spec)
    if run_dir is None:
        run_dir = config.checkpoint_dir
    return policy, faults, run_dir


def _open_checkpoint(
    run_dir: "str | None",
    fingerprint_args: tuple,
    bands: Sequence[LengthBand],
    shard: "tuple[int, int] | None" = None,
    strings: int = 0,
    fingerprint: "str | None" = None,
) -> "tuple[CheckpointStore | None, str | None]":
    """Open the run's checkpoint store; returns ``(store, fingerprint)``.

    Flat layout for plain checkpointed runs; partitioned
    (:class:`ShardCheckpointStore`) when ``shard`` coordinates are
    given — then the shared ``run.json`` additionally pins the shard
    count and input size, and this shard's manifest records exactly the
    band indices it owns. A precomputed ``fingerprint`` skips the
    collection hash — the store-backed driver substitutes a digest the
    store already carries, so opening a checkpoint never hydrates the
    collection.
    """
    if run_dir is None:
        return None, None
    if fingerprint is None:
        kind, config, collections = fingerprint_args
        fingerprint = _join_fingerprint(kind, config, bands, *collections)
    if shard is None:
        store: CheckpointStore = CheckpointStore(run_dir)
        store.open(fingerprint, len(bands), strings=strings)
        return store, fingerprint
    shard_index, shard_count = shard
    shard_store = ShardCheckpointStore(run_dir, shard_index, shard_count)
    owned = list(shard_slice(len(bands), shard_index, shard_count))
    shard_store.open_shard(
        fingerprint, len(bands), owned, strings=strings
    )
    return shard_store, fingerprint


def _resolve_mp_context(config: JoinConfig, mp_context: Any) -> Any:
    """An explicit ``mp_context`` wins; else honor ``config.mp_start``."""
    if mp_context is not None or config.mp_start is None:
        return mp_context
    return multiprocessing.get_context(config.mp_start)


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------


def parallel_similarity_join(
    collection: Sequence[UncertainString],
    config: JoinConfig,
    use_processes: bool = True,
    min_parallel: int = MIN_PARALLEL_STRINGS,
    *,
    policy: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    run_dir: str | None = None,
    mp_context: Any = None,
) -> JoinOutcome:
    """Length-banded parallel self-join under the fault-tolerant executor.

    Shards the collection into ``config.workers`` contiguous length
    bands plus k-wide halos, joins each band with the serial driver, and
    deterministically merges pairs and statistics. The pair list —
    including probabilities — is identical to
    :func:`repro.core.join.similarity_join` on every input, with or
    without injected faults, retries, or a resumed checkpoint.

    ``policy``/``faults``/``run_dir`` override the corresponding
    ``config`` fields (``retries``/``band_timeout``, ``fault_spec``,
    ``checkpoint_dir``). With a run directory, completed bands are
    atomically persisted there and a re-run over the same inputs loads
    them instead of recomputing (the serial fast paths are skipped so
    every run of a checkpointed join goes through the bands).

    ``use_processes=False`` runs the band tasks in-process (same sharded
    code path, retry/fault semantics, and results; no pool); inputs
    smaller than ``min_parallel`` or yielding a single band take the
    serial driver directly unless checkpointing is on. ``mp_context``
    selects the multiprocessing start method (``None`` = platform
    default); results are identical under fork and spawn.

    Per-string features (frequency profiles, support alphabets,
    certainty fast-path data) are computed once here in the parent and
    published to every worker as process-shared state — band payloads
    ship only id lists and the config, so no string or profile is
    pickled per band.

    With ``config.shard = "i/N"`` the run executes only shard ``i``'s
    contiguous slice of an ``N × workers``-band plan
    (:class:`~repro.core.dispatch.ShardBackend`), persists it under
    ``run_dir/shard-i/``, and publishes/features only the strings that
    slice can touch; the returned outcome holds just this shard's pairs
    — :func:`repro.core.merge.merge_run` folds the N shard directories
    into the full, serial-identical result.
    """
    serial_config = replace(
        config,
        workers=1,
        checkpoint_dir=None,
        fault_spec=None,
        shard=None,
        mp_start=None,
    )
    policy, faults, run_dir = _resilience(config, policy, faults, run_dir)
    mp_context = _resolve_mp_context(config, mp_context)
    shard = config.shard_coordinates
    checkpointing = run_dir is not None
    if not checkpointing and (
        config.workers <= 1 or len(collection) < min_parallel
    ):
        return similarity_join(collection, serial_config)
    lengths = [len(string) for string in collection]
    # Every shard plans the full run: `workers` bands per shard, so the
    # plan (and the fingerprint over it) is a function of (input, k,
    # workers, N) that all N invocations and the merge agree on.
    plan_workers = config.workers * (shard[1] if shard is not None else 1)
    bands = plan_length_bands(lengths, plan_workers, config.k)
    if len(bands) <= 1 and not checkpointing:
        return similarity_join(collection, serial_config)
    if not bands:
        return similarity_join(collection, serial_config)

    checkpoint, _ = _open_checkpoint(
        run_dir,
        ("self", config, (collection,)),
        bands,
        shard=shard,
        strings=len(collection),
    )
    stats = JoinStatistics(total_strings=len(collection))
    total_timer = stats.timer("total").start()
    token = next(_TOKENS)
    shared_collection: Any = tuple(collection)
    feature_ids: "Sequence[int] | None" = None
    if shard is not None:
        # Publish only what this shard's bands can touch (owned + halo):
        # the per-shard memory footprint tracks the shard, not the
        # whole collection. Band tasks index the shared store by global
        # id, so a dict keyed by the needed ids is a drop-in.
        owned_bands = shard_slice(len(bands), *shard)
        needed = sorted(
            {
                string_id
                for band_position in owned_bands
                for string_id in bands[band_position].member_ids
            }
        )
        shared_collection = {
            string_id: collection[string_id] for string_id in needed
        }
        feature_ids = needed
    with stats.timer("features"):
        context = (
            CollectionContext.for_collection(
                shared_collection, build_profiles=config.uses_frequency
            )
            if feature_ids is None
            else CollectionContext.for_ids(
                collection, feature_ids, build_profiles=config.uses_frequency
            )
        )
    pool_kwargs = _pool_publication(
        token, (shared_collection,), (context,), mp_context
    )
    payloads = [
        (
            band.index,
            (band.index, token, band.member_ids, band.high, serial_config),
        )
        for band in bands
    ]
    backend = resolve_execution_backend(
        workers=config.workers, use_processes=use_processes, shard=shard
    )
    results = backend.execute(
        _self_join_band,
        payloads,
        policy=policy,
        stats=stats,
        faults=faults,
        checkpoint=checkpoint,
        **pool_kwargs,
    )

    pairs: list[JoinPair] = []
    for _, band_pairs, band_stats in results:
        pairs.extend(band_pairs)
        # Aggregate band CPU time under its own stage; wall clock is ours.
        stats.timer("bands").add(band_stats.seconds("total"))
        stats.merge(band_stats)
    pairs.sort()
    stats.result_pairs = len(pairs)
    total_timer.stop()
    return JoinOutcome(pairs=pairs, stats=stats)


def parallel_similarity_join_two(
    left: Sequence[UncertainString],
    right: Sequence[UncertainString],
    config: JoinConfig,
    use_processes: bool = True,
    min_parallel: int = MIN_PARALLEL_STRINGS,
    *,
    policy: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    run_dir: str | None = None,
    mp_context: Any = None,
) -> JoinOutcome:
    """Length-banded parallel R×S join under the fault-tolerant executor.

    The right (indexed) collection is sharded into contiguous length
    bands; each task indexes one band and probes it with the left
    strings whose length is within ``k`` of the band's owned range.
    Every right string lives in exactly one band, so each pair is
    produced exactly once and the merged, sorted pair list is identical
    to :func:`repro.core.join_two.similarity_join_two`. Resilience
    knobs, sharding, and worker-state publication behave exactly as in
    :func:`parallel_similarity_join`; only the right collection gets a
    shared feature context (left strings probe as transient queries).
    Sharded q-gram runs additionally persist each owned band's segment
    index (``shard-i/index-band-NNNNN.json``) so a resumed shard
    reloads instead of re-segmenting — see
    :mod:`repro.index.persistence`.
    """
    serial_config = replace(
        config,
        workers=1,
        checkpoint_dir=None,
        fault_spec=None,
        shard=None,
        mp_start=None,
    )
    policy, faults, run_dir = _resilience(config, policy, faults, run_dir)
    mp_context = _resolve_mp_context(config, mp_context)
    shard = config.shard_coordinates
    checkpointing = run_dir is not None
    if not checkpointing and (
        config.workers <= 1 or len(left) + len(right) < min_parallel
    ):
        return similarity_join_two(left, right, serial_config)
    if not left or not right:
        return similarity_join_two(left, right, serial_config)
    right_lengths = [len(string) for string in right]
    plan_workers = config.workers * (shard[1] if shard is not None else 1)
    bands = plan_length_bands(right_lengths, plan_workers, 0)
    if len(bands) <= 1 and not checkpointing:
        return similarity_join_two(left, right, serial_config)

    checkpoint, fingerprint = _open_checkpoint(
        run_dir,
        ("two", config, (left, right)),
        bands,
        shard=shard,
        strings=len(left) + len(right),
    )
    stats = JoinStatistics(total_strings=len(left) + len(right))
    total_timer = stats.timer("total").start()
    token = next(_TOKENS)
    shared_left: Any = tuple(left)
    shared_right: Any = tuple(right)
    eligible_by_band: dict[int, tuple[int, ...]] = {}
    for band in bands:
        eligible_by_band[band.index] = tuple(
            left_id
            for left_id, string in enumerate(left)
            if band.low - config.k <= len(string) <= band.high + config.k
        )
    if shard is not None:
        owned_bands = set(shard_slice(len(bands), *shard))
        needed_left = sorted(
            {
                left_id
                for band_position in owned_bands
                for left_id in eligible_by_band[bands[band_position].index]
            }
        )
        needed_right = sorted(
            {
                right_id
                for band_position in owned_bands
                for right_id in bands[band_position].member_ids
            }
        )
        shared_left = {left_id: left[left_id] for left_id in needed_left}
        shared_right = {right_id: right[right_id] for right_id in needed_right}
        with stats.timer("features"):
            right_context = CollectionContext.for_ids(
                right, needed_right, build_profiles=config.uses_frequency
            )
    else:
        with stats.timer("features"):
            right_context = CollectionContext.for_collection(
                shared_right, build_profiles=config.uses_frequency
            )
    pool_kwargs = _pool_publication(
        token, (shared_left, shared_right), (right_context,), mp_context
    )
    payloads = []
    for band in bands:
        entry: tuple[Any, ...] = (
            band.index,
            token,
            eligible_by_band[band.index],
            band.member_ids,
            serial_config,
        )
        if shard is not None and isinstance(checkpoint, ShardCheckpointStore):
            assert fingerprint is not None
            entry = entry + (
                (
                    str(checkpoint.index_snapshot_path(band.index)),
                    fingerprint,
                    shard[0],
                    shard[1],
                ),
            )
        payloads.append((band.index, entry))
    backend = resolve_execution_backend(
        workers=config.workers, use_processes=use_processes, shard=shard
    )
    results = backend.execute(
        _two_join_band,
        payloads,
        policy=policy,
        stats=stats,
        faults=faults,
        checkpoint=checkpoint,
        **pool_kwargs,
    )

    pairs: list[JoinPair] = []
    for _, band_pairs, band_stats in results:
        pairs.extend(band_pairs)
        stats.timer("bands").add(band_stats.seconds("total"))
        stats.merge(band_stats)
    pairs.sort()
    stats.result_pairs = len(pairs)
    total_timer.stop()
    return JoinOutcome(pairs=pairs, stats=stats)
