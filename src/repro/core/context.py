"""Per-collection feature contexts: pay per-string preprocessing once.

The paper's whole design assumes per-string work is **index-resident**:
Section 5's frequency preprocessing is "stored alongside the index",
Section 6's DPs reuse per-position distributions, and PASS-JOIN-style
segment indexing amortizes partitioning over the collection. This
module is that discipline made explicit: a :class:`CollectionContext`
owns one immutable :class:`StringFeatures` per string id — frequency
profile, support alphabet (frozenset + sorted tuple), the
certain-string fast-path flag with its materialized text, and
agreement-ready per-position ``(chars, probs)`` arrays — computed at
most once per collection and shared by every filter stage, engine, and
(via fork or a single per-worker pickle) every parallel band worker.

Ids follow the engine convention: non-negative ids are collection
strings whose features persist for the context's lifetime; negative
pseudo-ids are transient queries whose features are built fresh per
call and owned by the caller (the per-probe ``QueryContext``).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.filters.frequency import FrequencyProfile
from repro.uncertain.string import UncertainString


class StringFeatures:
    """Immutable per-string features shared by the filter kernels.

    Cheap features (length, certainty flag, materialized certain text,
    per-position arrays) are computed at construction; the frequency
    profile and support alphabet are built lazily on first use and
    cached — :meth:`ensure_profile` forces them for contexts that are
    published to worker processes.
    """

    __slots__ = (
        "string",
        "length",
        "is_certain",
        "certain_text",
        "position_chars",
        "position_probs",
        "_profile",
        "_support",
        "_sorted_support",
        "_native_pack",
    )

    def __init__(self, string: UncertainString) -> None:
        self.string = string
        positions = string.positions
        self.length = len(positions)
        self.is_certain = all(pos.is_certain for pos in positions)
        #: The single possible world, or ``None`` for uncertain strings.
        self.certain_text: str | None = (
            "".join(pos.top for pos in positions) if self.is_certain else None
        )
        #: Agreement-ready arrays: ``position_chars[i]`` / ``position_probs[i]``
        #: are the support and probabilities of position ``i``, most
        #: probable first (the layout ``UncertainPosition.agreement`` walks).
        self.position_chars: tuple[tuple[str, ...], ...] = tuple(
            pos.chars for pos in positions
        )
        self.position_probs: tuple[tuple[float, ...], ...] = tuple(
            pos.probs for pos in positions
        )
        self._profile: FrequencyProfile | None = None
        self._support: frozenset[str] | None = None
        self._sorted_support: tuple[str, ...] | None = None
        #: Opaque cache for the optional native backend
        #: (:mod:`repro.filters._native`): the string's C-marshalled
        #: agreement arrays, built lazily on first native kernel use.
        #: Always ``None`` on the pure-python and numpy paths.
        self._native_pack: object | None = None

    @property
    def profile(self) -> FrequencyProfile | None:
        """The cached frequency profile, or ``None`` if not built yet."""
        return self._profile

    def set_profile(self, profile: FrequencyProfile) -> None:
        """Install an externally built profile (the pipeline's hook)."""
        self._profile = profile

    def ensure_profile(self) -> FrequencyProfile:
        """The Section 5 frequency profile, built on first use."""
        if self._profile is None:
            self._profile = FrequencyProfile(self.string)
        return self._profile

    @property
    def support(self) -> frozenset[str]:
        """Characters with positive occurrence probability anywhere."""
        if self._support is None:
            if self._profile is not None:
                self._support = self._profile.chars()
            else:
                self._support = frozenset(
                    char for chars in self.position_chars for char in chars
                )
        return self._support

    @property
    def sorted_support(self) -> tuple[str, ...]:
        """The support alphabet as a cached ascending tuple."""
        if self._sorted_support is None:
            if self._profile is not None:
                self._sorted_support = self._profile.sorted_chars
            else:
                self._sorted_support = tuple(sorted(self.support))
        return self._sorted_support


class CollectionContext:
    """id → :class:`StringFeatures` for one collection (index-resident).

    Features of non-negative ids are computed at most once and persist
    for the context's lifetime; negative pseudo-ids (transient queries)
    always yield a fresh object the caller owns. The context is what
    the parallel driver publishes to workers — build it eagerly with
    :meth:`for_collection` so forked/spawned workers inherit finished
    profiles instead of rebuilding halo strings per band.
    """

    __slots__ = ("_features",)

    def __init__(
        self, features: Mapping[int, StringFeatures] | None = None
    ) -> None:
        self._features: dict[int, StringFeatures] = (
            dict(features) if features is not None else {}
        )

    @classmethod
    def for_collection(
        cls,
        collection: Sequence[UncertainString],
        build_profiles: bool = True,
    ) -> "CollectionContext":
        """Eagerly build features (ids = positions in ``collection``).

        ``build_profiles`` forces the Section 5 frequency profiles too;
        pass ``False`` for pipelines without the frequency stage.
        """
        context = cls()
        for string_id, string in enumerate(collection):
            features = StringFeatures(string)
            if build_profiles:
                features.ensure_profile()
            context._features[string_id] = features
        return context

    @classmethod
    def for_ids(
        cls,
        collection: Sequence[UncertainString],
        ids: Iterable[int],
        build_profiles: bool = True,
    ) -> "CollectionContext":
        """Eagerly build features for a subset of collection positions.

        The sharded parallel driver publishes only the strings its
        bands can touch (owned + halo); building features for just
        those ``ids`` keeps the per-shard footprint proportional to the
        shard, not the collection. Features stay keyed by the *global*
        position, so :meth:`subcontext` re-keying works unchanged.
        """
        context = cls()
        for string_id in ids:
            features = StringFeatures(collection[string_id])
            if build_profiles:
                features.ensure_profile()
            context._features[string_id] = features
        return context

    def __len__(self) -> int:
        return len(self._features)

    def __contains__(self, string_id: int) -> bool:
        return string_id in self._features

    def features(self, string_id: int, string: UncertainString) -> StringFeatures:
        """The features of ``string`` under ``string_id`` (cached for
        non-negative ids, fresh for negative pseudo-ids)."""
        if string_id < 0:
            return StringFeatures(string)
        features = self._features.get(string_id)
        if features is None:
            features = StringFeatures(string)
            self._features[string_id] = features
        return features

    def cached(self, string_id: int) -> StringFeatures | None:
        """Already-computed features, or ``None`` (never builds)."""
        return self._features.get(string_id)

    def subcontext(self, id_map: Iterable[int]) -> "CollectionContext":
        """A view for re-keyed ids: local id ``i`` → features of global
        ``id_map[i]``. Missing globals are built lazily on first use by
        the subcontext itself. This is how band workers translate the
        shared collection-wide context into their band-local id space
        without copying or rebuilding any feature."""
        return CollectionContext(
            {
                local_id: features
                for local_id, global_id in enumerate(id_map)
                if (features := self._features.get(global_id)) is not None
            }
        )
