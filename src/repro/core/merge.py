"""Fold a (sharded or flat) checkpoint run directory into one result.

The counterpart of :class:`~repro.core.dispatch.ShardBackend`: after N
independent invocations (``repro-join join --shard i/N --resume DIR``)
have each persisted their slice of the band plan,
:func:`merge_run` reads the shared ``run.json``, validates every
shard's manifest and checkpoints, and folds the band results exactly
the way the single-process driver folds them — same pair ordering,
same statistics merge — so the merged outcome is byte-identical to a
serial run of the same join.

Merge invariants, each enforced loudly:

* every shard directory named by the run manifest exists and carries a
  manifest (:class:`~repro.core.errors.ShardIncompleteError` otherwise);
* every shard manifest agrees with ``run.json`` on fingerprint, band
  count, and decomposition
  (:class:`~repro.core.errors.CheckpointMismatchError` otherwise);
* shard ownership is disjoint and covers the full band plan —
  overlapping ownership means two decompositions got mixed and is a
  mismatch, a coverage gap is incompleteness;
* every owned band has a checkpoint that itself carries the run's
  fingerprint and its shard's index
  (:class:`~repro.core.errors.CheckpointCorruptError` /
  ``CheckpointMismatchError`` from the store's validating loader) —
  a truncated or foreign file never merges silently.

A flat (non-sharded) run directory merges too: the same function folds
its ``band-NNNNN.ckpt`` files, so ``repro-join merge`` doubles as an
offline "collect a finished --resume run" step.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.checkpoint import (
    BandResult,
    CheckpointStore,
    ShardCheckpointStore,
    read_manifest_document,
)
from repro.core.errors import (
    CheckpointCorruptError,
    CheckpointMismatchError,
    ShardIncompleteError,
)
from repro.core.results import JoinOutcome, JoinPair
from repro.core.stats import JoinStatistics


def _load_shard_results(
    run_dir: Path,
    fingerprint: str,
    bands: int,
    shards: int,
) -> list[BandResult]:
    """Validate and load every shard's owned bands."""
    results: list[BandResult] = []
    owner_of: dict[int, int] = {}
    for shard_index in range(shards):
        store = ShardCheckpointStore(run_dir, shard_index, shards)
        store.expected_fingerprint = fingerprint
        manifest_path = store.shard_manifest_path
        if not manifest_path.exists():
            raise ShardIncompleteError(
                str(run_dir),
                shard_index,
                (),
                f"no manifest at {manifest_path}; "
                f"has `--shard {shard_index}/{shards}` run?",
            )
        document = read_manifest_document(manifest_path)
        if (
            document.get("fingerprint") != fingerprint
            or document.get("shard") != shard_index
            or document.get("shards") != shards
            or document.get("bands") != bands
        ):
            raise CheckpointMismatchError(
                str(manifest_path),
                "shard manifest disagrees with run.json (fingerprint, "
                "coordinates, or band count); the directory mixes "
                "different joins or decompositions",
            )
        owned = document.get("owned")
        if not isinstance(owned, list) or not all(
            isinstance(band, int) and 0 <= band < bands for band in owned
        ):
            raise CheckpointCorruptError(
                str(manifest_path), "malformed owned-bands list"
            )
        for band in owned:
            if band in owner_of:
                raise CheckpointMismatchError(
                    str(manifest_path),
                    f"band {band} is claimed by shard {owner_of[band]} AND "
                    f"shard {shard_index}; overlapping ownership means the "
                    "directory mixes two shard plans",
                )
            owner_of[band] = shard_index
        completed = set(store.completed_bands())
        missing = tuple(sorted(set(owned) - completed))
        if missing:
            raise ShardIncompleteError(
                str(run_dir),
                shard_index,
                missing,
                f"bands {list(missing)} have no checkpoint yet; "
                "re-run this shard to completion before merging",
            )
        for band in owned:
            results.append(store.load(band))
    uncovered = tuple(sorted(set(range(bands)) - set(owner_of)))
    if uncovered:
        raise ShardIncompleteError(
            str(run_dir),
            None,
            uncovered,
            f"bands {list(uncovered)} are owned by no shard manifest; "
            "the run directory does not cover the full band plan",
        )
    return results


def _load_flat_results(
    run_dir: Path, store: CheckpointStore, bands: int
) -> list[BandResult]:
    """Load a non-sharded (flat ``--resume``) run's bands."""
    completed = set(store.completed_bands())
    missing = tuple(sorted(set(range(bands)) - completed))
    if missing:
        raise ShardIncompleteError(
            str(run_dir),
            None,
            missing,
            f"bands {list(missing)} have no checkpoint yet; "
            "re-run the join to completion before merging",
        )
    return [store.load(band) for band in range(bands)]


def merge_run(run_dir: str | Path) -> JoinOutcome:
    """Fold a completed run directory into the final :class:`JoinOutcome`.

    ``run_dir`` is the directory all shards were pointed at (or a flat
    ``--resume`` directory). The fold replicates the parallel driver's:
    per-band pair lists concatenated then sorted, band statistics
    merged (band CPU time aggregated under the ``bands`` timer),
    ``result_pairs``/``total_strings`` set from the merged whole — so
    the outcome equals what one process running every band would have
    returned, byte for byte.
    """
    root = Path(run_dir)
    manifest = root / "run.json"
    if not manifest.exists():
        raise ShardIncompleteError(
            str(root),
            None,
            (),
            "no run.json manifest; this is not a checkpoint run directory "
            "(or no shard has opened it yet)",
        )
    document = read_manifest_document(manifest)
    fingerprint = document.get("fingerprint")
    bands = document.get("bands")
    shards = document.get("shards")
    if not isinstance(fingerprint, str) or not isinstance(bands, int):
        raise CheckpointCorruptError(
            str(manifest), "run manifest lacks fingerprint/bands"
        )
    strings = document.get("strings")
    stats = JoinStatistics(
        total_strings=strings if isinstance(strings, int) else 0
    )
    total_timer = stats.timer("total").start()
    if shards is None:
        results = _load_flat_results(root, CheckpointStore(root), bands)
    elif isinstance(shards, int) and shards >= 1:
        results = _load_shard_results(root, fingerprint, bands, shards)
    else:
        raise CheckpointCorruptError(
            str(manifest), f"malformed shards field {shards!r}"
        )
    results.sort(key=lambda result: result[0])
    pairs: list[JoinPair] = []
    for _, band_pairs, band_stats in results:
        pairs.extend(band_pairs)
        stats.timer("bands").add(band_stats.seconds("total"))
        stats.merge(band_stats)
    pairs.sort()
    stats.result_pairs = len(pairs)
    total_timer.stop()
    return JoinOutcome(pairs=pairs, stats=stats)
