"""Fault-tolerant band execution: futures, retries, timeouts, checkpoints.

The banded parallel join makes length bands natural *fault domains*:
each band is independent and deterministic, so a crashed, hung, or
corrupted band can be re-dispatched alone while every other band's
result is kept. :func:`run_bands` replaces the old all-or-nothing
``pool.map`` with that policy:

* **future per band** — one ``ProcessPoolExecutor`` future per band, so
  a single worker death no longer discards completed bands;
* **per-band timeout** — a worker-side ``SIGALRM`` deadline (raising
  :class:`~repro.core.errors.BandTimeoutError` inside the band call),
  a cooperative :mod:`repro.core.deadline` scope for threads where the
  signal cannot arm (server threads driving the executor), and a
  parent-side backstop for workers too wedged to take a signal;
* **bounded retries with exponential backoff** — each failed band is
  resubmitted up to ``RetryPolicy.retries`` times; a broken pool is
  rebuilt between rounds;
* **per-band degradation** — a band that exhausts its retries runs once
  more *in-process* with no timeout; only if that also fails does the
  join abort, with :class:`~repro.core.errors.WorkerCrashError`
  chaining the original cause;
* **fault accounting** — every event lands in ``JoinStatistics`` stage
  counters: ``fault.retried``, ``fault.degraded``, ``fault.timeout``,
  plus ``fault.crashed``, ``fault.corrupt``, ``fault.resumed`` and
  ``fault.pool_unavailable``;
* **checkpoint/resume** — with a :class:`CheckpointStore`, each
  completed band is atomically persisted (tmp file + ``os.replace``,
  versioned header) and a later run over the same inputs loads it
  instead of recomputing, producing byte-identical output.

Fault injection (:mod:`repro.util.faults`) hooks into the single
``_band_call`` wrapper every execution path shares, so the same
deterministic plan exercises the pool path, the in-process path, the
retry loop, and degradation.
"""

from __future__ import annotations

import hashlib
import signal
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

# Checkpoint persistence lives in repro.core.checkpoint; the re-exports
# keep the historical ``from repro.core.executor import CheckpointStore``
# import path working.
from repro.core.checkpoint import (  # noqa: F401  (compat re-exports)
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    BandResult,
    CheckpointStore,
    ShardCheckpointStore,
    _atomic_write_bytes,
)
from repro.core.deadline import Deadline, deadline_scope
from repro.core.dispatch import BandTask, effective_pool_width
from repro.core.errors import (
    BandTimeoutError,
    ConfigurationError,
    CorruptResultError,
    DeadlineExceededError,
    WorkerCrashError,
)
from repro.core.stats import JoinStatistics
from repro.util.faults import FaultPlan, inject

#: Sentinel head of the garbage tuple a ``corrupt`` fault returns.
_CORRUPT_SENTINEL = "__corrupt-band-result__"


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/timeout/backoff knobs of the band executor.

    ``retries`` counts *re-dispatches*: a band gets ``retries + 1``
    dispatched attempts, then one in-process degraded attempt.
    ``timeout`` is the per-band deadline in seconds (``None`` = no
    limit); the degraded attempt always runs without a deadline.
    Backoff before re-dispatch ``n`` (1-based) is
    ``backoff * backoff_factor ** (n - 1)`` seconds; ``sleep`` is
    injectable so tests can run the schedule without waiting.

    ``jitter`` desynchronizes bands that failed for a shared cause
    (e.g. a briefly unreachable resource) and would otherwise hammer it
    again in lockstep: each band's backoff is stretched by up to
    ``jitter`` of itself, by a *deterministic* fraction keyed on
    ``(jitter_seed, band_index, attempt)`` — runs stay reproducible,
    and re-runs of a flaky band follow the identical schedule. The
    default ``jitter=0.0`` preserves the historical exact timings.
    """

    retries: int = 2
    timeout: float | None = None
    backoff: float = 0.05
    backoff_factor: float = 2.0
    sleep: Callable[[float], None] = time.sleep
    jitter: float = 0.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigurationError(
                f"retries must be non-negative, got {self.retries}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(
                f"timeout must be positive or None, got {self.timeout}"
            )
        if self.backoff < 0 or self.backoff_factor < 1.0:
            raise ConfigurationError(
                "backoff must be >= 0 and backoff_factor >= 1, got "
                f"{self.backoff}/{self.backoff_factor}"
            )
        if self.jitter < 0:
            raise ConfigurationError(
                f"jitter must be non-negative, got {self.jitter}"
            )

    def jitter_fraction(self, band_index: int, attempt: int) -> float:
        """Deterministic uniform-ish fraction in ``[0, 1)`` per retry.

        Hash-derived (sha256 of ``seed:band:attempt``) rather than
        ``random``-derived so the value depends only on its key — no
        global RNG state, identical across processes and re-runs.
        """
        digest = hashlib.sha256(
            f"{self.jitter_seed}:{band_index}:{attempt}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def delay(self, attempt: int, band_index: int = 0) -> float:
        """Backoff before re-dispatching after failed 0-based ``attempt``."""
        base = self.backoff * self.backoff_factor**attempt
        if self.jitter == 0.0:
            return base
        return base * (
            1.0 + self.jitter * self.jitter_fraction(band_index, attempt)
        )


# ----------------------------------------------------------------------
# band call wrapper (runs in workers — everything here must pickle)
# ----------------------------------------------------------------------


@contextmanager
def _deadline(band_index: int, timeout: float | None) -> Iterator[None]:
    """Raise :class:`BandTimeoutError` inside the call after ``timeout``.

    Two enforcement layers, armed together:

    * ``SIGALRM``/``setitimer`` — preemptive, but it only arms in the
      main thread of a process on platforms with the signal (pool
      workers run tasks in their main thread, so the pool path always
      has it);
    * a cooperative :class:`~repro.core.deadline.Deadline` scope — the
      engine's refinement loop checks it per candidate, so the timeout
      still fires when the band is driven from a non-main thread (a
      server worker, the in-process degradation path of a threaded
      host). Before this fallback existed the off-main-thread case
      silently became a no-op and only the parent-side backstop (pool
      path only) bounded the band.

    Either layer's expiry surfaces as the same
    :class:`BandTimeoutError`, so retry/degradation accounting cannot
    tell them apart.
    """
    if timeout is None:
        yield
        return
    signal_usable = (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )

    def _on_alarm(signum: int, frame: object) -> None:
        raise BandTimeoutError(band_index, timeout)

    previous: Any = None
    if signal_usable:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        with deadline_scope(Deadline(timeout)):
            yield
    except DeadlineExceededError as exc:
        raise BandTimeoutError(band_index, timeout) from exc
    finally:
        if signal_usable:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)


def _band_call(
    task: BandTask,
    band_index: int,
    payload: Any,
    attempt: int,
    timeout: float | None,
    faults: FaultPlan | None,
) -> Any:
    """One attempt at one band: deadline + fault hook + the task itself."""
    fault = faults.fault_for(band_index, attempt) if faults else None
    with _deadline(band_index, timeout):
        if fault is not None:
            if fault.kind == "corrupt":
                return (_CORRUPT_SENTINEL, band_index, attempt)
            inject(fault, attempt)
        return task(payload)


def _validate_result(result: Any, band_index: int) -> BandResult:
    """Check a band call's return value; garbage raises CorruptResultError."""
    if (
        not isinstance(result, tuple)
        or len(result) != 3
        or result[0] != band_index
        or not isinstance(result[1], list)
        or not isinstance(result[2], JoinStatistics)
    ):
        raise CorruptResultError(
            band_index,
            f"band task returned a malformed result ({type(result).__name__})",
        )
    return result


# ----------------------------------------------------------------------
# orchestration
# ----------------------------------------------------------------------


def _record_failure(
    exc: BaseException, stats: JoinStatistics, *, backstop: bool = False
) -> None:
    """Credit one failed attempt to the right ``fault.*`` counter."""
    if backstop or isinstance(exc, (BandTimeoutError, FuturesTimeoutError)):
        stats.record("fault", "timeout")
    elif isinstance(exc, CorruptResultError):
        stats.record("fault", "corrupt")
    else:
        stats.record("fault", "crashed")


def _degraded_run(
    task: BandTask,
    band_index: int,
    payload: Any,
    policy: RetryPolicy,
    faults: FaultPlan | None,
) -> BandResult:
    """The last-resort attempt: in-process, no deadline.

    A failure here is terminal — the band is deterministic, so if it
    cannot complete in the parent either, the join must abort.
    """
    attempt = policy.retries + 1
    try:
        result = _band_call(task, band_index, payload, attempt, None, faults)
        return _validate_result(result, band_index)
    except Exception as exc:
        raise WorkerCrashError(
            band_index,
            attempt + 1,
            f"in-process degraded execution also failed: {exc}",
        ) from exc


def _finish_in_process(
    task: BandTask,
    band_index: int,
    payload: Any,
    first_attempt: int,
    policy: RetryPolicy,
    stats: JoinStatistics,
    faults: FaultPlan | None,
) -> BandResult:
    """Run one band's remaining attempts (then degradation) in-process."""
    for attempt in range(first_attempt, policy.retries + 1):
        try:
            result = _band_call(
                task, band_index, payload, attempt, policy.timeout, faults
            )
            return _validate_result(result, band_index)
        except Exception as exc:
            _record_failure(exc, stats)
        if attempt < policy.retries:
            stats.record("fault", "retried")
            policy.sleep(policy.delay(attempt, band_index))
    stats.record("fault", "degraded")
    return _degraded_run(task, band_index, payload, policy, faults)


def _run_pool_rounds(
    task: BandTask,
    pending: list[tuple[int, Any]],
    workers: int,
    policy: RetryPolicy,
    stats: JoinStatistics,
    faults: FaultPlan | None,
    complete: Callable[[int, BandResult], None],
    initializer: Callable[..., None] | None = None,
    initargs: tuple[Any, ...] = (),
    mp_context: Any = None,
) -> None:
    """Dispatch bands to a process pool, one submission round per attempt.

    Failures within a round are collected and re-dispatched together in
    the next round (after one backoff sleep covering the longest
    scheduled delay); a broken pool is torn down and rebuilt between
    rounds. When the platform cannot spawn workers at all, the
    remaining bands finish in-process with identical semantics.
    """
    queue: list[tuple[int, Any, int]] = [
        (band_index, payload, 0) for band_index, payload in pending
    ]
    backstop = None if policy.timeout is None else policy.timeout * 2 + 15.0
    process_mode = True
    while queue:
        if process_mode:
            pool: ProcessPoolExecutor | None = None
            futures: list[tuple[Future[Any], int, Any, int]] = []
            try:
                # The band *plan* (and hence results and checkpoints) is
                # keyed to `workers`; only the pool width is clamped.
                pool = ProcessPoolExecutor(
                    max_workers=effective_pool_width(workers, len(queue)),
                    mp_context=mp_context,
                    initializer=initializer,
                    initargs=initargs,
                )
                for band_index, payload, attempt in queue:
                    futures.append(
                        (
                            pool.submit(
                                _band_call,
                                task,
                                band_index,
                                payload,
                                attempt,
                                policy.timeout,
                                faults,
                            ),
                            band_index,
                            payload,
                            attempt,
                        )
                    )
            except (BrokenProcessPool, OSError, RuntimeError):
                # The platform refuses to run worker processes (sandbox
                # without fork, pool broken at submit time): degrade the
                # whole run to in-process execution, once, loudly.
                stats.record("fault", "pool_unavailable")
                process_mode = False
                if pool is not None:
                    pool.shutdown(wait=False, cancel_futures=True)
                continue
        if not process_mode:
            for band_index, payload, attempt in queue:
                complete(
                    band_index,
                    _finish_in_process(
                        task, band_index, payload, attempt, policy, stats, faults
                    ),
                )
            return

        next_queue: list[tuple[int, Any, int]] = []
        for future, band_index, payload, attempt in futures:
            try:
                result = future.result(timeout=backstop)
                complete(band_index, _validate_result(result, band_index))
                continue
            except FuturesTimeoutError as exc:
                # Parent-side backstop: the worker ignored its own
                # deadline — treat the pool as wedged.
                _record_failure(exc, stats, backstop=True)
            except Exception as exc:
                _record_failure(exc, stats)
            if attempt < policy.retries:
                stats.record("fault", "retried")
                next_queue.append((band_index, payload, attempt + 1))
            else:
                stats.record("fault", "degraded")
                complete(
                    band_index,
                    _degraded_run(task, band_index, payload, policy, faults),
                )
        # Abandon rather than join a possibly-wedged pool; workers of a
        # healthy pool exit on their own once their queues drain.
        assert pool is not None
        pool.shutdown(wait=False, cancel_futures=True)
        if next_queue:
            policy.sleep(
                max(
                    policy.delay(attempt - 1, band_index)
                    for band_index, _, attempt in next_queue
                )
            )
        queue = next_queue


def run_bands(
    task: BandTask,
    payloads: Sequence[tuple[int, Any]],
    *,
    workers: int,
    use_processes: bool = True,
    policy: RetryPolicy | None = None,
    stats: JoinStatistics | None = None,
    faults: FaultPlan | None = None,
    checkpoint: CheckpointStore | None = None,
    initializer: Callable[..., None] | None = None,
    initargs: tuple[Any, ...] = (),
    mp_context: Any = None,
) -> list[BandResult]:
    """Execute band ``payloads`` fault-tolerantly; results sorted by band.

    Each payload is ``(band_index, payload)`` and ``task(payload)`` must
    return ``(band_index, pairs, stats)`` for that band. With a
    ``checkpoint`` store, already-persisted bands are loaded instead of
    executed (counted as ``fault.resumed``) and every freshly completed
    band is persisted before the next one is awaited, so a killed run
    loses at most the bands still in flight.

    ``initializer``/``initargs``/``mp_context`` are forwarded to every
    :class:`ProcessPoolExecutor` the pool path builds (including pools
    rebuilt between retry rounds) — the parallel driver uses them to
    publish the shared collection state to each worker exactly once.
    They do not apply to the in-process paths, which see the parent's
    module globals directly.

    Raises :class:`WorkerCrashError` when a band fails its dispatched
    attempts *and* the in-process degraded attempt;
    :class:`CheckpointCorruptError` when a checkpoint exists but cannot
    be read back.
    """
    if policy is None:
        policy = RetryPolicy()
    if stats is None:
        stats = JoinStatistics()
    results: dict[int, BandResult] = {}

    def complete(band_index: int, result: BandResult) -> None:
        results[band_index] = result
        if checkpoint is not None:
            checkpoint.save(band_index, result[1], result[2])

    pending: list[tuple[int, Any]] = []
    for band_index, payload in payloads:
        cached = (
            checkpoint.load_if_present(band_index)
            if checkpoint is not None
            else None
        )
        if cached is not None:
            stats.record("fault", "resumed")
            results[band_index] = cached
        else:
            pending.append((band_index, payload))

    if use_processes and workers > 1 and len(pending) > 1:
        _run_pool_rounds(
            task,
            pending,
            workers,
            policy,
            stats,
            faults,
            complete,
            initializer=initializer,
            initargs=initargs,
            mp_context=mp_context,
        )
    else:
        for band_index, payload in pending:
            complete(
                band_index,
                _finish_in_process(
                    task, band_index, payload, 0, policy, stats, faults
                ),
            )
    return [results[band_index] for band_index in sorted(results)]
