"""Join configuration and the paper's algorithm variants.

The Section 7 experiments compare variants named by which filters they
use, applied in increasing order of overhead: **Q** = q-gram filtering
(through the inverted segment index), **F** = frequency-distance
filtering, **C** = CDF bounds, and **T** = trie-based verification (always
last). ``QFCT`` is the full system.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Literal

from repro.core.dispatch import parse_shard
from repro.core.errors import ConfigurationError
from repro.filters.alpha import GroupMode
from repro.partition.selection import SELECTION_MODES, SelectionMode
from repro.util.faults import FaultPlan

FilterName = Literal["qgram", "frequency", "cdf"]
VerificationName = Literal["trie", "naive"]

#: Filter stacks of the paper's named algorithm variants.
ALGORITHMS: dict[str, tuple[FilterName, ...]] = {
    "QFCT": ("qgram", "frequency", "cdf"),
    "QCT": ("qgram", "cdf"),
    "QFT": ("qgram", "frequency"),
    "FCT": ("frequency", "cdf"),
    "QT": ("qgram",),
    "T": (),
}

_VALID_FILTERS = ("qgram", "frequency", "cdf")


@dataclass(frozen=True)
class JoinConfig:
    """All knobs of the join pipeline.

    Parameters
    ----------
    k, tau:
        The (k, τ)-matching thresholds: report pairs with
        ``Pr(ed(R, S) <= k) > tau``.
    q:
        Segment length target of the even-partition scheme (the paper
        found q = 3 or 4 best; default 3).
    filters:
        Subset of ``("qgram", "frequency", "cdf")`` applied in that order.
    verification:
        ``"trie"`` (Section 6.2) or ``"naive"`` (Section 7.7 baseline).
    selection / group_mode / bound_mode:
        q-gram internals; see :mod:`repro.partition.selection` and
        :mod:`repro.filters.alpha` / :mod:`repro.filters.events`.
    report_probabilities:
        When True, pairs accepted by the CDF lower bound are still
        verified so every reported pair carries its exact probability;
        when False (paper behaviour) such pairs skip verification and
        report ``probability=None``.
    early_stop_verification:
        Let verification stop as soon as the τ decision is known.
    workers:
        Process-level parallelism of the join drivers. ``1`` (default)
        runs the sequential visit loop; ``> 1`` shards the collection
        into contiguous length bands (plus a k-wide halo) handled by
        :mod:`repro.core.parallel`. The result pair list is identical
        either way.
    retries:
        Re-dispatches a failed band gets before the executor degrades
        it to an in-process run (:mod:`repro.core.executor`). Only
        meaningful for the banded drivers.
    band_timeout:
        Per-band execution deadline in seconds (``None`` = no limit);
        a band that exceeds it is retried, then degraded. The degraded
        in-process attempt never has a deadline.
    checkpoint_dir:
        Run directory for checkpoint/resume (CLI ``--resume``). When
        set, the banded driver persists each completed band atomically
        and a re-run over identical inputs loads completed bands
        instead of recomputing them. ``None`` (default) disables
        checkpointing.
    fault_spec:
        Deterministic fault-injection plan for the band executor, in
        :meth:`repro.util.faults.FaultPlan.from_spec` syntax (e.g.
        ``"crash@2x3,hang@0/1.5"``, shard-qualified ``"crash@s1:2"``).
        Testing/benchmark hook; ``None`` (default) injects nothing and
        injection never changes results.
    shard:
        ``"i/N"`` to run as shard ``i`` of an ``N``-way sharded join
        (:class:`repro.core.dispatch.ShardBackend`): this invocation
        executes only its contiguous slice of the band plan and
        persists it under ``checkpoint_dir/shard-i/``; a later
        ``repro-join merge`` folds the N shard directories into the
        final result. Requires ``checkpoint_dir``. ``None`` (default)
        runs the whole plan. Not fingerprinted: every shard of one run
        (and the merge) shares one fingerprint.
    mp_start:
        Multiprocessing start method for the band worker pool
        (``"fork"``, ``"spawn"``, ``"forkserver"``); ``None`` (default)
        uses the platform default. Runtime-only — results and
        fingerprints never depend on it.
    backend:
        Kernel execution backend (:mod:`repro.core.backends`):
        ``"python"`` (default) keeps the pinned scalar reference path,
        ``"numpy"`` vectorizes the frequency/CDF filters over blocks of
        candidates, ``"native"`` runs the compiled C kernels (fastest,
        requires the optional extension to be built). Results are
        byte-identical in every case; the optional backends' absence is
        only an error when one is actually selected (checked at engine
        construction, so configs stay constructible and picklable
        everywhere).
    """

    k: int
    tau: float
    q: int = 3
    filters: tuple[FilterName, ...] = ("qgram", "frequency", "cdf")
    verification: VerificationName = "trie"
    selection: SelectionMode = "shift"
    group_mode: GroupMode = "exact"
    bound_mode: str = "paper"
    report_probabilities: bool = False
    early_stop_verification: bool = True
    workers: int = 1
    retries: int = 2
    band_timeout: float | None = None
    checkpoint_dir: str | None = None
    fault_spec: str | None = None
    shard: str | None = None
    mp_start: str | None = None
    backend: str = "python"

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ConfigurationError(f"k must be non-negative, got {self.k}")
        if not 0.0 <= self.tau < 1.0:
            raise ConfigurationError(f"tau must be in [0, 1), got {self.tau}")
        if self.q <= 0:
            raise ConfigurationError(f"q must be positive, got {self.q}")
        seen: set[str] = set()
        for name in self.filters:
            if name not in _VALID_FILTERS:
                raise ConfigurationError(f"unknown filter {name!r}")
            if name in seen:
                raise ConfigurationError(f"duplicate filter {name!r}")
            seen.add(name)
        if self.verification not in ("trie", "naive"):
            raise ConfigurationError(
                f"unknown verification {self.verification!r}"
            )
        if self.selection not in SELECTION_MODES:
            raise ConfigurationError(
                f"unknown selection mode {self.selection!r}"
            )
        if self.group_mode not in ("exact", "beta"):
            raise ConfigurationError(f"unknown group mode {self.group_mode!r}")
        if self.bound_mode not in ("paper", "markov"):
            raise ConfigurationError(f"unknown bound mode {self.bound_mode!r}")
        if not isinstance(self.workers, int) or isinstance(self.workers, bool):
            raise ConfigurationError(
                f"workers must be an int, got {self.workers!r}"
            )
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )
        if not isinstance(self.retries, int) or isinstance(self.retries, bool):
            raise ConfigurationError(
                f"retries must be an int, got {self.retries!r}"
            )
        if self.retries < 0:
            raise ConfigurationError(
                f"retries must be non-negative, got {self.retries}"
            )
        if self.band_timeout is not None and not self.band_timeout > 0:
            raise ConfigurationError(
                f"band_timeout must be positive or None, got {self.band_timeout}"
            )
        try:
            FaultPlan.from_spec(self.fault_spec)
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from None
        if self.shard is not None:
            parse_shard(self.shard)
            if self.checkpoint_dir is None:
                raise ConfigurationError(
                    "shard mode requires a run directory: set "
                    "checkpoint_dir (CLI --resume RUN_DIR) so shards "
                    "share one partitioned checkpoint store"
                )
        if self.mp_start is not None and self.mp_start not in (
            "fork",
            "spawn",
            "forkserver",
        ):
            raise ConfigurationError(
                f"unknown mp_start {self.mp_start!r}; "
                "choose from ['fork', 'forkserver', 'spawn']"
            )
        if self.backend not in ("python", "numpy", "native"):
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; "
                "choose from ['native', 'numpy', 'python']"
            )

    @classmethod
    def for_algorithm(cls, name: str, k: int, tau: float, **overrides) -> "JoinConfig":
        """Config for a named variant (QFCT, QCT, QFT, FCT, QT, T)."""
        try:
            filters = ALGORITHMS[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}"
            ) from None
        return cls(k=k, tau=tau, filters=filters, **overrides)

    @property
    def shard_coordinates(self) -> tuple[int, int] | None:
        """``(shard_index, shard_count)`` parsed from :attr:`shard`."""
        if self.shard is None:
            return None
        return parse_shard(self.shard)

    @property
    def uses_qgram(self) -> bool:
        return "qgram" in self.filters

    @property
    def uses_frequency(self) -> bool:
        return "frequency" in self.filters

    @property
    def uses_cdf(self) -> bool:
        return "cdf" in self.filters

    @property
    def algorithm_name(self) -> str:
        """The paper-style acronym for this filter stack."""
        for name, filters in ALGORITHMS.items():
            if filters == self.filters:
                return name
        letters = "".join(f[0].upper() for f in self.filters)
        return f"{letters}T"

    def with_filters(self, filters: tuple[FilterName, ...]) -> "JoinConfig":
        """A copy with a different filter stack (for variant sweeps)."""
        return replace(self, filters=filters)

    def with_tau(self, tau: float) -> "JoinConfig":
        """A copy at a different probability threshold.

        The serve layer uses this for per-request τ: every other knob
        (and therefore the index and feature caches built under this
        config) stays shared.
        """
        return replace(self, tau=tau)

    def with_request_k(self, k: int) -> "JoinConfig":
        """A copy answering requests at a different edit threshold.

        The segment index is physically built for one ``k`` (segment
        count and posting layout depend on it), so a *different*
        request ``k`` cannot reuse it: the copy drops the ``qgram``
        filter and keeps the k-independent stages (frequency, CDF,
        verification), which is exactly the paper's FCT/CT/T variant at
        the requested ``k`` — same results as an offline run of that
        variant. A request at the native ``k`` should use this config
        unchanged instead.
        """
        if k == self.k:
            return self
        return replace(
            self,
            k=k,
            filters=tuple(f for f in self.filters if f != "qgram"),
        )
