"""Pluggable execution backends for the banded parallel join.

The band plan makes length bands independent fault domains; *how* those
bands get executed is a separate decision from *what* each band
computes. This module owns that decision behind one protocol:

* :class:`SerialBackend` — every band in-process, in order. The
  reference semantics.
* :class:`ProcessPoolBackend` — the future-per-band
  ``ProcessPoolExecutor`` path (extracted from the old hard-wired
  driver), with all the PR-3 retry/timeout/degradation machinery.
* :class:`ShardBackend` — one invocation owns a deterministic
  contiguous slice of the band plan (``--shard i/N``), executes only
  those bands (through an inner backend), and persists them to a
  partitioned :class:`~repro.core.checkpoint.ShardCheckpointStore`;
  a later ``merge`` step (:mod:`repro.core.merge`) folds the N shard
  directories into one result. This lets a job array or N independent
  OS processes run one join no single in-memory run could.

All three funnel into :func:`repro.core.executor.run_bands`, so
retry/timeout/fault-injection/checkpoint semantics are identical under
every backend and sharded output stays byte-identical to serial.

Shard ownership is *contiguous and deterministic*: shard ``i`` of ``N``
over ``B`` bands owns ``range(i*B//N, (i+1)*B//N)`` (:func:`shard_slice`)
— slices cover ``range(B)`` exactly once with no overlap for every
``N``, and depend only on ``(B, i, N)``, never on runtime state, so two
hosts computing the same decomposition always agree.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Callable, Protocol, Sequence

from repro.core.checkpoint import BandResult, CheckpointStore
from repro.core.errors import ConfigurationError
from repro.core.stats import JoinStatistics
from repro.util.faults import FaultPlan

if TYPE_CHECKING:
    from repro.core.executor import RetryPolicy

#: A band task: module-level callable (pool-picklable) payload -> result.
BandTask = Callable[[Any], BandResult]


def effective_pool_width(workers: int, pending: int) -> int:
    """The process-pool width actually used for ``pending`` bands.

    Band count and ``workers`` set the ceiling; the host CPU count
    clamps it. Extra processes on an oversubscribed host buy no
    parallelism for CPU-bound bands — only fork and scheduling
    overhead. This clamp is *runtime-only*: the band plan (and hence
    results and checkpoint fingerprints) stays keyed to ``workers``, so
    resuming on a host with fewer cores than ``--workers`` still
    fingerprint-matches the original run.
    """
    return max(1, min(workers, pending, os.cpu_count() or 1))


def parse_shard(spec: str) -> tuple[int, int]:
    """Parse a ``"i/N"`` shard spec into ``(shard_index, shard_count)``.

    Raises :class:`ConfigurationError` for anything that is not
    ``i/N`` with integer ``0 <= i < N`` and ``N >= 1``.
    """
    head, sep, tail = spec.partition("/")
    if not sep or not head.isdigit() or not tail.isdigit():
        raise ConfigurationError(
            f"shard spec must look like 'i/N' (e.g. '0/3'), got {spec!r}"
        )
    index, count = int(head), int(tail)
    if count < 1:
        raise ConfigurationError(
            f"shard count must be >= 1, got {count} in {spec!r}"
        )
    if index >= count:
        raise ConfigurationError(
            f"shard index must be in [0, {count}), got {index} in {spec!r}"
        )
    return index, count


def shard_slice(total: int, shard_index: int, shard_count: int) -> range:
    """Band indices owned by shard ``shard_index`` of ``shard_count``.

    Contiguous, deterministic, and an exact partition: for any ``total``
    and ``shard_count``, the ``shard_count`` ranges are disjoint and
    their union is ``range(total)``, with sizes differing by at most
    one. Depends only on its arguments, so every participant in a
    sharded run computes identical ownership.
    """
    if shard_count < 1:
        raise ConfigurationError(
            f"shard count must be >= 1, got {shard_count}"
        )
    if not 0 <= shard_index < shard_count:
        raise ConfigurationError(
            f"shard index must be in [0, {shard_count}), got {shard_index}"
        )
    return range(
        shard_index * total // shard_count,
        (shard_index + 1) * total // shard_count,
    )


class ExecutionBackend(Protocol):
    """How a planned set of bands gets executed.

    Implementations must preserve the executor's contract exactly:
    ``task(payload)`` returns ``(band_index, pairs, stats)``, results
    come back sorted by band index, retry/timeout/fault semantics follow
    ``policy``/``faults``, and completed bands are persisted to
    ``checkpoint`` when one is given. A backend may execute a *subset*
    of the payloads (sharding); callers must not assume every planned
    band appears in the return value.
    """

    def execute(
        self,
        task: BandTask,
        payloads: Sequence[tuple[int, Any]],
        *,
        policy: "RetryPolicy | None" = None,
        stats: JoinStatistics | None = None,
        faults: FaultPlan | None = None,
        checkpoint: CheckpointStore | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
        mp_context: Any = None,
    ) -> list[BandResult]:
        """Execute (some of) ``payloads``; results sorted by band index."""
        ...


class SerialBackend:
    """Run every band in-process, in order — the reference semantics.

    Retries, degradation, fault injection, and checkpointing all still
    apply (via the executor's in-process path); only the pool is gone.
    """

    def execute(
        self,
        task: BandTask,
        payloads: Sequence[tuple[int, Any]],
        *,
        policy: "RetryPolicy | None" = None,
        stats: JoinStatistics | None = None,
        faults: FaultPlan | None = None,
        checkpoint: CheckpointStore | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
        mp_context: Any = None,
    ) -> list[BandResult]:
        from repro.core.executor import run_bands

        return run_bands(
            task,
            payloads,
            workers=1,
            use_processes=False,
            policy=policy,
            stats=stats,
            faults=faults,
            checkpoint=checkpoint,
        )


class ProcessPoolBackend:
    """Future-per-band ``ProcessPoolExecutor`` dispatch.

    The extracted PR-3 path: one future per band, worker-side deadlines
    with a parent backstop, bounded retries with backoff, per-band
    in-process degradation, and pool rebuild between retry rounds. Pool
    width is clamped by :func:`effective_pool_width`.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}"
            )
        self.workers = workers

    def execute(
        self,
        task: BandTask,
        payloads: Sequence[tuple[int, Any]],
        *,
        policy: "RetryPolicy | None" = None,
        stats: JoinStatistics | None = None,
        faults: FaultPlan | None = None,
        checkpoint: CheckpointStore | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
        mp_context: Any = None,
    ) -> list[BandResult]:
        from repro.core.executor import run_bands

        return run_bands(
            task,
            payloads,
            workers=self.workers,
            use_processes=True,
            policy=policy,
            stats=stats,
            faults=faults,
            checkpoint=checkpoint,
            initializer=initializer,
            initargs=initargs,
            mp_context=mp_context,
        )


class ShardBackend:
    """Execute only this shard's contiguous slice of the band plan.

    Ownership is :func:`shard_slice` over the payloads' *positions* in
    the planned sequence (which for the join drivers equals the band
    indices). Faults are narrowed to this shard
    (:meth:`~repro.util.faults.FaultPlan.narrowed`), so a spec like
    ``crash@s1:2x3`` fires only inside shard 1. The slice then runs on
    ``inner`` — serial or pooled — with identical retry/checkpoint
    semantics; the partitioned checkpoint store the driver passes in
    keeps this shard's bands under ``shard-i/``.
    """

    def __init__(
        self,
        shard_index: int,
        shard_count: int,
        inner: ExecutionBackend,
    ) -> None:
        if shard_count < 1:
            raise ConfigurationError(
                f"shard count must be >= 1, got {shard_count}"
            )
        if not 0 <= shard_index < shard_count:
            raise ConfigurationError(
                f"shard index must be in [0, {shard_count}), "
                f"got {shard_index}"
            )
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.inner = inner

    def owned_positions(self, total: int) -> range:
        """Positions in the planned payload sequence this shard owns."""
        return shard_slice(total, self.shard_index, self.shard_count)

    def execute(
        self,
        task: BandTask,
        payloads: Sequence[tuple[int, Any]],
        *,
        policy: "RetryPolicy | None" = None,
        stats: JoinStatistics | None = None,
        faults: FaultPlan | None = None,
        checkpoint: CheckpointStore | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
        mp_context: Any = None,
    ) -> list[BandResult]:
        owned = self.owned_positions(len(payloads))
        mine = [payloads[position] for position in owned]
        if stats is not None:
            stats.record("shard", "owned", len(mine))
        narrowed = (
            faults.narrowed(self.shard_index) if faults is not None else None
        )
        return self.inner.execute(
            task,
            mine,
            policy=policy,
            stats=stats,
            faults=narrowed,
            checkpoint=checkpoint,
            initializer=initializer,
            initargs=initargs,
            mp_context=mp_context,
        )


def resolve_execution_backend(
    *,
    workers: int,
    use_processes: bool,
    shard: tuple[int, int] | None = None,
) -> ExecutionBackend:
    """Pick the backend for a run.

    ``workers``/``use_processes`` choose serial vs pooled execution;
    ``shard`` (as ``(index, count)``) wraps the choice in a
    :class:`ShardBackend` that restricts execution to that shard's
    slice of the plan.
    """
    inner: ExecutionBackend
    if use_processes and workers > 1:
        inner = ProcessPoolBackend(workers)
    else:
        inner = SerialBackend()
    if shard is None:
        return inner
    shard_index, shard_count = shard
    return ShardBackend(shard_index, shard_count, inner)
