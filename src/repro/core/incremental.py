"""Incremental (streaming) similarity join.

The paper's driver is inherently incremental: a string is matched against
the already-indexed prefix of the collection, then indexed itself.
:class:`IncrementalJoiner` exposes exactly that loop as an online API —
feed strings one at a time, get back the similar pairs each new string
forms with everything seen so far. Useful for ingest pipelines where
duplicates should be flagged at insert time.
"""

from __future__ import annotations

from repro.core.config import JoinConfig
from repro.core.pipeline import CandidateRefiner
from repro.core.results import JoinPair
from repro.core.stats import JoinStatistics
from repro.index.inverted import SegmentInvertedIndex
from repro.uncertain.string import UncertainString


class IncrementalJoiner:
    """Online self-join: add strings, receive their similar pairs.

    Unlike the batch driver (which sorts by length to bound index probes
    to shorter strings), an online joiner must accept arbitrary arrival
    order, so the index is probed in both length directions. Results are
    identical to running :func:`repro.core.join.similarity_join` on the
    final collection — a property the tests pin down.
    """

    def __init__(self, config: JoinConfig) -> None:
        self.config = config
        self.stats = JoinStatistics()
        self._refiner = CandidateRefiner(config, self.stats)
        self._strings: list[UncertainString] = []
        self._by_length: dict[int, list[int]] = {}
        self._index = (
            SegmentInvertedIndex(
                k=config.k,
                q=config.q,
                selection=config.selection,
                group_mode=config.group_mode,
                bound_mode=config.bound_mode,
            )
            if config.uses_qgram
            else None
        )

    def __len__(self) -> int:
        return len(self._strings)

    @property
    def strings(self) -> list[UncertainString]:
        """Strings added so far (index = id)."""
        return list(self._strings)

    def add(self, string: UncertainString) -> list[JoinPair]:
        """Insert ``string``; return its similar pairs among prior strings.

        The returned pairs carry ``right_id == the new string's id``
        (ids are assigned in arrival order).
        """
        config = self.config
        string_id = len(self._strings)

        if self._index is not None:
            with self.stats.timer("qgram"):
                candidates = [c.string_id for c in self._index.query(string, config.tau)]
            self.stats.qgram_survivors += len(candidates)
        else:
            candidates = [
                other
                for length, ids in self._by_length.items()
                if abs(length - len(string)) <= config.k
                for other in ids
            ]
            self.stats.length_survivors += len(candidates)

        pairs: list[JoinPair] = []
        for other_id in sorted(candidates):
            similar, probability = self._refiner.refine(
                string_id, string, other_id, self._strings[other_id]
            )
            if similar:
                pairs.append(JoinPair(other_id, string_id, probability))

        if self._index is not None:
            with self.stats.timer("index"):
                self._index.add(string_id, string)
        self._strings.append(string)
        self._by_length.setdefault(len(string), []).append(string_id)
        self.stats.total_strings = len(self._strings)
        self.stats.result_pairs += len(pairs)
        return sorted(pairs)

    def extend(self, strings) -> list[JoinPair]:
        """Add many strings; return all new pairs in order."""
        pairs: list[JoinPair] = []
        for string in strings:
            pairs.extend(self.add(string))
        return pairs
