"""Incremental (streaming) similarity join.

The engine is inherently incremental: a string is matched against the
already-indexed prefix, then indexed itself. :class:`IncrementalJoiner`
keeps one resumable :class:`~repro.core.engine.JoinEngine` alive and
exposes exactly that loop as an online API — feed strings one at a
time, get back the similar pairs each new string forms with everything
seen so far. Useful for ingest pipelines where duplicates should be
flagged at insert time.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.config import JoinConfig
from repro.core.engine import JoinEngine
from repro.core.results import JoinPair
from repro.uncertain.string import UncertainString


class IncrementalJoiner:
    """Online self-join: add strings, receive their similar pairs.

    Unlike the batch driver (which sorts by length to bound index probes
    to shorter strings), an online joiner must accept arbitrary arrival
    order, so candidates are probed in both length directions. Results
    are identical to running :func:`repro.core.join.similarity_join` on
    the final collection — a property the tests pin down.
    """

    def __init__(self, config: JoinConfig) -> None:
        self.config = config
        self._engine = JoinEngine(config)
        self.stats = self._engine.stats
        self._strings: list[UncertainString] = []

    @property
    def engine(self) -> JoinEngine:
        """The underlying resumable engine."""
        return self._engine

    def __len__(self) -> int:
        return len(self._strings)

    @property
    def strings(self) -> list[UncertainString]:
        """Strings added so far (index = id)."""
        return list(self._strings)

    def add(self, string: UncertainString) -> list[JoinPair]:
        """Insert ``string``; return its similar pairs among prior strings.

        The returned pairs carry ``right_id == the new string's id``
        (ids are assigned in arrival order).
        """
        string_id = len(self._strings)
        pairs = [
            JoinPair(other_id, string_id, probability)
            for other_id, similar, probability in self._engine.probe(
                string_id, string
            )
            if similar
        ]
        self._engine.add(string_id, string)
        self._strings.append(string)
        self.stats.total_strings = len(self._strings)
        self.stats.result_pairs += len(pairs)
        return sorted(pairs)

    def extend(self, strings: Iterable[UncertainString]) -> list[JoinPair]:
        """Add many strings; return all new pairs in order."""
        pairs: list[JoinPair] = []
        for string in strings:
            pairs.extend(self.add(string))
        return pairs

    def stream(self, strings: Iterable[UncertainString]) -> Iterator[JoinPair]:
        """Add many strings, yielding each new pair as it is found."""
        for string in strings:
            yield from self.add(string)
