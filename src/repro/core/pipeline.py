"""Per-candidate refinement shared by join and search drivers.

A candidate pair that emerged from the q-gram stage (or from the plain
length filter) flows through: frequency-distance filtering (Section 5) →
CDF bounds (Section 6.1) → exact verification (Section 6.2 / 7.7). The
refiner owns the filter instances, applies them in the configured order,
and records counts/timings into :class:`JoinStatistics`.
"""

from __future__ import annotations

from repro.core.config import JoinConfig
from repro.core.stats import JoinStatistics
from repro.filters.cdf import CdfBoundFilter
from repro.filters.frequency import FrequencyDistanceFilter, FrequencyProfile
from repro.uncertain.string import UncertainString
from repro.verify.naive import naive_verify, naive_verify_threshold
from repro.verify.trie import Trie, build_trie
from repro.verify.trie_verify import trie_verify, trie_verify_threshold


class CandidateRefiner:
    """Runs the post-q-gram stages of the pipeline for one driver run.

    ``profile_cache`` optionally shares a persistent id → profile mapping
    across refiner instances (e.g. one per collection held by
    :class:`repro.core.search.SimilaritySearcher`), so repeated runs
    against the same indexed strings never rebuild their frequency
    profiles. Entries under negative pseudo-ids (the ``-1`` used for
    search queries) always stay refiner-local: the string behind such an
    id changes from run to run.
    """

    def __init__(
        self,
        config: JoinConfig,
        stats: JoinStatistics,
        profile_cache: dict[int, FrequencyProfile] | None = None,
    ) -> None:
        self.config = config
        self.stats = stats
        self._frequency = (
            FrequencyDistanceFilter(config.k) if config.uses_frequency else None
        )
        self._cdf = CdfBoundFilter(config.k) if config.uses_cdf else None
        self._local_profiles: dict[int, FrequencyProfile] = {}
        self._shared_profiles = (
            profile_cache if profile_cache is not None else self._local_profiles
        )
        self._trie_cache_id: int | None = None
        self._trie_cache: Trie | None = None

    # ------------------------------------------------------------------
    # cached per-string preprocessing
    # ------------------------------------------------------------------

    def profile(self, string_id: int, string: UncertainString) -> FrequencyProfile:
        """Frequency profile of a string, built once (index-resident state)."""
        cache = self._shared_profiles if string_id >= 0 else self._local_profiles
        prof = cache.get(string_id)
        if prof is None:
            prof = FrequencyProfile(string)
            cache[string_id] = prof
        return prof

    def _trie_for(self, string_id: int, string: UncertainString) -> Trie:
        """Trie of the current query string, rebuilt only when it changes.

        Matches the paper's amortization: ``T_R`` is built once and reused
        for all candidate pairs ``(R, *)``.
        """
        if self._trie_cache_id != string_id or self._trie_cache is None:
            self._trie_cache = build_trie(string)
            self._trie_cache_id = string_id
        return self._trie_cache

    # ------------------------------------------------------------------
    # the pipeline
    # ------------------------------------------------------------------

    def refine(
        self,
        left_id: int,
        left: UncertainString,
        right_id: int,
        right: UncertainString,
    ) -> tuple[bool, float | None]:
        """Frequency → CDF → verification for one candidate pair.

        ``left`` is the current query string R (its trie is cached);
        ``right`` is the earlier-visited candidate S. Returns
        ``(is_result, probability)``.
        """
        config = self.config
        stats = self.stats
        if self._frequency is not None:
            stats.frequency_checked += 1
            with stats.timer("frequency"):
                decision = self._frequency.decide(
                    self.profile(left_id, left),
                    self.profile(right_id, right),
                    config.tau,
                )
            if decision.rejected:
                return False, None
            stats.frequency_survivors += 1

        accepted_by_cdf = False
        if self._cdf is not None:
            stats.cdf_checked += 1
            with stats.timer("cdf"):
                decision = self._cdf.decide(left, right, config.tau)
            if decision.rejected:
                stats.cdf_rejected += 1
                return False, None
            if decision.accepted:
                stats.cdf_accepted += 1
                accepted_by_cdf = True
            else:
                stats.cdf_undecided += 1

        if accepted_by_cdf and not config.report_probabilities:
            return True, None
        return self._verify(left_id, left, right, accepted_by_cdf)

    def _verify(
        self,
        left_id: int,
        left: UncertainString,
        right: UncertainString,
        accepted_by_cdf: bool,
    ) -> tuple[bool, float | None]:
        config = self.config
        stats = self.stats
        stats.verifications += 1
        want_exact = config.report_probabilities or not config.early_stop_verification
        with stats.timer("verification"):
            if config.verification == "trie":
                trie = self._trie_for(left_id, left)
                if want_exact:
                    probability = trie_verify(left, right, config.k, left_trie=trie)
                    similar = probability > config.tau
                else:
                    similar = trie_verify_threshold(
                        left, right, config.k, config.tau, left_trie=trie
                    )
                    probability = None
            else:
                if want_exact:
                    probability = naive_verify(left, right, config.k)
                    similar = probability > config.tau
                else:
                    similar = naive_verify_threshold(left, right, config.k, config.tau)
                    probability = None
        # When the CDF lower bound accepted the pair, verification ran only
        # to produce the exact probability; the two can disagree only on
        # floating-point knife edges, and the exact verifier wins.
        if similar:
            stats.verification_hits += 1
        else:
            stats.false_candidates += 1
        return similar, probability if similar else None
