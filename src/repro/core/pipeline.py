"""Data-driven candidate refinement: the engine's stage chain.

A candidate pair that emerged from a candidate source (the q-gram
segment index or the plain length filter) flows through
frequency-distance filtering (Section 5) → CDF bounds (Section 6.1) →
exact verification (Section 6.2 / 7.7). The chain is built from
:class:`~repro.core.config.JoinConfig`: each filtering stage is a
:class:`~repro.filters.base.PipelineStage` counted and timed under its
own name, and the probability threshold τ is supplied *per candidate*
by a :data:`TauProvider` callable — a constant for the fixed-threshold
drivers, the adaptive N-th-best bound for the top-N join — so every
consumer runs the exact same stages.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.backends import KernelBackend, PythonBackend, resolve_backend
from repro.core.config import JoinConfig, VerificationName
from repro.core.context import CollectionContext, StringFeatures
from repro.core.deadline import check_active
from repro.core.stats import JoinStatistics
from repro.filters.base import FilterDecision, FilterVerdict, PipelineStage
from repro.filters.frequency import FrequencyProfile
from repro.uncertain.string import UncertainString
from repro.verify.naive import naive_verify, naive_verify_threshold
from repro.verify.trie import Trie, build_trie
from repro.verify.trie_verify import trie_verify, trie_verify_threshold

#: Supplies the τ in force for the next candidate. Fixed-threshold
#: drivers pass ``lambda: config.tau``; the top-N join passes its
#: monotonically rising N-th-best probability.
TauProvider = Callable[[], float]


class QueryContext:
    """Per-query state threaded through the chain.

    Holds the query string R, its per-string features (shared with the
    collection context for non-negative ids, probe-local for negative
    pseudo-ids so a search query's profile dies with the probe), and its
    lazily built trie (``T_R`` is built at most once and reused for all
    candidate pairs ``(R, *)`` — the paper's amortization).
    """

    __slots__ = ("query_id", "query", "features", "_trie")

    def __init__(
        self,
        query_id: int,
        query: UncertainString,
        features: StringFeatures | None = None,
    ) -> None:
        self.query_id = query_id
        self.query = query
        self.features = features if features is not None else StringFeatures(query)
        self._trie: Trie | None = None

    def trie(self) -> Trie:
        """The query's verification trie, built on first use."""
        if self._trie is None:
            self._trie = build_trie(self.query)
        return self._trie


class ProfileStore:
    """id → per-string features and frequency profiles (index-resident).

    A thin pipeline adapter over
    :class:`~repro.core.context.CollectionContext`: features (and the
    profiles cached on them) of non-negative ids persist for the
    context's lifetime and may be shared across runs — or across
    parallel band workers, which receive the parent's finished context
    instead of rebuilding halo-string profiles per band. Negative
    pseudo-ids resolve through the query context, so a query's profile
    is rebuilt per probe.
    """

    def __init__(self, context: CollectionContext | None = None) -> None:
        self._context = context if context is not None else CollectionContext()

    @property
    def context(self) -> CollectionContext:
        return self._context

    def features_for(
        self, string_id: int, string: UncertainString
    ) -> StringFeatures:
        """Features of ``string`` (shared for ids >= 0, fresh otherwise)."""
        if string_id < 0:
            return StringFeatures(string)
        return self._context.features(string_id, string)

    def profile(
        self, features: StringFeatures, string: UncertainString
    ) -> FrequencyProfile:
        """The frequency profile cached on ``features``, built on miss."""
        profile = features.profile
        if profile is None:
            # Module-global lookup (not the imported binding captured in a
            # closure) so tests can monkeypatch ``pipeline.FrequencyProfile``.
            profile = FrequencyProfile(string)
            features.set_profile(profile)
        return profile


class FrequencyStage:
    """Lemma 6 + Theorem 3 frequency-distance bounds (name ``frequency``)."""

    name = "frequency"

    def __init__(
        self,
        k: int,
        profiles: ProfileStore,
        backend: KernelBackend | None = None,
    ) -> None:
        self._k = k
        self._profiles = profiles
        self._backend = backend if backend is not None else PythonBackend()

    def apply(
        self,
        context: QueryContext,
        candidate_id: int,
        candidate: UncertainString,
        tau: float,
    ) -> FilterDecision:
        """One decision; dispatches the pair through the backend's
        scalar kernel (``python`` reproduces
        :meth:`FrequencyDistanceFilter.decide` exactly — same bounds,
        same short-circuit, same decision fields — and the optional
        backends are bit-identical to it by contract)."""
        store = self._profiles
        lower_fd, upper = self._backend.frequency_bounds(
            store.profile(context.features, context.query),
            store.profile(store.features_for(candidate_id, candidate), candidate),
            self._k,
        )
        if lower_fd > self._k:
            return FilterDecision(
                FilterVerdict.REJECT,
                upper=0.0,
                reason=f"Lemma 6 frequency distance >= {lower_fd} > k",
            )
        assert upper is not None
        if upper <= tau:
            return FilterDecision(
                FilterVerdict.REJECT,
                upper=upper,
                reason=f"Theorem 3 upper bound {upper:.6g} <= tau",
            )
        return FilterDecision(FilterVerdict.UNDECIDED, upper=upper)

    def apply_batch(
        self,
        context: QueryContext,
        candidate_ids: Sequence[int],
        candidates: Sequence[UncertainString],
        tau: float,
    ) -> list[FilterDecision]:
        """One decision per candidate; identical to per-pair ``apply``.

        The batch kernel computes the Theorem 3 bound even for Lemma 6
        rejects (the scalar path short-circuits it), which cannot flip
        any verdict; the emitted decisions carry the scalar path's
        exact fields either way.
        """
        store = self._profiles
        probe = store.profile(context.features, context.query)
        profiles = [
            store.profile(store.features_for(cid, cand), cand)
            for cid, cand in zip(candidate_ids, candidates)
        ]
        rows = self._backend.frequency_bounds_batch(probe, profiles, self._k)
        decisions: list[FilterDecision] = []
        for lower_fd, upper in rows:
            if lower_fd > self._k:
                decisions.append(
                    FilterDecision(
                        FilterVerdict.REJECT,
                        upper=0.0,
                        reason=f"Lemma 6 frequency distance >= {lower_fd} > k",
                    )
                )
            elif upper <= tau:
                decisions.append(
                    FilterDecision(
                        FilterVerdict.REJECT,
                        upper=upper,
                        reason=f"Theorem 3 upper bound {upper:.6g} <= tau",
                    )
                )
            else:
                decisions.append(
                    FilterDecision(FilterVerdict.UNDECIDED, upper=upper)
                )
        return decisions


class CdfStage:
    """Theorem 4 per-cell CDF bounds (name ``cdf``)."""

    name = "cdf"

    def __init__(
        self,
        k: int,
        profiles: ProfileStore,
        backend: KernelBackend | None = None,
    ) -> None:
        self._k = k
        self._profiles = profiles
        self._backend = backend if backend is not None else PythonBackend()

    def apply(
        self,
        context: QueryContext,
        candidate_id: int,
        candidate: UncertainString,
        tau: float,
    ) -> FilterDecision:
        """One decision; dispatches the pair through the backend's
        scalar kernel (``python`` reproduces
        :meth:`CdfBoundFilter.decide` exactly; the optional backends
        are bit-identical to it by contract)."""
        k = self._k
        lower, upper = self._backend.cdf_bounds(
            context.query,
            candidate,
            k,
            left_features=context.features,
            right_features=self._profiles.features_for(candidate_id, candidate),
        )
        if lower[k] > tau:
            return FilterDecision(
                FilterVerdict.ACCEPT,
                lower=lower[k],
                upper=upper[k],
                reason=f"CDF lower bound {lower[k]:.6g} > tau",
            )
        if upper[k] <= tau:
            return FilterDecision(
                FilterVerdict.REJECT,
                lower=lower[k],
                upper=upper[k],
                reason=f"CDF upper bound {upper[k]:.6g} <= tau",
            )
        return FilterDecision(
            FilterVerdict.UNDECIDED, lower=lower[k], upper=upper[k]
        )

    def apply_batch(
        self,
        context: QueryContext,
        candidate_ids: Sequence[int],
        candidates: Sequence[UncertainString],
        tau: float,
    ) -> list[FilterDecision]:
        """One decision per candidate; identical to per-pair ``apply``."""
        k = self._k
        features = [
            self._profiles.features_for(cid, cand)
            for cid, cand in zip(candidate_ids, candidates)
        ]
        bounds = self._backend.cdf_bounds_batch(
            context.query,
            candidates,
            k,
            left_features=context.features,
            right_features=features,
        )
        decisions: list[FilterDecision] = []
        for lower, upper in bounds:
            if lower[k] > tau:
                decisions.append(
                    FilterDecision(
                        FilterVerdict.ACCEPT,
                        lower=lower[k],
                        upper=upper[k],
                        reason=f"CDF lower bound {lower[k]:.6g} > tau",
                    )
                )
            elif upper[k] <= tau:
                decisions.append(
                    FilterDecision(
                        FilterVerdict.REJECT,
                        lower=lower[k],
                        upper=upper[k],
                        reason=f"CDF upper bound {upper[k]:.6g} <= tau",
                    )
                )
            else:
                decisions.append(
                    FilterDecision(
                        FilterVerdict.UNDECIDED, lower=lower[k], upper=upper[k]
                    )
                )
        return decisions


class VerifyStage:
    """Exact verification: trie DP (Section 6.2) or naive per-world
    enumeration (the Section 7.7 baseline). Always the chain's last
    stage (name ``verification``)."""

    name = "verification"

    def __init__(
        self,
        k: int,
        verification: VerificationName,
        want_exact: bool,
    ) -> None:
        self._k = k
        self._verification = verification
        self._want_exact = want_exact

    def verify(
        self, context: QueryContext, candidate: UncertainString, tau: float
    ) -> tuple[bool, float | None]:
        """``(similar, probability)``; probability is ``None`` when the
        τ decision was reached by early termination."""
        if self._verification == "trie":
            if self._want_exact:
                probability = trie_verify(
                    context.query, candidate, self._k, left_trie=context.trie()
                )
                return probability > tau, probability
            similar = trie_verify_threshold(
                context.query, candidate, self._k, tau, left_trie=context.trie()
            )
            return similar, None
        if self._want_exact:
            probability = naive_verify(context.query, candidate, self._k)
            return probability > tau, probability
        return naive_verify_threshold(context.query, candidate, self._k, tau), None


def build_filter_stages(
    config: JoinConfig,
    profiles: ProfileStore,
    backend: KernelBackend | None = None,
) -> tuple[PipelineStage, ...]:
    """The post-candidate-generation filter stages ``config`` asks for,
    in the paper's fixed cheap-to-expensive order."""
    stages: list[PipelineStage] = []
    if config.uses_frequency:
        stages.append(FrequencyStage(config.k, profiles, backend))
    if config.uses_cdf:
        stages.append(CdfStage(config.k, profiles, backend))
    return tuple(stages)


class StageChain:
    """Runs the refinement stages for one engine.

    Parameters
    ----------
    config:
        Supplies the stage list, ``k``, the verifier, and the
        probability-reporting mode.
    force_exact:
        Always compute exact probabilities and never let a CDF accept
        skip verification, regardless of ``config.report_probabilities``
        — the top-N join needs exact values to rank by.
    context:
        Optional shared :class:`~repro.core.context.CollectionContext`
        (see :class:`ProfileStore`), for chains that outlive one run
        over the same indexed strings or reuse features computed by a
        parallel driver's parent process.
    """

    def __init__(
        self,
        config: JoinConfig,
        force_exact: bool = False,
        context: CollectionContext | None = None,
    ) -> None:
        self.config = config
        self.profiles = ProfileStore(context)
        self.backend = resolve_backend(config.backend)
        self.stages = build_filter_stages(config, self.profiles, self.backend)
        #: Whether :meth:`refine_block` is worth calling: the backend
        #: must actually vectorize and there must be filter stages to
        #: batch (pure-verification chains gain nothing from grouping).
        self.batch_refine = self.backend.supports_batch and bool(self.stages)
        self._want_probability = force_exact or config.report_probabilities
        self._verify = VerifyStage(
            config.k,
            config.verification,
            want_exact=self._want_probability or not config.early_stop_verification,
        )

    def context(self, query_id: int, query: UncertainString) -> QueryContext:
        """Fresh per-query state for ``query`` (build one per probe)."""
        return QueryContext(
            query_id, query, self.profiles.features_for(query_id, query)
        )

    def refine(
        self,
        context: QueryContext,
        candidate_id: int,
        candidate: UncertainString,
        tau: TauProvider,
        stats: JoinStatistics,
        upper: float | None = None,
    ) -> tuple[bool, float | None]:
        """Filter stages → verification for one candidate pair.

        ``upper`` is the candidate source's Theorem 2 upper bound on
        ``Pr(ed <= k)`` when it computed one. Returns
        ``(is_result, probability)``; the probability is ``None`` unless
        verification computed the exact value for a reported pair.

        A cooperative deadline check point guards every candidate: when
        the calling thread runs under an active
        :func:`repro.core.deadline.deadline_scope` whose budget is
        gone, the refinement raises
        :class:`~repro.core.errors.DeadlineExceededError` instead of
        starting another filter/verification round.
        """
        check_active()
        threshold = tau()
        if upper is not None and upper <= threshold:
            # Re-check the probe-time bound against the *current* τ: a
            # no-op for fixed-τ runs (the index already pruned on it),
            # real pruning when τ has risen since the probe (top-N).
            stats.record("bound", "rejected")
            return False, None
        accepted = False
        for stage in self.stages:
            stats.record(stage.name, "checked")
            with stats.timer(stage.name):
                decision = stage.apply(context, candidate_id, candidate, threshold)
            if decision.rejected:
                stats.record(stage.name, "rejected")
                return False, None
            if decision.accepted:
                # Only the CDF lower bound can prove similarity; later
                # (more expensive) filter stages would be wasted work.
                stats.record(stage.name, "accepted")
                accepted = True
                break
            stats.record(stage.name, "undecided")
        if accepted and not self._want_probability:
            return True, None
        stats.record("verification", "checked")
        with stats.timer(self._verify.name):
            similar, probability = self._verify.verify(context, candidate, threshold)
        # When the CDF lower bound accepted the pair, verification ran
        # only to produce the exact probability; the two can disagree
        # only on floating-point knife edges, and the exact verifier wins.
        if similar:
            stats.record("verification", "hits")
        else:
            stats.record("verification", "false")
        return similar, probability if similar else None

    def refine_block(
        self,
        context: QueryContext,
        entries: Sequence[tuple[int, UncertainString, float | None]],
        threshold: float,
        stats: JoinStatistics,
    ) -> list[tuple[bool, float | None]]:
        """:meth:`refine` for a block of one probe's candidates at once.

        ``entries`` are ``(candidate_id, candidate, source_upper)``
        triples; the return list is aligned with them. Semantics are
        identical to calling :meth:`refine` per candidate under a fixed
        ``threshold`` — same verdicts, same probabilities, same per-stage
        counter totals (stage timers aggregate whole blocks instead of
        single pairs, which no consumer compares) — but each filter
        stage runs one batched kernel call over the block's survivors,
        which is where the numpy backend's vectorization pays off.
        """
        results: list[tuple[bool, float | None] | None] = [None] * len(entries)
        check_active()
        active: list[int] = []
        for i, (_, _, upper) in enumerate(entries):
            if upper is not None and upper <= threshold:
                stats.record("bound", "rejected")
                results[i] = (False, None)
            else:
                active.append(i)
        accepted: list[int] = []
        for stage in self.stages:
            if not active:
                break
            check_active()
            for _ in active:
                stats.record(stage.name, "checked")
            with stats.timer(stage.name):
                decisions = stage.apply_batch(
                    context,
                    [entries[i][0] for i in active],
                    [entries[i][1] for i in active],
                    threshold,
                )
            still_active: list[int] = []
            for i, decision in zip(active, decisions):
                if decision.rejected:
                    stats.record(stage.name, "rejected")
                    results[i] = (False, None)
                elif decision.accepted:
                    stats.record(stage.name, "accepted")
                    accepted.append(i)
                else:
                    stats.record(stage.name, "undecided")
                    still_active.append(i)
            active = still_active
        if not self._want_probability:
            for i in accepted:
                results[i] = (True, None)
            accepted = []
        # Undecided survivors (and accepted pairs when exact
        # probabilities are wanted) verify one pair at a time, in the
        # block's candidate order — verification has no batch kernel.
        for i in sorted(active + accepted):
            check_active()
            candidate = entries[i][1]
            stats.record("verification", "checked")
            with stats.timer(self._verify.name):
                similar, probability = self._verify.verify(
                    context, candidate, threshold
                )
            if similar:
                stats.record("verification", "hits")
            else:
                stats.record("verification", "false")
            results[i] = (similar, probability if similar else None)
        return [result if result is not None else (False, None) for result in results]
