"""Result containers for joins and searches."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.stats import JoinStatistics


@dataclass(frozen=True, order=True)
class JoinPair:
    """One similar pair: ``Pr(ed(R_left, R_right) <= k) > tau``.

    ``left_id < right_id`` always (self-join convention). ``probability``
    is the exact similarity probability when verification computed it, or
    ``None`` for pairs accepted by the CDF lower bound under
    ``report_probabilities=False``.
    """

    left_id: int
    right_id: int
    probability: float | None = field(compare=False, default=None)

    @property
    def ids(self) -> tuple[int, int]:
        return self.left_id, self.right_id


@dataclass
class JoinOutcome:
    """Everything a join run produced: pairs plus instrumentation."""

    pairs: list[JoinPair]
    stats: JoinStatistics

    def id_pairs(self) -> set[tuple[int, int]]:
        """The result as a set of id pairs (handy for comparisons)."""
        return {pair.ids for pair in self.pairs}

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[JoinPair]:
        return iter(self.pairs)


@dataclass(frozen=True, order=True)
class SearchMatch:
    """One search hit: collection string similar to the query."""

    string_id: int
    probability: float | None = field(compare=False, default=None)


@dataclass
class SearchOutcome:
    """Search results plus instrumentation."""

    matches: list[SearchMatch]
    stats: JoinStatistics

    def ids(self) -> set[int]:
        return {match.string_id for match in self.matches}

    def __len__(self) -> int:
        return len(self.matches)

    def __iter__(self) -> Iterator[SearchMatch]:
        return iter(self.matches)
