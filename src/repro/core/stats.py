"""Join instrumentation.

Counts and per-stage timings matching what the paper's figures report:
candidates surviving each filter (Figure 2), filtering vs. query time
(Figure 3), CDF accept/reject split (Figure 5), verification counts and
time (Figure 8), and the false-positive count of the verification stage.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.util.timing import Stopwatch


#: (stage, event) pairs that land in a named legacy counter field.
#: Events recorded through :meth:`JoinStatistics.record` that are not
#: listed here accumulate in the generic ``stage_counters`` registry.
_STAGE_FIELDS: dict[tuple[str, str], str] = {
    ("length", "eligible"): "length_eligible_pairs",
    ("length", "survivors"): "length_survivors",
    ("qgram", "survivors"): "qgram_survivors",
    ("qgram", "rejected"): "qgram_rejected",
    ("frequency", "checked"): "frequency_checked",
    ("frequency", "survivors"): "frequency_survivors",
    # The frequency filter never accepts, so "undecided" IS survival —
    # the chain's generic verdict recording lands in the legacy field.
    ("frequency", "undecided"): "frequency_survivors",
    ("cdf", "checked"): "cdf_checked",
    ("cdf", "accepted"): "cdf_accepted",
    ("cdf", "rejected"): "cdf_rejected",
    ("cdf", "undecided"): "cdf_undecided",
    ("verification", "checked"): "verifications",
    ("verification", "hits"): "verification_hits",
    ("verification", "false"): "false_candidates",
}


@dataclass
class JoinStatistics:
    """Counters and stopwatches for one join/search run.

    Safe to share across threads: :meth:`record`, :meth:`merge`, and
    :meth:`timer` creation are lock-guarded (and the stopwatches guard
    themselves), so a served collection can fold many concurrent
    request threads into one sink without losing updates. Reads
    (`summary`, `stage_count`) are unguarded snapshots — exact once
    writers quiesce, approximate while they run.
    """

    total_strings: int = 0
    #: pairs passing the length filter (the universe Q-gram works on);
    #: for q-gram runs this counts index candidates *before* pruning is
    #: not observable, so it counts length-eligible pairs when available.
    length_eligible_pairs: int = 0
    #: candidates produced by the q-gram stage (survivors of Lemma 5 +
    #: Theorem 2). Stays 0 when q-gram filtering is disabled.
    qgram_survivors: int = 0
    qgram_rejected: int = 0
    #: candidates produced by the plain length filter when no q-gram
    #: index is in play — kept distinct from :attr:`qgram_survivors` so
    #: ``summary()`` never credits the q-gram stage with length-filter
    #: output.
    length_survivors: int = 0
    frequency_checked: int = 0
    frequency_survivors: int = 0
    cdf_checked: int = 0
    cdf_accepted: int = 0
    cdf_rejected: int = 0
    cdf_undecided: int = 0
    verifications: int = 0
    verification_hits: int = 0
    #: verified candidates that turned out dissimilar — the paper's
    #: "false positives in the verification step".
    false_candidates: int = 0
    result_pairs: int = 0

    timers: dict[str, Stopwatch] = field(default_factory=dict)
    #: stage-name-keyed counters (``"stage.event"``) for events with no
    #: dedicated legacy field — e.g. ``"bound.rejected"`` from the
    #: plumbed Theorem 2 upper bound, or the fault-tolerant executor's
    #: ``fault.retried`` / ``fault.degraded`` / ``fault.timeout`` (plus
    #: ``fault.crashed``, ``fault.corrupt``, ``fault.resumed``,
    #: ``fault.pool_unavailable``). Written through :meth:`record`.
    stage_counters: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Concurrency guard for the mutating paths (`record`, `merge`,
        # `timer` creation): a long-running server records counters from
        # many request threads into one shared sink, and the unguarded
        # read-modify-write of a counter field loses updates under
        # contention. The lock is instance state but not dataclass
        # *field* state — equality, repr, and pickling (band results
        # cross process boundaries) all ignore it.
        self._lock = threading.RLock()

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def record(self, stage: str, event: str, amount: int = 1) -> None:
        """Count ``amount`` occurrences of ``event`` in ``stage``.

        The single write path the engine's sources and stage chain use:
        (stage, event) pairs with a dedicated counter field update that
        field (so ``summary()``, ``merge`` and the benchmark reports are
        unchanged); anything else accumulates under ``"stage.event"`` in
        :attr:`stage_counters`.
        """
        name = _STAGE_FIELDS.get((stage, event))
        with self._lock:
            if name is not None:
                setattr(self, name, getattr(self, name) + amount)
            else:
                key = f"{stage}.{event}"
                self.stage_counters[key] = (
                    self.stage_counters.get(key, 0) + amount
                )

    def stage_count(self, stage: str, event: str) -> int:
        """Current value of a recorded counter (0 if never recorded)."""
        name = _STAGE_FIELDS.get((stage, event))
        if name is not None:
            count: int = getattr(self, name)
            return count
        return self.stage_counters.get(f"{stage}.{event}", 0)

    def fault_counts(self) -> dict[str, int]:
        """The executor's ``fault.*`` counters (empty for a clean run).

        Keys are the full ``"fault.<event>"`` stage-counter names,
        sorted; a run with no worker crashes, timeouts, retries, or
        resumed checkpoints returns ``{}``.
        """
        return {
            key: count
            for key, count in sorted(self.stage_counters.items())
            if key.startswith("fault.")
        }

    def serve_counts(self) -> dict[str, int]:
        """The serve layer's ``serve.*`` counters (empty offline).

        The request-path analogue of :meth:`fault_counts`: a served
        collection's shared statistics accumulate ``serve.requests``,
        ``serve.shed``, ``serve.degraded``, ``serve.deadline_exceeded``
        (plus reload/fault events) here, keyed by their full
        ``"serve.<event>"`` stage-counter names, sorted.
        """
        return {
            key: count
            for key, count in sorted(self.stage_counters.items())
            if key.startswith("serve.")
        }

    def counter_report(self) -> dict[str, dict[str, int]]:
        """Uniform runtime-counter document for harnesses and gates.

        One shape for everything the load harness and the benchmark
        gate report alongside timings: the executor's fault counters,
        the serve layer's request counters, and the process-global CDF
        memo-table traffic (:func:`repro.filters.cdf.cdf_cache_stats`,
        imported lazily — the filters package imports nothing from this
        module, but keeping the import out of module scope makes that
        impossible to regress silently).
        """
        from repro.filters.cdf import cdf_cache_stats

        return {
            "fault": self.fault_counts(),
            "serve": self.serve_counts(),
            "cdf_cache": cdf_cache_stats(),
        }

    def timer(self, stage: str) -> Stopwatch:
        """The (created-on-demand) stopwatch for ``stage``."""
        with self._lock:
            watch = self.timers.get(stage)
            if watch is None:
                watch = Stopwatch()
                self.timers[stage] = watch
            return watch

    def seconds(self, stage: str) -> float:
        """Elapsed seconds recorded for ``stage`` (0.0 if never timed)."""
        watch = self.timers.get(stage)
        return watch.elapsed if watch is not None else 0.0

    @property
    def filtering_seconds(self) -> float:
        """Total time spent in all filtering stages."""
        return sum(
            self.seconds(stage) for stage in ("qgram", "frequency", "cdf", "index")
        )

    @property
    def verification_seconds(self) -> float:
        return self.seconds("verification")

    @property
    def total_seconds(self) -> float:
        return self.seconds("total")

    #: counter fields folded by :meth:`merge`. ``total_strings`` and
    #: ``result_pairs`` are deliberately absent: what they mean for a
    #: merged run (shared strings? deduplicated pairs?) is the caller's
    #: call, so the caller sets them.
    MERGE_COUNTERS = (
        "length_eligible_pairs",
        "qgram_survivors",
        "qgram_rejected",
        "length_survivors",
        "frequency_checked",
        "frequency_survivors",
        "cdf_checked",
        "cdf_accepted",
        "cdf_rejected",
        "cdf_undecided",
        "verifications",
        "verification_hits",
        "false_candidates",
    )

    def merge(self, other: "JoinStatistics", include_total: bool = False) -> None:
        """Fold another run's counters and timers into this one.

        Per-stage counters are summed and per-stage stopwatches folded
        with :meth:`Stopwatch.add`. The ``total`` stopwatch is skipped
        unless ``include_total`` — a driver merging concurrent shards
        measures its own wall clock, and summing the shards' totals
        would double-count overlapping intervals. ``total_strings`` and
        ``result_pairs`` are never merged; the caller sets them.
        """
        with self._lock:
            for name in self.MERGE_COUNTERS:
                setattr(self, name, getattr(self, name) + getattr(other, name))
            for key, count in other.stage_counters.items():
                self.stage_counters[key] = (
                    self.stage_counters.get(key, 0) + count
                )
            for stage, watch in other.timers.items():
                if stage == "total" and not include_total:
                    continue
                self.timer(stage).add(watch.elapsed)

    def summary(self) -> str:
        """A compact human-readable report."""
        lines = [
            f"strings:              {self.total_strings}",
            f"length-eligible:      {self.length_eligible_pairs}",
        ]
        if self.length_survivors:
            lines.append(
                f"length survivors:     {self.length_survivors} "
                f"(no q-gram index)"
            )
        lines += [
            f"qgram survivors:      {self.qgram_survivors} "
            f"(rejected {self.qgram_rejected})",
            f"frequency survivors:  {self.frequency_survivors} "
            f"(checked {self.frequency_checked})",
            f"cdf accept/reject:    {self.cdf_accepted}/{self.cdf_rejected} "
            f"(undecided {self.cdf_undecided})",
            f"verifications:        {self.verifications} "
            f"(hits {self.verification_hits}, false {self.false_candidates})",
        ]
        for key in sorted(self.stage_counters):
            lines.append(f"{key + ':':<22}{self.stage_counters[key]}")
        lines += [
            f"result pairs:         {self.result_pairs}",
            f"filter time:          {self.filtering_seconds:.4f}s",
            f"verification time:    {self.verification_seconds:.4f}s",
            f"total time:           {self.total_seconds:.4f}s",
        ]
        return "\n".join(lines)
