"""R-S join over two distinct collections.

The paper focuses on the self-join "without loss of generality"
(Section 1); this module supplies the general form: all pairs
``(R in left, S in right)`` with ``Pr(ed(R, S) <= k) > tau``. The right
collection is indexed once; each left string probes it exactly like a
search query, so the machinery and guarantees are identical to the
self-join's.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import JoinConfig
from repro.core.results import JoinOutcome, JoinPair
from repro.core.search import SimilaritySearcher
from repro.core.stats import JoinStatistics
from repro.uncertain.string import UncertainString


def similarity_join_two(
    left: Sequence[UncertainString],
    right: Sequence[UncertainString],
    config: JoinConfig,
) -> JoinOutcome:
    """All cross-collection pairs satisfying (k, τ)-matching.

    Result pairs carry ``left_id`` from ``left`` and ``right_id`` from
    ``right`` (no ordering constraint between the two id spaces).
    """
    searcher = SimilaritySearcher(right, config)
    totals = JoinStatistics(total_strings=len(left) + len(right))
    pairs: list[JoinPair] = []
    total_timer = totals.timer("total").start()
    for left_id, query in enumerate(left):
        outcome = searcher.search(query)
        for match in outcome.matches:
            pairs.append(JoinPair(left_id, match.string_id, match.probability))
        _accumulate(totals, outcome.stats)
    total_timer.stop()
    totals.result_pairs = len(pairs)
    pairs.sort()
    return JoinOutcome(pairs=pairs, stats=totals)


def _accumulate(into: JoinStatistics, batch: JoinStatistics) -> None:
    """Fold one query's counters/timers into the run totals."""
    into.length_eligible_pairs += batch.length_eligible_pairs
    into.qgram_survivors += batch.qgram_survivors
    into.qgram_rejected += batch.qgram_rejected
    into.frequency_checked += batch.frequency_checked
    into.frequency_survivors += batch.frequency_survivors
    into.cdf_checked += batch.cdf_checked
    into.cdf_accepted += batch.cdf_accepted
    into.cdf_rejected += batch.cdf_rejected
    into.cdf_undecided += batch.cdf_undecided
    into.verifications += batch.verifications
    into.verification_hits += batch.verification_hits
    into.false_candidates += batch.false_candidates
    for stage, watch in batch.timers.items():
        if stage != "total":
            into.timer(stage).add(watch.elapsed)
