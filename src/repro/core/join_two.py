"""R-S join over two distinct collections.

The paper focuses on the self-join "without loss of generality"
(Section 1); this module supplies the general form: all pairs
``(R in left, S in right)`` with ``Pr(ed(R, S) <= k) > tau``. The right
collection is indexed once in a :class:`~repro.core.search.SimilaritySearcher`
(one persistent :class:`~repro.core.engine.JoinEngine`); each left
string probes it exactly like a search query, so the machinery and
guarantees are identical to the self-join's.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import JoinConfig
from repro.core.context import CollectionContext
from repro.core.results import JoinOutcome, JoinPair
from repro.core.search import SimilaritySearcher
from repro.core.stats import JoinStatistics
from repro.uncertain.string import UncertainString


def similarity_join_two(
    left: Sequence[UncertainString],
    right: Sequence[UncertainString],
    config: JoinConfig,
    context: CollectionContext | None = None,
) -> JoinOutcome:
    """All cross-collection pairs satisfying (k, τ)-matching.

    Result pairs carry ``left_id`` from ``left`` and ``right_id`` from
    ``right`` (no ordering constraint between the two id spaces).

    With ``config.workers > 1`` or a ``config.checkpoint_dir`` set the
    right collection is sharded into length bands by
    :mod:`repro.core.parallel` under a pluggable execution backend
    (:mod:`repro.core.dispatch`) with the fault-tolerant band
    executor; the pair list is identical either way. In shard mode
    (``config.shard``) the outcome holds only that shard's pairs —
    :func:`repro.core.merge.merge_run` folds the shards.

    ``context`` optionally supplies precomputed per-string features for
    the indexed (right) collection, keyed by position in ``right`` —
    the parallel band driver passes each band's slice of the parent's
    shared :class:`CollectionContext` here. Left strings probe as
    transient queries, so their features stay probe-local.
    """
    if config.workers > 1 or config.checkpoint_dir is not None:
        from repro.core.parallel import parallel_similarity_join_two

        return parallel_similarity_join_two(left, right, config)
    searcher = SimilaritySearcher(right, config, context=context)
    return probe_join(searcher, left, len(left) + len(right))


def probe_join(
    searcher: SimilaritySearcher,
    left: Sequence[UncertainString],
    total_strings: int,
) -> JoinOutcome:
    """Probe a prebuilt searcher with every left string — the R×S core.

    Split out of :func:`similarity_join_two` so callers that construct
    the searcher themselves (the sharded band task reloading a
    persisted per-band index snapshot) run the *same* probe loop and
    stats recording, keeping results byte-identical to the plain path.
    """
    totals = JoinStatistics(total_strings=total_strings)
    pairs: list[JoinPair] = []
    with totals.timer("total"):
        for left_id, query in enumerate(left):
            for match in searcher.iter_matches(query, stats=totals):
                pairs.append(
                    JoinPair(left_id, match.string_id, match.probability)
                )
    totals.result_pairs = len(pairs)
    pairs.sort()
    return JoinOutcome(pairs=pairs, stats=totals)
