"""Shared exception taxonomy of the fault-tolerant execution layer.

Every failure the join service can surface derives from
:class:`ReproError`, so callers distinguish "this system misbehaved"
from arbitrary Python errors with one ``except`` clause. Subclasses
carry structured context (band index, attempt counts, file paths,
record/column positions) instead of burying it in message text, and all
of them survive a pickle round-trip — band failures cross the
``ProcessPoolExecutor`` boundary as exception objects.

Two classes double-inherit ``ValueError`` for backward compatibility:
:class:`ConfigurationError` (config validation historically raised
``ValueError``) and :class:`DatasetRecordError` (malformed records
historically surfaced the parser's ``ValueError`` subclass).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro join system."""


class ConfigurationError(ReproError, ValueError):
    """Invalid configuration value (``JoinConfig``, driver knobs, CLI).

    Subclasses ``ValueError`` so pre-taxonomy callers that caught
    ``ValueError`` keep working.
    """


class WorkerCrashError(ReproError):
    """A band task failed permanently — in the pool *and* in-process.

    Raised only after the executor has exhausted its retry budget and
    the final in-process degraded attempt also failed; the original
    failure is chained as ``__cause__``.
    """

    def __init__(self, band_index: int, attempts: int, detail: str) -> None:
        super().__init__(
            f"band {band_index} failed after {attempts} attempt(s): {detail}"
        )
        self.band_index = band_index
        self.attempts = attempts
        self.detail = detail

    def __reduce__(
        self,
    ) -> tuple[type["WorkerCrashError"], tuple[int, int, str]]:
        return type(self), (self.band_index, self.attempts, self.detail)


class CorruptResultError(WorkerCrashError):
    """A band task returned a malformed result (wrong shape or band id).

    Counted separately (``fault.corrupt``) but handled like a crash:
    the band is retried and, failing that, degraded in-process.
    """

    def __init__(self, band_index: int, detail: str) -> None:
        super().__init__(band_index, 1, detail)

    def __reduce__(  # type: ignore[override]
        self,
    ) -> tuple[type["CorruptResultError"], tuple[int, str]]:
        return type(self), (self.band_index, self.detail)


class DeadlineExceededError(ReproError):
    """A cooperative deadline (:mod:`repro.core.deadline`) ran out.

    Raised by deadline check points inside the engine's refinement path
    (and anything else that calls ``check_active``). ``budget`` is the
    deadline's full allowance in seconds; ``elapsed`` how long the work
    had actually been running when the check fired.
    """

    def __init__(self, budget: float, elapsed: float) -> None:
        super().__init__(
            f"deadline exceeded: {elapsed:.3f}s elapsed of a "
            f"{budget:.3f}s budget"
        )
        self.budget = budget
        self.elapsed = elapsed

    def __reduce__(
        self,
    ) -> tuple[type["DeadlineExceededError"], tuple[float, float]]:
        return type(self), (self.budget, self.elapsed)


class ServiceOverloadedError(ReproError):
    """The serve layer shed a request at admission (explicit 503).

    Raised by :class:`repro.serve.admission.AdmissionController` when
    the in-flight limit and the bounded wait are both exhausted — the
    request was never started, so retrying after ``retry_after``
    seconds is safe and lossless.
    """

    def __init__(self, retry_after: float, detail: str) -> None:
        super().__init__(f"overloaded: {detail} (retry after {retry_after:g}s)")
        self.retry_after = retry_after
        self.detail = detail

    def __reduce__(
        self,
    ) -> tuple[type["ServiceOverloadedError"], tuple[float, str]]:
        return type(self), (self.retry_after, self.detail)


class BandTimeoutError(ReproError):
    """A band task exceeded its per-band execution deadline."""

    def __init__(self, band_index: int, timeout: float) -> None:
        super().__init__(
            f"band {band_index} exceeded its {timeout:.3f}s timeout"
        )
        self.band_index = band_index
        self.timeout = timeout

    def __reduce__(
        self,
    ) -> tuple[type["BandTimeoutError"], tuple[int, float]]:
        return type(self), (self.band_index, self.timeout)


class CheckpointCorruptError(ReproError):
    """A checkpoint or persisted index file is unreadable or malformed.

    ``path`` names the offending file; ``detail`` says what failed
    (bad magic, unsupported version, truncated payload, …).
    """

    def __init__(self, path: str, detail: str) -> None:
        super().__init__(f"{path}: {detail}")
        self.path = path
        self.detail = detail

    def __reduce__(
        self,
    ) -> tuple[type["CheckpointCorruptError"], tuple[str, str]]:
        return type(self), (self.path, self.detail)


class CheckpointMismatchError(ReproError):
    """A run directory belongs to a different join (input/config/bands).

    Resuming is only sound when the collection, the result-affecting
    configuration, and the band plan are identical to the original run;
    anything else must fail loudly rather than merge incompatible bands.
    """

    def __init__(self, path: str, detail: str) -> None:
        super().__init__(f"{path}: {detail}")
        self.path = path
        self.detail = detail

    def __reduce__(
        self,
    ) -> tuple[type["CheckpointMismatchError"], tuple[str, str]]:
        return type(self), (self.path, self.detail)


class ShardIncompleteError(ReproError):
    """A sharded run cannot be merged yet — some shard has not finished.

    Raised by the merge step when a shard directory or manifest is
    missing, or when a shard's checkpoints do not cover every band it
    owns. ``run_dir`` names the run; ``shard_index`` the offending
    shard (``None`` when the run-level manifest itself is missing);
    ``missing`` lists the absent band indices (empty when the whole
    shard is absent).
    """

    def __init__(
        self,
        run_dir: str,
        shard_index: int | None,
        missing: tuple[int, ...],
        detail: str,
    ) -> None:
        where = (
            f"shard {shard_index}" if shard_index is not None else "run"
        )
        super().__init__(f"{run_dir}: {where} incomplete: {detail}")
        self.run_dir = run_dir
        self.shard_index = shard_index
        self.missing = missing
        self.detail = detail

    def __reduce__(
        self,
    ) -> tuple[
        type["ShardIncompleteError"],
        tuple[str, "int | None", tuple[int, ...], str],
    ]:
        return type(self), (
            self.run_dir,
            self.shard_index,
            self.missing,
            self.detail,
        )


class DatasetRecordError(ReproError, ValueError):
    """One malformed record in a collection file.

    Carries the file ``path``, the 1-based ``record`` (line) number, the
    ``column`` offset within the record the parser choked on (``None``
    when unknown), and the parser's ``detail`` message. Subclasses
    ``ValueError`` because record errors historically surfaced as the
    parser's ``UncertainStringSyntaxError`` (a ``ValueError``).
    """

    def __init__(
        self,
        path: str,
        record: int,
        column: int | None,
        detail: str,
    ) -> None:
        super().__init__(f"{path}:{record}: {detail}")
        self.path = path
        self.record = record
        self.column = column
        self.detail = detail

    def __reduce__(
        self,
    ) -> tuple[type["DatasetRecordError"], tuple[str, int, "int | None", str]]:
        return type(self), (self.path, self.record, self.column, self.detail)
