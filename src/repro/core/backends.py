"""Execution-backend dispatch for the hot filter kernels.

A backend supplies both the *scalar* and the *batched* variants of the
two hot filter kernels — Theorem 4 CDF bounds and the Section 5
frequency bounds — used by the engine's per-candidate refine path and
its batch-refine path (DESIGN.md §6f/§6j). Three backends exist:

``python``
    The pinned reference: scalar kernel per candidate, exactly the
    floats every golden fixture was frozen against. It deliberately
    reports ``supports_batch = False`` so the engine keeps its scalar
    per-candidate hot path (no grouping overhead for no gain).

``numpy``
    Vectorized block kernels (:mod:`repro.filters.batch_numpy`), bit-
    identical to the reference by construction and enforced by
    ``tests/test_backend_parity.py``. Scalar calls fall back to the
    reference kernels — vectorization only pays on blocks. Optional:
    selecting it without numpy installed raises
    :class:`~repro.core.errors.ConfigurationError`, while merely
    importing ``repro`` never requires numpy.

``native``
    Compiled C kernels (:mod:`repro.filters._native`), bit-identical to
    the reference by construction (same IEEE-754 operation order, same
    libm) and enforced by ``tests/test_native_backend.py``. Fastest on
    the scalar path too, so ``supports_batch = True`` merely batches
    the marshalling; the engine may use either path. Optional:
    available only when the C extension was built (and not disabled via
    ``REPRO_NATIVE_DISABLE``); selecting it otherwise raises
    :class:`~repro.core.errors.ConfigurationError` naming the reason.

Backends are resolved from :attr:`JoinConfig.backend
<repro.core.config.JoinConfig.backend>` by :func:`resolve_backend`.
Because all backends produce byte-identical results, the backend name
is *not* part of the checkpoint fingerprint
(:mod:`repro.core.parallel`) — a run checkpointed under one backend may
resume under another.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.core.errors import ConfigurationError
from repro.filters import _native, batch_numpy
from repro.filters.cdf import cdf_bounds, cdf_bounds_batch
from repro.filters.frequency import (
    FrequencyProfile,
    frequency_bounds,
    frequency_bounds_batch,
)
from repro.uncertain.string import UncertainString

_Bounds = tuple[tuple[float, ...], tuple[float, ...]]

BACKEND_NAMES: tuple[str, ...] = ("python", "numpy", "native")


class KernelBackend(Protocol):
    """The kernel surface a backend must provide."""

    name: str
    #: Whether the engine should group candidates and call the batch
    #: kernels (False keeps the scalar per-candidate path).
    supports_batch: bool

    def cdf_bounds(
        self,
        left: UncertainString,
        right: UncertainString,
        k: int,
        left_features: object | None = None,
        right_features: object | None = None,
    ) -> _Bounds: ...

    def frequency_bounds(
        self,
        left: FrequencyProfile,
        right: FrequencyProfile,
        k: int,
    ) -> tuple[int, float | None]: ...

    def cdf_bounds_batch(
        self,
        left: UncertainString,
        rights: Sequence[UncertainString],
        k: int,
        left_features: object | None = None,
        right_features: Sequence[object | None] | None = None,
    ) -> list[_Bounds]: ...

    def frequency_bounds_batch(
        self,
        left: FrequencyProfile,
        rights: Sequence[FrequencyProfile],
        k: int,
    ) -> list[tuple[int, float]]: ...


class PythonBackend:
    """Reference backend: scalar kernels, candidate at a time."""

    name = "python"
    supports_batch = False

    def cdf_bounds(
        self,
        left: UncertainString,
        right: UncertainString,
        k: int,
        left_features: object | None = None,
        right_features: object | None = None,
    ) -> _Bounds:
        result: _Bounds = cdf_bounds(
            left, right, k, left_features, right_features
        )
        return result

    def frequency_bounds(
        self,
        left: FrequencyProfile,
        right: FrequencyProfile,
        k: int,
    ) -> tuple[int, float | None]:
        result: tuple[int, float | None] = frequency_bounds(left, right, k)
        return result

    def cdf_bounds_batch(
        self,
        left: UncertainString,
        rights: Sequence[UncertainString],
        k: int,
        left_features: object | None = None,
        right_features: Sequence[object | None] | None = None,
    ) -> list[_Bounds]:
        result: list[_Bounds] = cdf_bounds_batch(
            left, rights, k, left_features, right_features
        )
        return result

    def frequency_bounds_batch(
        self,
        left: FrequencyProfile,
        rights: Sequence[FrequencyProfile],
        k: int,
    ) -> list[tuple[int, float]]:
        result: list[tuple[int, float]] = frequency_bounds_batch(
            left, rights, k
        )
        return result


class NumpyBackend(PythonBackend):
    """Vectorized backend over ``(num_candidates, ...)`` arrays.

    Scalar calls inherit the reference kernels — per-ufunc dispatch
    overhead makes vectorizing single pairs a loss, and the floats are
    identical either way.
    """

    name = "numpy"
    supports_batch = True

    def cdf_bounds_batch(
        self,
        left: UncertainString,
        rights: Sequence[UncertainString],
        k: int,
        left_features: object | None = None,
        right_features: Sequence[object | None] | None = None,
    ) -> list[_Bounds]:
        result: list[_Bounds] = batch_numpy.cdf_bounds_batch_numpy(
            left, rights, k, left_features, right_features
        )
        return result

    def frequency_bounds_batch(
        self,
        left: FrequencyProfile,
        rights: Sequence[FrequencyProfile],
        k: int,
    ) -> list[tuple[int, float]]:
        result: list[tuple[int, float]] = (
            batch_numpy.frequency_bounds_batch_numpy(left, rights, k)
        )
        return result


class NativeBackend:
    """Compiled-C backend: fastest scalar kernels, batch = scalar loop."""

    name = "native"
    supports_batch = True

    def cdf_bounds(
        self,
        left: UncertainString,
        right: UncertainString,
        k: int,
        left_features: object | None = None,
        right_features: object | None = None,
    ) -> _Bounds:
        result: _Bounds = _native.cdf_bounds_native(
            left, right, k, left_features, right_features
        )
        return result

    def frequency_bounds(
        self,
        left: FrequencyProfile,
        right: FrequencyProfile,
        k: int,
    ) -> tuple[int, float | None]:
        result: tuple[int, float | None] = _native.frequency_bounds_native(
            left, right, k
        )
        return result

    def cdf_bounds_batch(
        self,
        left: UncertainString,
        rights: Sequence[UncertainString],
        k: int,
        left_features: object | None = None,
        right_features: Sequence[object | None] | None = None,
    ) -> list[_Bounds]:
        result: list[_Bounds] = _native.cdf_bounds_batch_native(
            left, rights, k, left_features, right_features
        )
        return result

    def frequency_bounds_batch(
        self,
        left: FrequencyProfile,
        rights: Sequence[FrequencyProfile],
        k: int,
    ) -> list[tuple[int, float]]:
        result: list[tuple[int, float]] = (
            _native.frequency_bounds_batch_native(left, rights, k)
        )
        return result


def numpy_available() -> bool:
    """Whether the optional numpy backend can actually run here."""
    available: bool = batch_numpy.numpy_available()
    return available


def native_available() -> bool:
    """Whether the optional compiled backend can actually run here."""
    available: bool = _native.native_available()
    return available


def backend_availability() -> dict[str, str | None]:
    """Per-backend availability: name → ``None`` (usable) or the reason
    it is not.

    The source of truth for error messages, the CLI, and the benchmark
    suite document (so a bench JSON's ``skipped_kernels`` is
    attributable without rerunning anything).
    """
    numpy_reason = (
        None
        if numpy_available()
        else "numpy is not installed (pip install numpy)"
    )
    native_reason: str | None = _native.native_unavailable_reason()
    return {
        "python": None,
        "numpy": numpy_reason,
        "native": native_reason,
    }


def available_backends() -> tuple[str, ...]:
    """Backend names usable in this interpreter (python always is)."""
    availability = backend_availability()
    return tuple(
        name for name in BACKEND_NAMES if availability[name] is None
    )


def resolve_backend(name: str) -> KernelBackend:
    """The :class:`KernelBackend` for a validated config ``backend`` name.

    Raises :class:`~repro.core.errors.ConfigurationError` for unknown
    names and for optional backends that cannot run in this
    interpreter; either way the message enumerates which backends *are*
    available here and why the missing ones are missing.
    """
    if name == "python":
        return PythonBackend()
    availability = backend_availability()
    usable = ", ".join(
        backend for backend in BACKEND_NAMES if availability[backend] is None
    )
    if name in ("numpy", "native"):
        reason = availability[name]
        if reason is not None:
            raise ConfigurationError(
                f"backend {name!r} is not available: {reason}. "
                f"Backends available in this interpreter: {usable}."
            )
        if name == "numpy":
            return NumpyBackend()
        return NativeBackend()
    missing = "; ".join(
        f"{backend}: {reason}"
        for backend, reason in availability.items()
        if reason is not None
    )
    detail = f" (unavailable here — {missing})" if missing else ""
    raise ConfigurationError(
        f"unknown backend {name!r}; choose from {sorted(BACKEND_NAMES)}. "
        f"Backends available in this interpreter: {usable}{detail}."
    )
