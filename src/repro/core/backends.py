"""Execution-backend dispatch for the batch filter kernels.

A backend supplies the *batched* variants of the two hot filter kernels
— Theorem 4 CDF bounds and the Section 5 frequency bounds — used by the
engine's batch-refine path (DESIGN.md §6f). Two backends exist:

``python``
    The pinned reference: scalar kernel per candidate, exactly the
    floats every golden fixture was frozen against. It deliberately
    reports ``supports_batch = False`` so the engine keeps its scalar
    per-candidate hot path (no grouping overhead for no gain).

``numpy``
    Vectorized block kernels (:mod:`repro.filters.batch_numpy`), bit-
    identical to the reference by construction and enforced by
    ``tests/test_backend_parity.py``. Optional: selecting it without
    numpy installed raises
    :class:`~repro.core.errors.ConfigurationError`, while merely
    importing ``repro`` never requires numpy.

Backends are resolved from :attr:`JoinConfig.backend
<repro.core.config.JoinConfig.backend>` by :func:`resolve_backend`.
Because both backends produce byte-identical results, the backend name
is *not* part of the checkpoint fingerprint
(:mod:`repro.core.parallel`) — a run checkpointed under one backend may
resume under the other.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.core.errors import ConfigurationError
from repro.filters import batch_numpy
from repro.filters.cdf import cdf_bounds_batch
from repro.filters.frequency import FrequencyProfile, frequency_bounds_batch
from repro.uncertain.string import UncertainString

_Bounds = tuple[tuple[float, ...], tuple[float, ...]]

BACKEND_NAMES: tuple[str, ...] = ("python", "numpy")


class KernelBackend(Protocol):
    """The batch kernel surface a backend must provide."""

    name: str
    #: Whether the engine should group candidates and call the batch
    #: kernels (False keeps the scalar per-candidate path).
    supports_batch: bool

    def cdf_bounds_batch(
        self,
        left: UncertainString,
        rights: Sequence[UncertainString],
        k: int,
        left_features: object | None = None,
        right_features: Sequence[object | None] | None = None,
    ) -> list[_Bounds]: ...

    def frequency_bounds_batch(
        self,
        left: FrequencyProfile,
        rights: Sequence[FrequencyProfile],
        k: int,
    ) -> list[tuple[int, float]]: ...


class PythonBackend:
    """Reference backend: scalar kernels, candidate at a time."""

    name = "python"
    supports_batch = False

    def cdf_bounds_batch(
        self,
        left: UncertainString,
        rights: Sequence[UncertainString],
        k: int,
        left_features: object | None = None,
        right_features: Sequence[object | None] | None = None,
    ) -> list[_Bounds]:
        result: list[_Bounds] = cdf_bounds_batch(
            left, rights, k, left_features, right_features
        )
        return result

    def frequency_bounds_batch(
        self,
        left: FrequencyProfile,
        rights: Sequence[FrequencyProfile],
        k: int,
    ) -> list[tuple[int, float]]:
        result: list[tuple[int, float]] = frequency_bounds_batch(
            left, rights, k
        )
        return result


class NumpyBackend:
    """Vectorized backend over ``(num_candidates, ...)`` arrays."""

    name = "numpy"
    supports_batch = True

    def cdf_bounds_batch(
        self,
        left: UncertainString,
        rights: Sequence[UncertainString],
        k: int,
        left_features: object | None = None,
        right_features: Sequence[object | None] | None = None,
    ) -> list[_Bounds]:
        result: list[_Bounds] = batch_numpy.cdf_bounds_batch_numpy(
            left, rights, k, left_features, right_features
        )
        return result

    def frequency_bounds_batch(
        self,
        left: FrequencyProfile,
        rights: Sequence[FrequencyProfile],
        k: int,
    ) -> list[tuple[int, float]]:
        result: list[tuple[int, float]] = (
            batch_numpy.frequency_bounds_batch_numpy(left, rights, k)
        )
        return result


def numpy_available() -> bool:
    """Whether the optional numpy backend can actually run here."""
    available: bool = batch_numpy.numpy_available()
    return available


def available_backends() -> tuple[str, ...]:
    """Backend names usable in this interpreter (python always is)."""
    if numpy_available():
        return BACKEND_NAMES
    return ("python",)


def resolve_backend(name: str) -> KernelBackend:
    """The :class:`KernelBackend` for a validated config ``backend`` name."""
    if name == "python":
        return PythonBackend()
    if name == "numpy":
        if not numpy_available():
            raise ConfigurationError(
                "backend 'numpy' requires the optional numpy dependency, "
                "which is not installed; use backend 'python' or install "
                "numpy"
            )
        return NumpyBackend()
    raise ConfigurationError(
        f"unknown backend {name!r}; choose from {sorted(BACKEND_NAMES)}"
    )
