"""The public join/search API.

:func:`similarity_join` answers the paper's problem statement: given a
collection of uncertain strings and thresholds ``(k, tau)``, report all
pairs with ``Pr(ed(R, S) <= k) > tau``. Algorithm variants (QFCT, QCT,
QFT, FCT — Section 7) are selected through :class:`JoinConfig`. All
drivers are thin adapters over the streaming :class:`JoinEngine`;
:func:`iter_join_pairs` / :func:`iter_matches` expose its generator API
directly.
"""

from repro.core.checkpoint import ShardCheckpointStore
from repro.core.config import ALGORITHMS, JoinConfig
from repro.core.dispatch import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ShardBackend,
    effective_pool_width,
    parse_shard,
    resolve_execution_backend,
    shard_slice,
)
from repro.core.errors import (
    BandTimeoutError,
    CheckpointCorruptError,
    CheckpointMismatchError,
    ConfigurationError,
    CorruptResultError,
    DatasetRecordError,
    ReproError,
    ShardIncompleteError,
    WorkerCrashError,
)
from repro.core.executor import CheckpointStore, RetryPolicy, run_bands
from repro.core.merge import merge_run
from repro.core.results import JoinOutcome, JoinPair, SearchMatch, SearchOutcome
from repro.core.stats import JoinStatistics
from repro.core.engine import (
    CandidateSource,
    JoinEngine,
    LengthBandSource,
    SegmentIndexSource,
    iter_join_pairs,
    iter_matches,
)
# TauProvider is re-exported for typing driver extensions; it stays out
# of __all__ (a bare Callable alias carries no docstring).
from repro.core.pipeline import StageChain, TauProvider as TauProvider
from repro.core.incremental import IncrementalJoiner
from repro.core.join import similarity_join
from repro.core.join_two import similarity_join_two
from repro.core.parallel import (
    LengthBand,
    parallel_similarity_join,
    parallel_similarity_join_two,
    plan_length_bands,
)
from repro.core.search import SimilaritySearcher, similarity_search
from repro.core.topk import top_k_join

__all__ = [
    "ALGORITHMS",
    "JoinConfig",
    "ReproError",
    "ConfigurationError",
    "WorkerCrashError",
    "CorruptResultError",
    "BandTimeoutError",
    "CheckpointCorruptError",
    "CheckpointMismatchError",
    "DatasetRecordError",
    "ShardIncompleteError",
    "RetryPolicy",
    "CheckpointStore",
    "ShardCheckpointStore",
    "run_bands",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "ShardBackend",
    "resolve_execution_backend",
    "effective_pool_width",
    "parse_shard",
    "shard_slice",
    "merge_run",
    "JoinOutcome",
    "JoinPair",
    "JoinEngine",
    "CandidateSource",
    "SegmentIndexSource",
    "LengthBandSource",
    "StageChain",
    "LengthBand",
    "SearchMatch",
    "SearchOutcome",
    "JoinStatistics",
    "similarity_join",
    "similarity_join_two",
    "iter_join_pairs",
    "iter_matches",
    "parallel_similarity_join",
    "parallel_similarity_join_two",
    "plan_length_bands",
    "SimilaritySearcher",
    "similarity_search",
    "IncrementalJoiner",
    "top_k_join",
]
