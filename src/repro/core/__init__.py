"""The public join/search API.

:func:`similarity_join` answers the paper's problem statement: given a
collection of uncertain strings and thresholds ``(k, tau)``, report all
pairs with ``Pr(ed(R, S) <= k) > tau``. Algorithm variants (QFCT, QCT,
QFT, FCT — Section 7) are selected through :class:`JoinConfig`.
"""

from repro.core.config import ALGORITHMS, JoinConfig
from repro.core.results import JoinOutcome, JoinPair, SearchMatch, SearchOutcome
from repro.core.stats import JoinStatistics
from repro.core.incremental import IncrementalJoiner
from repro.core.join import similarity_join
from repro.core.join_two import similarity_join_two
from repro.core.parallel import (
    LengthBand,
    parallel_similarity_join,
    parallel_similarity_join_two,
    plan_length_bands,
)
from repro.core.search import SimilaritySearcher, similarity_search
from repro.core.topk import top_k_join

__all__ = [
    "ALGORITHMS",
    "JoinConfig",
    "JoinOutcome",
    "JoinPair",
    "LengthBand",
    "SearchMatch",
    "SearchOutcome",
    "JoinStatistics",
    "similarity_join",
    "similarity_join_two",
    "parallel_similarity_join",
    "parallel_similarity_join_two",
    "plan_length_bands",
    "SimilaritySearcher",
    "similarity_search",
    "IncrementalJoiner",
    "top_k_join",
]
