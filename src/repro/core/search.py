"""Similarity search over an indexed collection.

The paper's machinery answers search queries too (its indexes were
originally built for them): all strings ``S`` in the collection with
``Pr(ed(Q, S) <= k) > tau`` for an uncertain (or deterministic) query
``Q``. :class:`SimilaritySearcher` builds the index once and serves many
queries.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import JoinConfig
from repro.core.pipeline import CandidateRefiner
from repro.core.results import SearchMatch, SearchOutcome
from repro.core.stats import JoinStatistics
from repro.filters.frequency import FrequencyProfile
from repro.index.inverted import SegmentInvertedIndex
from repro.uncertain.string import UncertainString


class SimilaritySearcher:
    """An immutable collection indexed for repeated similarity searches."""

    def __init__(
        self, collection: Sequence[UncertainString], config: JoinConfig
    ) -> None:
        self.collection = list(collection)
        self.config = config
        self._by_length: dict[int, list[int]] = {}
        self._index: SegmentInvertedIndex | None = None
        # Frequency profiles of *collection* strings persist across
        # queries (index-resident state, like the segment index); each
        # query's own profile lives under the -1 pseudo-id in the
        # per-search refiner and is rebuilt per call.
        self._profile_cache: dict[int, FrequencyProfile] = {}
        order = sorted(
            range(len(self.collection)), key=lambda i: (len(self.collection[i]), i)
        )
        self._rank_to_id = {rank: string_id for rank, string_id in enumerate(order)}
        if config.uses_qgram:
            self._index = SegmentInvertedIndex(
                k=config.k,
                q=config.q,
                selection=config.selection,
                group_mode=config.group_mode,
                bound_mode=config.bound_mode,
            )
            for rank, string_id in enumerate(order):
                self._index.add(rank, self.collection[string_id])
        for string_id, string in enumerate(self.collection):
            self._by_length.setdefault(len(string), []).append(string_id)

    def search(self, query: UncertainString) -> SearchOutcome:
        """All collection strings similar to ``query`` under (k, τ)."""
        config = self.config
        stats = JoinStatistics(total_strings=len(self.collection))
        refiner = CandidateRefiner(config, stats, profile_cache=self._profile_cache)
        total = stats.timer("total").start()
        if self._index is not None:
            with stats.timer("qgram"):
                candidates = [
                    self._rank_to_id[candidate.string_id]
                    for candidate in self._index.query(query, config.tau)
                ]
            stats.qgram_survivors += len(candidates)
        else:
            candidates = [
                string_id
                for length, ids in self._by_length.items()
                if abs(length - len(query)) <= config.k
                for string_id in ids
            ]
            stats.length_survivors += len(candidates)
        matches: list[SearchMatch] = []
        query_key = -1  # pseudo-id for the query's cached trie/profile
        for string_id in sorted(candidates):
            similar, probability = refiner.refine(
                query_key, query, string_id, self.collection[string_id]
            )
            if similar:
                matches.append(SearchMatch(string_id, probability))
        total.stop()
        stats.result_pairs = len(matches)
        matches.sort()
        return SearchOutcome(matches=matches, stats=stats)


def similarity_search(
    collection: Sequence[UncertainString],
    query: UncertainString,
    config: JoinConfig,
) -> SearchOutcome:
    """One-shot search: build the index, run one query."""
    return SimilaritySearcher(collection, config).search(query)
