"""Similarity search over an indexed collection.

The paper's machinery answers search queries too (its indexes were
originally built for them): all strings ``S`` in the collection with
``Pr(ed(Q, S) <= k) > tau`` for an uncertain (or deterministic) query
``Q``. :class:`SimilaritySearcher` holds one persistent
:class:`~repro.core.engine.JoinEngine` — collection indexed once,
frequency profiles cached across queries — and serves many queries.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.core.config import JoinConfig
from repro.core.context import CollectionContext
from repro.core.engine import JoinEngine
from repro.core.results import SearchMatch, SearchOutcome
from repro.core.stats import JoinStatistics
from repro.uncertain.string import UncertainString

#: Pseudo-id for query strings: negative, so the engine keeps their
#: cached trie/profile local to one probe instead of index-resident.
QUERY_ID = -1


class SimilaritySearcher:
    """An immutable collection indexed for repeated similarity searches."""

    #: The indexed strings, addressable by id — a materialized list for
    #: in-memory searchers, a lazy store facade under :meth:`from_store`.
    collection: Sequence[UncertainString]

    def __init__(
        self,
        collection: Sequence[UncertainString],
        config: JoinConfig,
        context: CollectionContext | None = None,
        index: Any = None,
    ) -> None:
        self.collection = list(collection)
        self.config = config
        # Collection features/profiles persist across queries
        # (index-resident state, like the segment index); each query's
        # own profile lives with the negative pseudo-id's per-probe
        # state. ``context`` lets a parallel band reuse features the
        # parent already computed; by default features fill in lazily
        # as queries touch the collection. ``index`` hands the engine a
        # persisted segment-index snapshot of exactly this collection
        # (the sharded R-S join reloads its band indexes this way); the
        # (length, id) add order below matches the build order, which
        # the snapshot contract requires.
        self._context = context if context is not None else CollectionContext()
        self._engine = JoinEngine(config, context=self._context, index=index)
        order = sorted(
            range(len(self.collection)), key=lambda i: (len(self.collection[i]), i)
        )
        for string_id in order:
            self._engine.add(string_id, self.collection[string_id])

    @classmethod
    def from_store(
        cls,
        store: Any,
        config: JoinConfig,
        context: CollectionContext | None = None,
    ) -> "SimilaritySearcher":
        """A searcher over a prebuilt :class:`~repro.store.base.IndexStore`.

        Nothing collection-sized is materialized: the collection is the
        store's lazy facade, candidate strings hydrate through a bounded
        LRU shared with the engine, features live in a bounded context,
        and registration replays the store's recorded (length, id) visit
        order from bookkeeping alone — no string is parsed until a query
        touches it. Results are byte-identical to a searcher built over
        the loaded collection with the same config.
        """
        from repro.store.base import DEFAULT_CACHE_SIZE
        from repro.store.source import (
            StoreCollection,
            StoreContext,
            StoreStringCache,
        )

        searcher = cls.__new__(cls)
        cache_size = getattr(store, "cache_size", DEFAULT_CACHE_SIZE)
        cache = StoreStringCache(store, cache_size)
        searcher.collection = StoreCollection(store, cache=cache)
        searcher.config = config
        searcher._context = (
            context if context is not None else StoreContext(cache_size)
        )
        searcher._engine = JoinEngine(
            config,
            context=searcher._context,
            store=store,
            store_cache=cache,
        )
        register = getattr(searcher._engine.source, "register")
        for string_id, length in zip(
            store.ids_in_visit_order(), store.lengths_in_visit_order()
        ):
            register(string_id, length)
        return searcher

    @property
    def engine(self) -> JoinEngine:
        """The underlying engine (candidate source, stage chain)."""
        return self._engine

    def iter_matches(
        self,
        query: UncertainString,
        stats: JoinStatistics | None = None,
        tau: float | None = None,
    ) -> Iterator[SearchMatch]:
        """Stream matches for ``query`` as they are discovered.

        ``stats``, when given, receives this probe's counters/timers;
        otherwise recording goes to a throwaway sink. Either way the
        sink is passed *per probe* (never assigned onto the shared
        engine), so concurrent queries over one searcher each keep
        their own statistics. ``tau`` overrides the configured
        threshold for this query only — the per-request τ of the serve
        layer; candidate generation and every filter stage prune
        against the override exactly as a searcher built with that τ
        would.
        """
        sink = (
            stats
            if stats is not None
            else JoinStatistics(total_strings=len(self.collection))
        )
        return self._engine.matches(query, QUERY_ID, stats=sink, tau=tau)

    def search(
        self, query: UncertainString, tau: float | None = None
    ) -> SearchOutcome:
        """All collection strings similar to ``query`` under (k, τ)."""
        stats = JoinStatistics(total_strings=len(self.collection))
        matches: list[SearchMatch] = []
        with stats.timer("total"):
            matches.extend(self.iter_matches(query, stats=stats, tau=tau))
        stats.result_pairs = len(matches)
        matches.sort()
        return SearchOutcome(matches=matches, stats=stats)


def similarity_search(
    collection: Sequence[UncertainString],
    query: UncertainString,
    config: JoinConfig,
) -> SearchOutcome:
    """One-shot search: build the index, run one query."""
    return SimilaritySearcher(collection, config).search(query)
