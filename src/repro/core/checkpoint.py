"""Checkpoint persistence for band execution: flat and partitioned runs.

One join run owns one *run directory*. Its shared ``run.json`` manifest
pins the run's identity — a SHA-256 fingerprint over inputs, every
result-affecting config knob, and the band plan — so bands persisted by
different processes (or different machines mounting the same
directory) can only ever be merged when they belong to the same join.

Two layouts share that manifest:

* **flat** (:class:`CheckpointStore`, the PR-3 layout): one
  ``band-NNNNN.ckpt`` pickle per completed band directly under the run
  directory. Used by single-process checkpointed runs (``--resume``).
* **partitioned** (:class:`ShardCheckpointStore`): each shard ``i`` of
  ``N`` owns a contiguous slice of the band plan and writes
  ``shard-i/band-NNNNN.ckpt`` plus its own ``shard-i/manifest.json``
  (fingerprint, shard coordinates, owned band indices) under the one
  shared ``run.json``. ``run.json`` additionally records the shard
  count, so an invocation with a different decomposition — which would
  create overlapping band ownership — fails with
  :class:`~repro.core.errors.CheckpointMismatchError` instead of
  silently interleaving two plans. The merge step
  (:mod:`repro.core.merge`) folds the shard checkpoints back into one
  result.

Every write goes through a tmp file and ``os.replace``, so a kill
mid-write never leaves a half file — a checkpoint either exists
completely or not at all. Unreadable or mis-headed files surface as
:class:`~repro.core.errors.CheckpointCorruptError` naming the offending
path; a file that is readable but belongs to a different join or shard
plan surfaces as :class:`~repro.core.errors.CheckpointMismatchError`.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path
from typing import Any

from repro.core.errors import (
    CheckpointCorruptError,
    CheckpointMismatchError,
    ConfigurationError,
)
from repro.core.results import JoinPair
from repro.core.stats import JoinStatistics
from repro.util.atomic import atomic_write_bytes

#: What a band task returns: ``(band_index, owned pairs, band stats)``.
BandResult = tuple[int, list[JoinPair], JoinStatistics]

#: Bump when the band checkpoint layout changes incompatibly.
CHECKPOINT_MAGIC = "repro-band-checkpoint"
CHECKPOINT_VERSION = 1
_MANIFEST_NAME = "run.json"
_SHARD_MANIFEST_NAME = "manifest.json"


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via tmp file + rename (crash-atomic)."""
    atomic_write_bytes(path, data)


def read_manifest_document(path: Path) -> dict[str, Any]:
    """A checkpoint-layer JSON manifest, header-validated.

    Shared by the run manifest, the per-shard manifests, and the merge
    step: unreadable JSON or a wrong magic/version header raises
    :class:`CheckpointCorruptError` naming ``path``.
    """
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
        raise CheckpointCorruptError(
            str(path), f"unreadable manifest: {exc}"
        ) from exc
    if (
        not isinstance(document, dict)
        or document.get("magic") != CHECKPOINT_MAGIC
        or document.get("version") != CHECKPOINT_VERSION
    ):
        raise CheckpointCorruptError(
            str(path),
            "bad manifest magic/version (expected "
            f"{CHECKPOINT_MAGIC!r} v{CHECKPOINT_VERSION})",
        )
    return document


class CheckpointStore:
    """Atomic per-band checkpoints under one run directory.

    Layout: ``run.json`` (magic, version, join fingerprint, band count)
    plus one ``band-NNNNN.ckpt`` pickle per completed band, each with
    its own versioned header. Every write goes through a tmp file and
    ``os.replace``, so a kill mid-write never leaves a half file — a
    checkpoint either exists completely or not at all.
    """

    def __init__(self, run_dir: str | Path) -> None:
        self.run_dir = Path(run_dir)

    @property
    def manifest_path(self) -> Path:
        return self.run_dir / _MANIFEST_NAME

    def band_path(self, band_index: int) -> Path:
        return self.run_dir / f"band-{band_index:05d}.ckpt"

    def open(
        self,
        fingerprint: str,
        bands: int,
        *,
        shards: int | None = None,
        strings: int = 0,
    ) -> None:
        """Create the run directory/manifest, or validate an existing one.

        ``shards`` records the shard decomposition (``None`` for flat
        single-process runs); ``strings`` records the input collection
        size so the merge step can restore ``total_strings`` without
        re-reading the input. Raises
        :class:`CheckpointMismatchError` when the directory belongs to a
        different join (input, config, band plan, or shard
        decomposition) and :class:`CheckpointCorruptError` when the
        manifest is unreadable.
        """
        self.run_dir.mkdir(parents=True, exist_ok=True)
        manifest = self.manifest_path
        if manifest.exists():
            document = read_manifest_document(manifest)
            if (
                document.get("fingerprint") != fingerprint
                or document.get("bands") != bands
            ):
                raise CheckpointMismatchError(
                    str(manifest),
                    "run directory belongs to a different join "
                    "(input collection, result-affecting config, or "
                    "band plan changed); use a fresh --resume directory",
                )
            if document.get("shards") != shards:
                raise CheckpointMismatchError(
                    str(manifest),
                    f"run directory was initialized for "
                    f"shards={document.get('shards')} but this invocation "
                    f"uses shards={shards}; mixing decompositions would "
                    "overlap band ownership — use a fresh run directory",
                )
            return
        payload: dict[str, Any] = {
            "magic": CHECKPOINT_MAGIC,
            "version": CHECKPOINT_VERSION,
            "fingerprint": fingerprint,
            "bands": bands,
            "shards": shards,
            "strings": strings,
        }
        _atomic_write_bytes(
            manifest, json.dumps(payload, indent=2).encode("utf-8")
        )

    def completed_bands(self) -> list[int]:
        """Band indices with an existing checkpoint file, ascending."""
        indices: list[int] = []
        for path in self.run_dir.glob("band-*.ckpt"):
            stem = path.stem.partition("-")[2]
            if stem.isdigit():
                indices.append(int(stem))
        return sorted(indices)

    def _document(
        self, band_index: int, pairs: list[JoinPair], stats: JoinStatistics
    ) -> dict[str, Any]:
        return {
            "magic": CHECKPOINT_MAGIC,
            "version": CHECKPOINT_VERSION,
            "band": band_index,
            "pairs": pairs,
            "stats": stats,
        }

    def save(
        self, band_index: int, pairs: list[JoinPair], stats: JoinStatistics
    ) -> None:
        """Atomically persist one completed band's result."""
        _atomic_write_bytes(
            self.band_path(band_index),
            pickle.dumps(self._document(band_index, pairs, stats)),
        )

    def load(self, band_index: int) -> BandResult:
        """Load one band checkpoint, verifying its header.

        Truncated, unpicklable, or mis-headed files raise
        :class:`CheckpointCorruptError` naming the offending path.
        """
        path = self.band_path(band_index)
        try:
            document = pickle.loads(path.read_bytes())
        except FileNotFoundError:
            raise
        except Exception as exc:  # pickle raises many concrete types
            raise CheckpointCorruptError(
                str(path), f"unreadable band checkpoint: {exc}"
            ) from exc
        if (
            not isinstance(document, dict)
            or document.get("magic") != CHECKPOINT_MAGIC
            or document.get("version") != CHECKPOINT_VERSION
        ):
            raise CheckpointCorruptError(
                str(path),
                "bad band-checkpoint magic/version (expected "
                f"{CHECKPOINT_MAGIC!r} v{CHECKPOINT_VERSION})",
            )
        pairs = document.get("pairs")
        stats = document.get("stats")
        if (
            document.get("band") != band_index
            or not isinstance(pairs, list)
            or not isinstance(stats, JoinStatistics)
        ):
            raise CheckpointCorruptError(
                str(path), "band checkpoint payload is malformed"
            )
        self._validate_document(path, document)
        return band_index, pairs, stats

    def _validate_document(self, path: Path, document: dict[str, Any]) -> None:
        """Layout-specific extra validation hook (no-op for flat runs)."""

    def load_if_present(self, band_index: int) -> BandResult | None:
        """:meth:`load`, or ``None`` when the band has no checkpoint."""
        if not self.band_path(band_index).exists():
            return None
        return self.load(band_index)


class ShardCheckpointStore(CheckpointStore):
    """One shard's slice of a partitioned checkpoint run.

    Shard ``shard_index`` of ``shard_count`` keeps its band checkpoints
    and manifest under ``run_dir/shard-<i>/``, beneath the shared
    ``run.json``. The shard manifest records the join fingerprint, the
    shard coordinates, and the exact owned band indices, so

    * re-running the same shard resumes its completed bands,
    * a shard invoked with a different decomposition (overlapping
      ownership) is rejected at :meth:`open_shard` via the shared
      manifest's recorded shard count, and
    * the merge step can verify complete, disjoint coverage of the band
      plan before folding anything.

    Band checkpoints written here additionally embed the fingerprint
    and shard index; :meth:`load` rejects a checkpoint copied in from a
    different join or shard plan with :class:`CheckpointMismatchError`
    rather than silently merging it.
    """

    def __init__(
        self, run_dir: str | Path, shard_index: int, shard_count: int
    ) -> None:
        super().__init__(run_dir)
        if shard_count < 1:
            raise ConfigurationError(
                f"shard count must be >= 1, got {shard_count}"
            )
        if not 0 <= shard_index < shard_count:
            raise ConfigurationError(
                f"shard index must be in [0, {shard_count}), got {shard_index}"
            )
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.shard_dir = self.run_dir / f"shard-{shard_index}"
        #: Fingerprint the loaded checkpoints must carry; set by
        #: :meth:`open_shard` (writers) or the merge step (readers).
        self.expected_fingerprint: str | None = None

    @property
    def shard_manifest_path(self) -> Path:
        return self.shard_dir / _SHARD_MANIFEST_NAME

    def band_path(self, band_index: int) -> Path:
        return self.shard_dir / f"band-{band_index:05d}.ckpt"

    def index_snapshot_path(self, band_index: int) -> Path:
        """Where this shard persists band ``band_index``'s segment-index
        snapshot (see :mod:`repro.index.persistence`)."""
        return self.shard_dir / f"index-band-{band_index:05d}.json"

    def completed_bands(self) -> list[int]:
        indices: list[int] = []
        for path in self.shard_dir.glob("band-*.ckpt"):
            stem = path.stem.partition("-")[2]
            if stem.isdigit():
                indices.append(int(stem))
        return sorted(indices)

    def open_shard(
        self,
        fingerprint: str,
        bands: int,
        owned: list[int],
        *,
        strings: int = 0,
    ) -> None:
        """Open/validate the shared run manifest *and* this shard's own.

        ``owned`` is the ascending list of band indices this shard's
        slice of the plan covers. A pre-existing shard manifest must
        agree on fingerprint, coordinates, and ownership — anything
        else is a mismatched shard plan and fails loudly.
        """
        self.open(fingerprint, bands, shards=self.shard_count, strings=strings)
        self.shard_dir.mkdir(parents=True, exist_ok=True)
        self.expected_fingerprint = fingerprint
        manifest = self.shard_manifest_path
        if manifest.exists():
            document = read_manifest_document(manifest)
            if (
                document.get("fingerprint") != fingerprint
                or document.get("shard") != self.shard_index
                or document.get("shards") != self.shard_count
                or document.get("bands") != bands
                or document.get("owned") != owned
            ):
                raise CheckpointMismatchError(
                    str(manifest),
                    "shard manifest belongs to a different join or shard "
                    "plan (fingerprint, coordinates, or band ownership "
                    "changed); use a fresh run directory",
                )
            return
        payload: dict[str, Any] = {
            "magic": CHECKPOINT_MAGIC,
            "version": CHECKPOINT_VERSION,
            "fingerprint": fingerprint,
            "shard": self.shard_index,
            "shards": self.shard_count,
            "bands": bands,
            "owned": owned,
        }
        _atomic_write_bytes(
            manifest, json.dumps(payload, indent=2).encode("utf-8")
        )

    def _document(
        self, band_index: int, pairs: list[JoinPair], stats: JoinStatistics
    ) -> dict[str, Any]:
        document = super()._document(band_index, pairs, stats)
        document["fingerprint"] = self.expected_fingerprint
        document["shard"] = self.shard_index
        return document

    def _validate_document(self, path: Path, document: dict[str, Any]) -> None:
        """Reject checkpoints from a different join or shard plan."""
        if "fingerprint" not in document or "shard" not in document:
            raise CheckpointCorruptError(
                str(path),
                "band checkpoint lacks the shard-layout fingerprint/shard "
                "fields",
            )
        if document["shard"] != self.shard_index or (
            self.expected_fingerprint is not None
            and document["fingerprint"] != self.expected_fingerprint
        ):
            raise CheckpointMismatchError(
                str(path),
                "band checkpoint belongs to a different join or shard plan "
                f"(shard {document['shard']!r}, fingerprint "
                f"{str(document['fingerprint'])[:12]}…); refusing to merge it",
            )
