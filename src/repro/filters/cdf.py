"""CDF-bound filtering (Section 6.1, Theorem 4).

A dynamic program over the banded ``|R| x |S|`` grid keeps, per cell
``(x, y)``, arrays ``L[j] <= Pr(ed(R[1..x], S[1..y]) <= j) <= U[j]`` for
``j = 0..k``. At the final cell the bounds decide the pair:

* ``L[k] > tau``  → the pair is provably similar (**accept**, skipping
  verification);
* ``U[k] <= tau`` → provably dissimilar (**reject**);
* otherwise the pair goes to exact verification.

The transition uses ``p1 = Pr(R[x] = S[y])`` (positionwise agreement) and
the relaxations of Theorem 4 — which differ from Ge–Li's original bounds;
the paper's footnote shows those can violate both sides on uncertain-
uncertain input. Cells outside the band have ``L = U = 0`` since the edit
distance of prefixes with length gap ``> k`` surely exceeds ``k``.

Complexity: ``O(min(|R|, |S|) * (k + 1) * max(k, gamma))`` per pair.
"""

from __future__ import annotations

from repro.filters.base import FilterDecision, FilterVerdict
from repro.uncertain.string import UncertainString

_Bounds = tuple[tuple[float, ...], tuple[float, ...]]


def _boundary_cell(distance: int, k: int) -> _Bounds:
    """Exact bounds for a cell on the top/left boundary (ed = distance)."""
    values = tuple(1.0 if j >= distance else 0.0 for j in range(k + 1))
    return values, values


_ZERO_CACHE: dict[int, _Bounds] = {}


def _zero_cell(k: int) -> _Bounds:
    """Out-of-band cell: ``Pr(ed <= j <= k) = 0``."""
    cached = _ZERO_CACHE.get(k)
    if cached is None:
        zeros = tuple(0.0 for _ in range(k + 1))
        cached = (zeros, zeros)
        _ZERO_CACHE[k] = cached
    return cached


def cdf_bounds(
    left: UncertainString, right: UncertainString, k: int
) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """Theorem 4 bounds ``(L, U)`` on ``Pr(ed(left, right) <= j)``, j=0..k.

    Returns the final cell's arrays. Lengths differing by more than ``k``
    yield all-zero bounds immediately.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    n, m = len(left), len(right)
    if abs(n - m) > k:
        zeros = tuple(0.0 for _ in range(k + 1))
        return zeros, zeros

    zero = _zero_cell(k)
    # previous_row[y] / current_row[y] hold cell bounds for the banded y's.
    previous_row: dict[int, _Bounds] = {}
    for y in range(0, min(m, k) + 1):
        previous_row[y] = _boundary_cell(y, k)

    for x in range(1, n + 1):
        current_row: dict[int, _Bounds] = {}
        row_mass = 0.0
        y_lo = max(0, x - k)
        y_hi = min(m, x + k)
        if y_lo == 0:
            current_row[0] = _boundary_cell(x, k)
            y_start = 1
        else:
            y_start = y_lo
        left_pos = left[x - 1]
        for y in range(y_start, y_hi + 1):
            diag = previous_row.get(y - 1, zero)
            up = current_row.get(y - 1, zero)      # D2 = (x, y-1)
            side = previous_row.get(y, zero)       # D3 = (x-1, y)
            p1 = left_pos.agreement(right[y - 1])
            p2 = 1.0 - p1
            diag_l, diag_u = diag
            up_l, up_u = up
            side_l, side_u = side
            # argmin D_i: neighbor with lexicographically greatest L array
            # (greatest L[0], ties by L[1], ...) — the most-likely-smallest
            # distance neighbor of Theorem 4.
            best_l = max(diag_l, up_l, side_l)
            lower = []
            upper = []
            for j in range(k + 1):
                from_diag = p1 * diag_l[j]
                from_best = p2 * best_l[j - 1] if j > 0 else 0.0
                lower.append(max(from_diag, from_best))
                u = p1 * diag_u[j]
                if j > 0:
                    u += p2 * diag_u[j - 1] + up_u[j - 1] + side_u[j - 1]
                upper.append(min(1.0, u))
            current_row[y] = (tuple(lower), tuple(upper))
            row_mass += upper[k]
        if x <= k and y_lo == 0:
            row_mass += current_row[0][1][k]
        # Early abort (mirror of Section 6.2's prefix pruning): once every
        # upper bound in a row is 0, all later rows stay 0.
        if row_mass == 0.0:
            return zero
        previous_row = current_row
    final = previous_row.get(m)
    if final is None:  # pragma: no cover - band always reaches (n, m)
        return zero
    return final


class CdfBoundFilter:
    """Theorem 4 packaged as the final pre-verification filter."""

    def __init__(self, k: int) -> None:
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        self.k = k

    def decide(
        self, left: UncertainString, right: UncertainString, tau: float
    ) -> FilterDecision:
        """Accept on ``L[k] > tau``, reject on ``U[k] <= tau``."""
        lower, upper = cdf_bounds(left, right, self.k)
        if lower[self.k] > tau:
            return FilterDecision(
                FilterVerdict.ACCEPT,
                lower=lower[self.k],
                upper=upper[self.k],
                reason=f"CDF lower bound {lower[self.k]:.6g} > tau",
            )
        if upper[self.k] <= tau:
            return FilterDecision(
                FilterVerdict.REJECT,
                lower=lower[self.k],
                upper=upper[self.k],
                reason=f"CDF upper bound {upper[self.k]:.6g} <= tau",
            )
        return FilterDecision(
            FilterVerdict.UNDECIDED, lower=lower[self.k], upper=upper[self.k]
        )
