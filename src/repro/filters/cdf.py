"""CDF-bound filtering (Section 6.1, Theorem 4).

A dynamic program over the banded ``|R| x |S|`` grid keeps, per cell
``(x, y)``, arrays ``L[j] <= Pr(ed(R[1..x], S[1..y]) <= j) <= U[j]`` for
``j = 0..k``. At the final cell the bounds decide the pair:

* ``L[k] > tau``  → the pair is provably similar (**accept**, skipping
  verification);
* ``U[k] <= tau`` → provably dissimilar (**reject**);
* otherwise the pair goes to exact verification.

The transition uses ``p1 = Pr(R[x] = S[y])`` (positionwise agreement) and
the relaxations of Theorem 4 — which differ from Ge–Li's original bounds;
the paper's footnote shows those can violate both sides on uncertain-
uncertain input. Cells outside the band have ``L = U = 0`` since the edit
distance of prefixes with length gap ``> k`` surely exceeds ``k``.

Complexity: ``O(min(|R|, |S|) * (k + 1) * max(k, gamma))`` per pair.

Implementation notes (the allocation discipline behind ``BENCH_*.json``):
the DP stores each row as four flat band-width float buffers (L and U
for the previous/current row) reused across all rows — no per-cell
tuple or list is built. A cell ``(x, y)`` lives at slot ``y - x + k + 1``
(so the diagonal predecessor shares its slot), with zero-filled guard
slots at both band edges standing in for out-of-band cells. Boundary
cells are memoized per ``(distance, k)``, and a certain×certain pair
short-circuits to :func:`~repro.distance.edit.edit_distance_banded`:
for one-world strings the DP arrays collapse to the exact 0/1 indicator
``[ed <= j]`` (both bounds are tight), so the banded integer kernel
returns the byte-identical answer at a fraction of the cost.

The agreement probability ``p1`` is computed inline from per-position
tables built once per string and cached on it
(:meth:`UncertainString.agreement_table`): a certain position is its
character, an uncertain one its ``(chars, probs, pdf)`` triple.
Certain×certain cells reduce ``p1`` to a character comparison, and the
degenerate transitions (``p1`` exactly 0 or 1) skip the dead terms —
every shortcut reproduces the general transition's floats bit-for-bit
(multiplying by 1.0, adding 0.0, and max/min against the identity are
all exact in IEEE arithmetic).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Sequence

from repro.distance.edit import edit_distance_banded
from repro.filters.base import FilterDecision, FilterVerdict
from repro.uncertain.string import UncertainString

_Bounds = tuple[tuple[float, ...], tuple[float, ...]]

#: Entry caps for the process-global memo tables below. The values are
#: pure functions of their keys, so eviction can never change a result —
#: only the cost of rebuilding a tuple. The caps exist because a
#: long-lived process (a server, a parameter sweep) visits unboundedly
#: many ``(distance, k)`` pairs over its lifetime; before they were
#: added the caches grew forever.
_BOUNDARY_CACHE_MAX = 4096
_ZERO_CACHE_MAX = 64

#: Monotone lifetime hit/miss counters for the memo tables —
#: :func:`clear_cdf_caches` empties the tables but never resets these,
#: so benchmark cases can report per-case deltas by subtracting two
#: :func:`cdf_cache_stats` snapshots.
_CACHE_STATS = {
    "boundary_hits": 0,
    "boundary_misses": 0,
    "zero_hits": 0,
    "zero_misses": 0,
}

#: Guards the two LRU memo tables: ``move_to_end``/``popitem`` on an
#: :class:`OrderedDict` are multi-step re-links, so concurrent server
#: threads could otherwise interleave an eviction with a re-order and
#: raise ``KeyError`` from inside the cache. Held only around the
#: table bookkeeping — the memoized values are pure, so contention is
#: a few dict operations long.
_CACHE_LOCK = threading.Lock()

_BOUNDARY_CACHE: OrderedDict[tuple[int, int], _Bounds] = OrderedDict()


def _boundary_cell(distance: int, k: int) -> _Bounds:
    """Exact bounds for a cell on the top/left boundary (ed = distance).

    Memoized per ``(distance, k)`` — every pair at threshold ``k`` reads
    the same ``O(|R| + |S|)`` boundary cells, so building the tuples
    once per process (like :func:`_zero_cell`) removes them from the
    per-pair cost entirely. The memo is LRU-bounded at
    :data:`_BOUNDARY_CACHE_MAX` entries so sweeping many ``(distance,
    k)`` pairs cannot grow it without bound.
    """
    key = (distance, k)
    with _CACHE_LOCK:
        cached = _BOUNDARY_CACHE.get(key)
        if cached is None:
            _CACHE_STATS["boundary_misses"] += 1
            values = tuple(1.0 if j >= distance else 0.0 for j in range(k + 1))
            cached = (values, values)
            _BOUNDARY_CACHE[key] = cached
            if len(_BOUNDARY_CACHE) > _BOUNDARY_CACHE_MAX:
                _BOUNDARY_CACHE.popitem(last=False)
        else:
            _CACHE_STATS["boundary_hits"] += 1
            _BOUNDARY_CACHE.move_to_end(key)
        return cached


_ZERO_CACHE: OrderedDict[int, _Bounds] = OrderedDict()


def _zero_cell(k: int) -> _Bounds:
    """Out-of-band cell: ``Pr(ed <= j <= k) = 0`` (LRU-bounded memo)."""
    with _CACHE_LOCK:
        cached = _ZERO_CACHE.get(k)
        if cached is None:
            _CACHE_STATS["zero_misses"] += 1
            zeros = tuple(0.0 for _ in range(k + 1))
            cached = (zeros, zeros)
            _ZERO_CACHE[k] = cached
            if len(_ZERO_CACHE) > _ZERO_CACHE_MAX:
                _ZERO_CACHE.popitem(last=False)
        else:
            _CACHE_STATS["zero_hits"] += 1
            _ZERO_CACHE.move_to_end(key=k)
        return cached


def clear_cdf_caches() -> None:
    """Per-run clear hook for the boundary/zero memo tables.

    Long-lived processes (servers, sweep harnesses) may call this
    between runs to return to a cold-cache footprint; results are
    unaffected because both tables memoize pure functions. The
    :func:`cdf_cache_stats` counters are deliberately NOT reset — they
    are monotone over the process lifetime so callers can diff
    snapshots across a clear.
    """
    with _CACHE_LOCK:
        _BOUNDARY_CACHE.clear()
        _ZERO_CACHE.clear()


def cdf_cache_stats() -> dict[str, int]:
    """Snapshot of the monotone memo-table hit/miss counters.

    Keys: ``boundary_hits``/``boundary_misses`` (the per-``(distance,
    k)`` boundary-cell memo) and ``zero_hits``/``zero_misses`` (the
    per-``k`` out-of-band cell memo). Counters only ever grow —
    :func:`clear_cdf_caches` empties the tables (forcing the next
    lookups to miss) without touching them, so a benchmark case's
    cache behaviour is the difference of the snapshots taken around it.
    """
    with _CACHE_LOCK:
        return dict(_CACHE_STATS)


def agreement_from_entries(left_entry: object, right_entry: object) -> float:
    """``p1 = Pr(R[x] = S[y])`` from two agreement-table entries.

    Exactly the accumulation the scalar DP inlines (same branch on the
    smaller support, same left-to-right sum order), factored out so the
    batch backends produce bit-identical ``p1`` values. Entries are a
    ``str`` for a certain position or ``(chars, probs, pdf)`` for an
    uncertain one (:meth:`UncertainString.agreement_table` layout).
    """
    if type(left_entry) is str:
        if type(right_entry) is str:
            return 1.0 if left_entry == right_entry else 0.0
        return right_entry[2].get(left_entry, 0.0)  # type: ignore[index]
    if type(right_entry) is str:
        return left_entry[2].get(right_entry, 0.0)  # type: ignore[index]
    l_chars, l_probs, l_pdf = left_entry  # type: ignore[misc]
    r_chars, r_probs, r_pdf = right_entry  # type: ignore[misc]
    p1 = 0.0
    if len(l_chars) > len(r_chars):
        for char, prob in zip(r_chars, r_probs):
            p1 += prob * l_pdf.get(char, 0.0)
    else:
        for char, prob in zip(l_chars, l_probs):
            p1 += prob * r_pdf.get(char, 0.0)
    return p1


def cdf_bounds(
    left: UncertainString,
    right: UncertainString,
    k: int,
    left_features: "object | None" = None,
    right_features: "object | None" = None,
) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """Theorem 4 bounds ``(L, U)`` on ``Pr(ed(left, right) <= j)``, j=0..k.

    Returns the final cell's arrays. Lengths differing by more than ``k``
    yield all-zero bounds immediately. ``left_features``/``right_features``
    accept per-collection feature objects (anything with ``is_certain``
    and ``certain_text`` attributes, e.g.
    :class:`repro.core.context.StringFeatures`) so the certainty scan
    and one-world text materialization are paid once per collection
    instead of once per pair; when omitted they are computed here.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    n, m = len(left), len(right)
    if abs(n - m) > k:
        return _zero_cell(k)

    if left_features is not None:
        left_certain = left_features.is_certain  # type: ignore[attr-defined]
        left_text = left_features.certain_text  # type: ignore[attr-defined]
    else:
        left_certain = left.is_certain
        left_text = None
    if right_features is not None:
        right_certain = right_features.is_certain  # type: ignore[attr-defined]
        right_text = right_features.certain_text  # type: ignore[attr-defined]
    else:
        right_certain = right.is_certain
        right_text = None
    if left_certain and right_certain:
        # One joint world: the DP's L and U both collapse to the exact
        # indicator [ed <= j] (each transition keeps 0/1 values tight),
        # which is what the integer banded kernel computes directly.
        if left_text is None:
            left_text = "".join(left.agreement_table())  # type: ignore[arg-type]
        if right_text is None:
            right_text = "".join(right.agreement_table())  # type: ignore[arg-type]
        distance = edit_distance_banded(left_text, right_text, k)
        if distance > k:
            return _zero_cell(k)
        return _boundary_cell(distance, k)
    left_table = left.agreement_table()
    right_table = right.agreement_table()

    zero = _zero_cell(k)
    k1 = k + 1
    # Flat band-width rows: slot(x, y) = y - x + k + 1 in [1, 2k + 1];
    # slots 0 and 2k + 2 are permanent zero guards (out-of-band cells).
    # The diagonal predecessor (x-1, y-1) shares the slot, the vertical
    # one (x-1, y) sits one slot right, the horizontal (x, y-1) one left.
    width = 2 * k + 3
    size = width * k1
    zero_row = [0.0] * size
    prev_l = [0.0] * size
    prev_u = [0.0] * size
    cur_l = [0.0] * size
    cur_u = [0.0] * size

    # Row x = 0: boundary cells (0, y) for the banded y's.
    for y in range(0, min(m, k) + 1):
        values = _boundary_cell(y, k)[0]
        base = (y + k1) * k1
        for j in range(k1):
            prev_l[base + j] = values[j]
            prev_u[base + j] = values[j]

    for x in range(1, n + 1):
        cur_l[:] = zero_row
        cur_u[:] = zero_row
        row_mass = 0.0
        y_lo = max(0, x - k)
        y_hi = min(m, x + k)
        if y_lo == 0:
            values = _boundary_cell(x, k)[0]
            base = (k1 - x) * k1  # slot of (x, 0); x <= k here
            for j in range(k1):
                cur_l[base + j] = values[j]
                cur_u[base + j] = values[j]
            y_start = 1
        else:
            y_start = y_lo
        left_entry = left_table[x - 1]
        left_is_char = type(left_entry) is str
        left_pdf = None if left_is_char else left_entry[2]  # type: ignore[index]
        for y in range(y_start, y_hi + 1):
            slot = y - x + k1
            out = slot * k1
            diag = out                # (x-1, y-1) in the previous row
            up = out - k1             # D2 = (x, y-1) in the current row
            side = out + k1           # D3 = (x-1, y) in the previous row
            # p1 = Pr(R[x] = S[y]), inlined from the per-position tables
            # (identical accumulation order to UncertainPosition.agreement).
            right_entry = right_table[y - 1]
            if left_is_char:
                if type(right_entry) is str:
                    p1 = 1.0 if left_entry == right_entry else 0.0
                else:
                    p1 = right_entry[2].get(left_entry, 0.0)  # type: ignore[index]
            elif type(right_entry) is str:
                p1 = left_pdf.get(right_entry, 0.0)  # type: ignore[union-attr]
            else:
                l_chars, l_probs, l_pdf = left_entry  # type: ignore[misc]
                r_chars, r_probs, r_pdf = right_entry  # type: ignore[misc]
                p1 = 0.0
                if len(l_chars) > len(r_chars):
                    for char, prob in zip(r_chars, r_probs):
                        p1 += prob * l_pdf.get(char, 0.0)
                else:
                    for char, prob in zip(l_chars, l_probs):
                        p1 += prob * r_pdf.get(char, 0.0)
            if p1 == 1.0:
                # p2 = 0: the lower bounds copy the diagonal cell and the
                # upper transition keeps only its unscaled D2/D3 terms.
                cur_l[out] = prev_l[diag]
                cur_u[out] = prev_u[diag]
                for j in range(1, k1):
                    cur_l[out + j] = prev_l[diag + j]
                    u = prev_u[diag + j] + (
                        cur_u[up + j - 1] + prev_u[side + j - 1]
                    )
                    cur_u[out + j] = u if u < 1.0 else 1.0
                row_mass += cur_u[out + k]
                continue
            # argmin D_i: neighbor with lexicographically greatest L array
            # (greatest L[0], ties by L[1], ...) — the most-likely-smallest
            # distance neighbor of Theorem 4.
            best_buf, best_off = prev_l, diag
            for j in range(k1):
                a = cur_l[up + j]
                b = best_buf[best_off + j]
                if a != b:
                    if a > b:
                        best_buf, best_off = cur_l, up
                    break
            for j in range(k1):
                a = prev_l[side + j]
                b = best_buf[best_off + j]
                if a != b:
                    if a > b:
                        best_buf, best_off = prev_l, side
                    break
            if p1 == 0.0:
                # p2 = 1: the diagonal terms vanish; j = 0 cells stay at
                # the zero the row reset left in place.
                for j in range(1, k1):
                    cur_l[out + j] = best_buf[best_off + j - 1]
                    u = (
                        prev_u[diag + j - 1] + cur_u[up + j - 1]
                    ) + prev_u[side + j - 1]
                    cur_u[out + j] = u if u < 1.0 else 1.0
                row_mass += cur_u[out + k]
                continue
            p2 = 1.0 - p1
            # j = 0: no j-1 terms.
            value = p1 * prev_l[diag]
            cur_l[out] = value if value > 0.0 else 0.0
            value = p1 * prev_u[diag]
            cur_u[out] = value if value < 1.0 else 1.0
            for j in range(1, k1):
                from_diag = p1 * prev_l[diag + j]
                from_best = p2 * best_buf[best_off + j - 1]
                cur_l[out + j] = (
                    from_diag if from_diag >= from_best else from_best
                )
                u = p1 * prev_u[diag + j]
                u += (
                    p2 * prev_u[diag + j - 1]
                    + cur_u[up + j - 1]
                    + prev_u[side + j - 1]
                )
                cur_u[out + j] = u if u < 1.0 else 1.0
            row_mass += cur_u[out + k]
        if x <= k and y_lo == 0:
            row_mass += cur_u[(k1 - x) * k1 + k]
        # Early abort (mirror of Section 6.2's prefix pruning): once every
        # upper bound in a row is 0, all later rows stay 0.
        if row_mass == 0.0:
            return zero
        prev_l, cur_l = cur_l, prev_l
        prev_u, cur_u = cur_u, prev_u
    base = (m - n + k1) * k1
    return (
        tuple(prev_l[base : base + k1]),
        tuple(prev_u[base : base + k1]),
    )


def cdf_bounds_batch(
    left: UncertainString,
    rights: Sequence[UncertainString],
    k: int,
    left_features: "object | None" = None,
    right_features: "Sequence[object | None] | None" = None,
) -> list[_Bounds]:
    """Theorem 4 bounds for one probe against a block of candidates.

    The pure-python reference batch entry point: a scalar
    :func:`cdf_bounds` call per candidate, in order. Backends (see
    :mod:`repro.core.backends`) override this with vectorized kernels
    that must reproduce its floats bit-for-bit.
    """
    if right_features is None:
        return [cdf_bounds(left, right, k, left_features) for right in rights]
    return [
        cdf_bounds(left, right, k, left_features, features)
        for right, features in zip(rights, right_features)
    ]


class CdfBoundFilter:
    """Theorem 4 packaged as the final pre-verification filter."""

    def __init__(self, k: int) -> None:
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        self.k = k

    def decide(
        self,
        left: UncertainString,
        right: UncertainString,
        tau: float,
        left_features: "object | None" = None,
        right_features: "object | None" = None,
    ) -> FilterDecision:
        """Accept on ``L[k] > tau``, reject on ``U[k] <= tau``."""
        lower, upper = cdf_bounds(
            left, right, self.k, left_features, right_features
        )
        if lower[self.k] > tau:
            return FilterDecision(
                FilterVerdict.ACCEPT,
                lower=lower[self.k],
                upper=upper[self.k],
                reason=f"CDF lower bound {lower[self.k]:.6g} > tau",
            )
        if upper[self.k] <= tau:
            return FilterDecision(
                FilterVerdict.REJECT,
                lower=lower[self.k],
                upper=upper[self.k],
                reason=f"CDF upper bound {upper[self.k]:.6g} <= tau",
            )
        return FilterDecision(
            FilterVerdict.UNDECIDED, lower=lower[self.k], upper=upper[self.k]
        )
