"""Counting DP over independent segment-match events (Section 3.1).

Given ``m`` events with probabilities ``alpha_1..alpha_m``, the paper needs
``Pr(at least m - k of them happen)``. The recursion

    ``Pr(i, j) = Pr(E_i) Pr(i-1, j-1) + (1 - Pr(E_i)) Pr(i-1, j)``

is a Poisson-binomial DP; we keep one row, giving O(m^2) time and O(m)
space (the paper notes O(m(m-k)) is possible; the row form already skips
work above the needed count when ``top`` is passed).

Because the events are only *approximately* independent when both strings
are uncertain (adjacent segments' selection windows may overlap in ``R``),
a dependence-free Markov alternative is provided:
``Pr(count >= t) <= sum(alpha) / t``.
"""

from __future__ import annotations

from typing import Sequence


def exactly_counts(alphas: Sequence[float]) -> list[float]:
    """PMF of the number of events that happen, assuming independence.

    Returns ``P[y] = Pr(exactly y events)`` for ``y = 0..len(alphas)``,
    the paper's ``Pr(Ω_y)`` values. Callers that only need the tail
    should use :func:`tail_probability`.
    """
    pmf = [1.0] + [0.0] * len(alphas)
    filled = 0
    for alpha in alphas:
        if not 0.0 <= alpha <= 1.0 + 1e-12:
            raise ValueError(f"event probability {alpha!r} outside [0, 1]")
        alpha = min(alpha, 1.0)
        filled += 1
        for j in range(filled, 0, -1):
            pmf[j] = alpha * pmf[j - 1] + (1.0 - alpha) * pmf[j]
        pmf[0] = (1.0 - alpha) * pmf[0]
    return pmf


def tail_probability(alphas: Sequence[float], threshold: int) -> float:
    """``Pr(count >= threshold)`` under independence.

    ``threshold <= 0`` returns 1 (the requirement is vacuous). This is the
    quantity of Theorem 2: the upper bound on ``Pr(ed(R, S) <= k)`` with
    ``threshold = m - k``. For ``threshold == 1`` it reduces to the closed
    form ``1 - prod(1 - alpha_x)`` of Lemma 3/5.
    """
    m = len(alphas)
    if threshold <= 0:
        return 1.0
    if threshold > m:
        return 0.0
    if threshold == 1:
        survive = 1.0
        for alpha in alphas:
            survive *= 1.0 - min(max(alpha, 0.0), 1.0)
        return min(1.0, max(0.0, 1.0 - survive))
    pmf = exactly_counts(alphas)
    tail = sum(pmf[threshold:])
    return min(1.0, max(0.0, tail))


def markov_tail_bound(alphas: Sequence[float], threshold: int) -> float:
    """``Pr(count >= threshold) <= E[count] / threshold`` (any dependence).

    Valid without the independence assumption, hence a *safe* (if looser)
    replacement for :func:`tail_probability` when both strings are
    uncertain; see DESIGN.md Section 4 and the bound-mode ablation bench.
    """
    if threshold <= 0:
        return 1.0
    expected = sum(min(max(alpha, 0.0), 1.0) for alpha in alphas)
    return min(1.0, expected / threshold)
