"""Filtering techniques of Sections 3, 5, and 6.1.

Each filter gives an upper and/or lower bound on ``Pr(ed(R, S) <= k)``
without instantiating possible worlds:

* :mod:`repro.filters.qgram` — q-gram filtering integrated with
  probabilistic pruning (Theorems 1 and 2).
* :mod:`repro.filters.frequency` — frequency-distance bounds (Lemma 6 and
  the Chebyshev bound of Theorem 3).
* :mod:`repro.filters.cdf` — per-cell CDF bounds via dynamic programming
  (Theorem 4).
"""

from repro.filters.base import FilterDecision, FilterVerdict, PipelineStage
from repro.filters.events import (
    exactly_counts,
    tail_probability,
    markov_tail_bound,
)
from repro.filters.alpha import (
    OccurrenceGroup,
    equivalent_substring_set,
    group_probability,
    segment_match_probability,
)
from repro.filters.qgram import QGramFilter, QGramOutcome
from repro.filters.frequency import (
    CharCountDistribution,
    FrequencyProfile,
    FrequencyDistanceFilter,
    fd_lower_bound,
    expected_positive_negative,
    chebyshev_upper_bound,
)
from repro.filters.cdf import CdfBoundFilter, cdf_bounds
from repro.filters.overlap import OverlapCountFilter

__all__ = [
    "FilterDecision",
    "FilterVerdict",
    "PipelineStage",
    "exactly_counts",
    "tail_probability",
    "markov_tail_bound",
    "OccurrenceGroup",
    "equivalent_substring_set",
    "group_probability",
    "segment_match_probability",
    "QGramFilter",
    "QGramOutcome",
    "CharCountDistribution",
    "FrequencyProfile",
    "FrequencyDistanceFilter",
    "fd_lower_bound",
    "expected_positive_negative",
    "chebyshev_upper_bound",
    "CdfBoundFilter",
    "cdf_bounds",
    "OverlapCountFilter",
]
