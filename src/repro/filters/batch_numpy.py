"""Vectorized numpy batch kernels for the hot filters (optional backend).

One probe string is refined against a *block* of candidates at once:
the Theorem 4 CDF band DP runs over ``(num_candidates, band_width,
k + 1)`` float arrays (candidate axis vectorized, the sequential
row/slot dependency of the DP kept as a short python loop), and the
Section 5 frequency bounds run over stacked ``(num_chars,
num_candidates)`` count planes. This is the batch amortization that
removes per-pair python overhead from the hot path — see DESIGN.md §6f.
The kernels pay off on *large* blocks (dozens-plus candidates per
probe); tiny blocks are dominated by per-ufunc dispatch overhead, which
is why the ``python`` backend stays the default reference.

**Bit-for-bit parity with the scalar kernels is a hard requirement**,
enforced by ``tests/test_backend_parity.py``. Every arithmetic
expression here replicates the scalar kernel's operation order exactly
(numpy ufuncs are plain IEEE double ops, never fused), and the scalar
fast paths are reproduced through identities that are exact in IEEE
arithmetic:

* the ``p1 == 1.0`` / ``p1 == 0.0`` DP shortcuts equal the general
  transition because multiplying by 1.0, adding 0.0, and max/min
  against an identity operand are exact on these non-negative values;
* a candidate whose upper-bound row goes all-zero (the scalar early
  abort) stays all-zero in every later row — the abort can only fire
  once the boundary column has left the band — so batch lanes simply
  keep computing zeros;
* characters outside a pair's merged support contribute exactly
  ``0.0`` to every frequency accumulator, so the block-union alphabet
  walk reproduces the per-pair merged-support walk float-for-float,
  and zero-mass pmf padding adds exact zeros.

``numpy`` is imported lazily so this module can always be imported;
call :func:`require_numpy` (or any kernel) to surface the missing
dependency. Everything else in ``repro`` works without numpy.
"""

from __future__ import annotations

import importlib
from typing import Any, Sequence

from repro.filters.cdf import (
    _Bounds,
    _zero_cell,
    agreement_from_entries,
    cdf_bounds,
)
from repro.filters.frequency import FrequencyProfile, chebyshev_upper_bound
from repro.uncertain.string import UncertainString

_np: Any = None


def require_numpy() -> Any:
    """The numpy module, or raise ``ImportError`` if it is not installed."""
    global _np
    if _np is None:
        _np = importlib.import_module("numpy")
    return _np


def numpy_available() -> bool:
    """Whether the optional numpy dependency can be imported."""
    try:
        require_numpy()
    except ImportError:
        return False
    return True


def _lex_gt(np: Any, lanes: Any, a: Any, b: Any) -> Any:
    """Rowwise lexicographic ``a > b`` for ``(C, k+1)`` arrays.

    Mirrors the scalar argmin-D_i scan: the winner is decided by the
    first column where the rows differ (``argmax`` over the inequality
    mask finds it; rows with no difference compare not-greater).
    """
    unequal = a != b
    first = unequal.argmax(axis=1)
    return (a[lanes, first] > b[lanes, first]) & unequal.any(axis=1)


def _codes_matrix(np: Any, tables: Sequence[Sequence[object]]) -> Any:
    """Per-position char codes, padded: ``ord(char)`` for a certain
    position, ``-1`` for an uncertain one, ``-2`` past a string's end."""
    m_max = max((len(table) for table in tables), default=0)
    codes = np.full((len(tables), m_max), -2, dtype=np.int64)
    for ci, table in enumerate(tables):
        if table:
            codes[ci, : len(table)] = [
                ord(entry) if type(entry) is str else -1 for entry in table
            ]
    return codes


def _agreement_block(
    np: Any,
    left_table: Sequence[object],
    tables: Sequence[Sequence[object]],
    k: int,
) -> Any:
    """``p1`` per banded cell: shape ``(C, n, width)``.

    ``p1_block[c, x - 1, s]`` is ``Pr(R[x] = S_c[y])`` for ``y = x + s -
    (k + 1)``; cells outside a candidate's matrix hold zeros (the DP
    masks them out). Three fill passes, cheapest first: certain×certain
    cells from one vectorized code comparison per band slot; probe-
    uncertain cells from a dense pdf-over-codes gather (a python loop
    per uncertain *probe* position, not per candidate); the remaining
    cells touching an uncertain candidate position from the exact
    scalar accumulation (:func:`repro.filters.cdf.agreement_from_entries`).
    """
    n = len(left_table)
    count = len(tables)
    k1 = k + 1
    width = 2 * k + 3
    block = np.zeros((count, n, width), dtype=np.float64)
    if n == 0 or count == 0:
        return block
    codes = _codes_matrix(np, tables)
    m_max = codes.shape[1]
    left_codes = np.array(
        [ord(entry) if type(entry) is str else -1 for entry in left_table],
        dtype=np.int64,
    )
    for s in range(1, 2 * k + 2):
        offset = s - k1  # 0-indexed diagonal: (y - 1) - (x - 1)
        i0 = max(0, -offset)
        i1 = min(n, m_max - offset)
        if i1 <= i0:
            continue
        rows = np.arange(i0, i1)
        cand = codes[:, rows + offset]
        probe = left_codes[rows]
        block[:, rows, s] = (cand == probe[None, :]) & (probe[None, :] >= 0)
    max_code = int(codes.max())
    for i, entry in enumerate(left_table):
        if type(entry) is str:
            continue
        pdf = entry[2]  # type: ignore[index]
        vec = np.zeros(max(max_code, 0) + 1, dtype=np.float64)
        for char, value in pdf.items():
            code = ord(char)
            if code <= max_code:
                vec[code] = value
        for s in range(1, 2 * k + 2):
            j = i + s - k1
            if not 0 <= j < m_max:
                continue
            column = codes[:, j]
            block[:, i, s] = np.where(
                column >= 0, vec[np.clip(column, 0, None)], 0.0
            )
    # Cells whose *candidate* side is uncertain: per-cell exact p1
    # (covers uncertain×uncertain, overwriting the pass above).
    for ci, table in enumerate(tables):
        for j, entry in enumerate(table):
            if type(entry) is str:
                continue
            pdf = entry[2]  # type: ignore[index]
            for s in range(1, 2 * k + 2):
                i = j - (s - k1)
                if not 0 <= i < n:
                    continue
                left_entry = left_table[i]
                if type(left_entry) is str:
                    block[ci, i, s] = pdf.get(left_entry, 0.0)
                else:
                    block[ci, i, s] = agreement_from_entries(left_entry, entry)
    return block


def cdf_bounds_batch_numpy(
    left: UncertainString,
    rights: Sequence[UncertainString],
    k: int,
    left_features: "object | None" = None,
    right_features: "Sequence[object | None] | None" = None,
) -> list[_Bounds]:
    """Batched Theorem 4 bounds, bit-identical to the scalar kernel.

    The certain×certain pairs (and length-gap rejects) short-circuit
    through the scalar fast path exactly as :func:`cdf_bounds` does;
    every remaining candidate runs through one vectorized band DP.
    """
    np = require_numpy()
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    n = len(left)
    if left_features is not None:
        left_certain = left_features.is_certain  # type: ignore[attr-defined]
    else:
        left_certain = left.is_certain
    results: list[_Bounds | None] = [None] * len(rights)
    dp_indices: list[int] = []
    for i, right in enumerate(rights):
        features = right_features[i] if right_features is not None else None
        if abs(n - len(right)) > k:
            results[i] = _zero_cell(k)
            continue
        if features is not None:
            right_certain = features.is_certain  # type: ignore[attr-defined]
        else:
            right_certain = right.is_certain
        if left_certain and right_certain:
            results[i] = cdf_bounds(left, right, k, left_features, features)
            continue
        dp_indices.append(i)
    if not dp_indices:
        return results  # type: ignore[return-value]

    left_table = left.agreement_table()
    tables = [rights[i].agreement_table() for i in dp_indices]
    count = len(dp_indices)
    k1 = k + 1
    width = 2 * k + 3
    lanes = np.arange(count)
    m_arr = np.array([len(rights[i]) for i in dp_indices], dtype=np.int64)
    p1_block = _agreement_block(np, left_table, tables, k)
    p2_block = 1.0 - p1_block

    # boundary[d, j] = 1.0 if j >= d (the Theorem 4 boundary cells).
    boundary = np.zeros((k1, k1), dtype=np.float64)
    for d in range(k1):
        boundary[d, d:] = 1.0

    shape = (count, width, k1)
    prev_l = np.zeros(shape, dtype=np.float64)
    prev_u = np.zeros(shape, dtype=np.float64)
    cur_l = np.zeros(shape, dtype=np.float64)
    cur_u = np.zeros(shape, dtype=np.float64)

    # Row x = 0: boundary cells (0, y) for y <= min(m, k).
    for y in range(k1):
        mask = m_arr >= y
        prev_l[mask, y + k1, :] = boundary[y]
        prev_u[mask, y + k1, :] = boundary[y]

    # Lanes whose candidate ends before column y: the cell stays zero,
    # like the scalar row reset leaves it.
    valid_by_y: dict[int, Any] = {}
    new_l = np.empty((count, k1), dtype=np.float64)
    new_u = np.empty((count, k1), dtype=np.float64)
    for x in range(1, n + 1):
        cur_l[:] = 0.0
        cur_u[:] = 0.0
        if x <= k:
            # Boundary cell (x, 0); its slot k1 - x only coincides with
            # loop slots at y = 0, which the loop skips — no overwrite.
            cur_l[:, k1 - x, :] = boundary[x]
            cur_u[:, k1 - x, :] = boundary[x]
        for s in range(1, 2 * k + 2):
            y = x + s - k1
            if y < 1:
                continue
            valid = valid_by_y.get(y)
            if valid is None:
                valid = y <= m_arr
                valid_by_y[y] = valid
            all_valid = bool(valid.all())
            if not all_valid and not valid.any():
                continue
            p1 = p1_block[:, x - 1, s]
            p2 = p2_block[:, x - 1, s]
            diag_l = prev_l[:, s, :]
            diag_u = prev_u[:, s, :]
            up_l = cur_l[:, s - 1, :]
            side_l = prev_l[:, s + 1, :]
            # argmin D_i: lexicographically greatest L among the three
            # neighbors, ties resolved diag → up → side like the scalar.
            best = np.where(
                _lex_gt(np, lanes, up_l, diag_l)[:, None], up_l, diag_l
            )
            best = np.where(
                _lex_gt(np, lanes, side_l, best)[:, None], side_l, best
            )
            p1c = p1[:, None]
            p2c = p2[:, None]
            new_l[:, 0] = p1 * diag_l[:, 0]
            new_u[:, 0] = p1 * diag_u[:, 0]
            if k1 > 1:
                new_l[:, 1:] = np.maximum(
                    p1c * diag_l[:, 1:], p2c * best[:, :-1]
                )
                # Same association as the scalar transition:
                # p1*D1 + ((p2*D1' + D2') + D3').
                new_u[:, 1:] = p1c * diag_u[:, 1:] + (
                    (p2c * diag_u[:, :-1] + cur_u[:, s - 1, :-1])
                    + prev_u[:, s + 1, :-1]
                )
            np.minimum(new_u, 1.0, out=new_u)
            if all_valid:
                cur_l[:, s, :] = new_l
                cur_u[:, s, :] = new_u
            else:
                valid_column = valid[:, None]
                cur_l[:, s, :] = np.where(valid_column, new_l, 0.0)
                cur_u[:, s, :] = np.where(valid_column, new_u, 0.0)
        prev_l, cur_l = cur_l, prev_l
        prev_u, cur_u = cur_u, prev_u

    final_slot = (m_arr - n + k1).astype(np.intp)
    final_l = prev_l[lanes, final_slot, :]
    final_u = prev_u[lanes, final_slot, :]
    for lane, i in enumerate(dp_indices):
        results[i] = (
            tuple(final_l[lane].tolist()),
            tuple(final_u[lane].tolist()),
        )
    return results  # type: ignore[return-value]


class _ProfilePlanes:
    """Flattened per-profile count-distribution arrays (cached).

    A candidate profile is re-assembled into block planes once per
    *probe*; everything about the profile itself is probe-independent,
    so it is flattened once and memoized on the profile
    (``FrequencyProfile._plane_cache``). Element layout: ``rep`` maps
    each flat pmf/tail element to its char index within the profile,
    ``off`` is its offset inside that char's distribution.
    """

    __slots__ = (
        "codes",
        "cert",
        "unc",
        "sv0",
        "pmf_flat",
        "pmf_rep",
        "pmf_off",
        "tail_flat",
        "tail_rep",
        "tail_off",
        "max_u",
    )


def _profile_planes(np: Any, profile: FrequencyProfile) -> _ProfilePlanes:
    cached = profile._plane_cache
    if cached is not None:
        return cached  # type: ignore[return-value]
    chars = profile.sorted_chars
    dists = [profile.distribution(char) for char in chars]
    planes = _ProfilePlanes()
    planes.codes = np.array([ord(char) for char in chars], dtype=np.int64)
    planes.cert = np.array([d.certain for d in dists], dtype=np.int64)
    planes.unc = np.array([d.uncertain for d in dists], dtype=np.int64)
    planes.sv0 = np.array([d.survival[0] for d in dists], dtype=np.float64)
    pmf_rep: list[int] = []
    pmf_off: list[int] = []
    pmf_flat: list[float] = []
    tail_rep: list[int] = []
    tail_off: list[int] = []
    tail_flat: list[float] = []
    for idx, dist in enumerate(dists):
        pmf = dist.pmf
        pmf_rep.extend([idx] * len(pmf))
        pmf_off.extend(range(len(pmf)))
        pmf_flat.extend(pmf)
        tail = dist.scaled_tail
        tail_rep.extend([idx] * len(tail))
        tail_off.extend(range(len(tail)))
        tail_flat.extend(tail)
    planes.pmf_rep = np.array(pmf_rep, dtype=np.intp)
    planes.pmf_off = np.array(pmf_off, dtype=np.intp)
    planes.pmf_flat = np.array(pmf_flat, dtype=np.float64)
    planes.tail_rep = np.array(tail_rep, dtype=np.intp)
    planes.tail_off = np.array(tail_off, dtype=np.intp)
    planes.tail_flat = np.array(tail_flat, dtype=np.float64)
    planes.max_u = int(planes.unc.max()) if dists else 0
    profile._plane_cache = planes
    return planes


def frequency_bounds_batch_numpy(
    left: FrequencyProfile,
    rights: Sequence[FrequencyProfile],
    k: int,
) -> list[tuple[int, float]]:
    """Batched Lemma 6 + Theorem 3 bounds over stacked count planes.

    The block's count distributions are assembled once into
    ``(num_chars, num_candidates)`` planes (plus pmf / S2 / S3 cubes),
    then Lemma 6 runs in exact integer arithmetic and the
    ``E[pD]``/``E[nD]`` expectations accumulate whole planes per pmf
    offset. Per-character contributions are summed in ascending
    character order — one vectorized add per character — matching the
    scalar kernel's accumulation order exactly; characters outside a
    pair's merged support contribute exact zeros. The final Chebyshev
    bound reuses the scalar
    :func:`~repro.filters.frequency.chebyshev_upper_bound` per lane so
    its float expression is shared, not re-derived.
    """
    np = require_numpy()
    count = len(rights)
    if count == 0:
        return []
    support_set: set[str] = set(left.sorted_chars)
    for right in rights:
        support_set.update(right.sorted_chars)
    support = sorted(support_set)
    num_chars = len(support)
    row_of = {char: row for row, char in enumerate(support)}

    # Probe-side arrays over the union support (absent chars resolve to
    # the EMPTY point-mass-at-0 distribution, exactly like the scalar
    # profile lookup).
    probe_dists = [left.distribution(char) for char in support]
    probe_certain = np.array([d.certain for d in probe_dists], dtype=np.int64)
    probe_uncertain = np.array(
        [d.uncertain for d in probe_dists], dtype=np.int64
    )
    probe_total = probe_certain + probe_uncertain
    max_probe_pmf = max(len(d.pmf) for d in probe_dists)
    max_probe_u = int(probe_uncertain.max())
    probe_pmf = np.zeros((num_chars, max_probe_pmf), dtype=np.float64)
    probe_tail = np.zeros((num_chars, max_probe_u + 1), dtype=np.float64)
    probe_sv0 = np.zeros(num_chars, dtype=np.float64)
    for row, dist in enumerate(probe_dists):
        probe_pmf[row, : len(dist.pmf)] = dist.pmf
        tail = dist.scaled_tail
        probe_tail[row, : len(tail)] = tail
        probe_sv0[row] = dist.survival[0]

    # Candidate-side planes: each profile's flattened arrays come from
    # its memoized :class:`_ProfilePlanes` (built once per profile, not
    # once per probe block), get their char rows mapped onto the block
    # support with one ``searchsorted`` per candidate, and land in the
    # planes via one fancy-index scatter per array. Absent
    # (char, candidate) slots keep the EMPTY distribution's values:
    # certain 0, pmf (1.0,), S2/S3 zeros.
    planes = [_profile_planes(np, right) for right in rights]
    max_u = 0
    for plane in planes:
        if plane.max_u > max_u:
            max_u = plane.max_u
    stride = max_u + 1
    support_codes = np.array([ord(char) for char in support], dtype=np.int64)
    rows_per = [
        np.searchsorted(support_codes, plane.codes) for plane in planes
    ]
    char_counts = np.array([len(plane.codes) for plane in planes], dtype=np.intp)
    rows_concat = np.concatenate(rows_per)
    cols_concat = np.repeat(np.arange(count), char_counts)
    certain_mat = np.zeros((num_chars, count), dtype=np.int64)
    uncertain_mat = np.zeros((num_chars, count), dtype=np.int64)
    sv0_mat = np.zeros((num_chars, count), dtype=np.float64)
    tail_cube = np.zeros((num_chars, count, stride), dtype=np.float64)
    pmf_cube = np.zeros((num_chars, count, stride), dtype=np.float64)
    pmf_cube[:, :, 0] = 1.0  # EMPTY pmf for absent chars
    if rows_concat.size:
        certain_mat[rows_concat, cols_concat] = np.concatenate(
            [plane.cert for plane in planes]
        )
        uncertain_mat[rows_concat, cols_concat] = np.concatenate(
            [plane.unc for plane in planes]
        )
        sv0_mat[rows_concat, cols_concat] = np.concatenate(
            [plane.sv0 for plane in planes]
        )
        # Start of each candidate's chars within rows_concat — lifts
        # the per-profile `rep` element→char maps to block-global ones.
        char_starts = np.zeros(count, dtype=np.intp)
        np.cumsum(char_counts[:-1], out=char_starts[1:])
        candidate_ids = np.arange(count)
        for cube, flat_name, rep_name, off_name in (
            (pmf_cube, "pmf_flat", "pmf_rep", "pmf_off"),
            (tail_cube, "tail_flat", "tail_rep", "tail_off"),
        ):
            counts = np.array(
                [len(getattr(plane, flat_name)) for plane in planes],
                dtype=np.intp,
            )
            rep = np.concatenate(
                [getattr(plane, rep_name) for plane in planes]
            ) + np.repeat(char_starts, counts)
            elem_rows = rows_concat[rep]
            elem_cols = np.repeat(candidate_ids, counts)
            positions = (elem_rows * count + elem_cols) * stride + (
                np.concatenate([getattr(plane, off_name) for plane in planes])
            )
            cube.reshape(-1)[positions] = np.concatenate(
                [getattr(plane, flat_name) for plane in planes]
            )
    total_mat = certain_mat + uncertain_mat
    tail0_mat = tail_cube[:, :, 0]

    # Lemma 6 — exact integers, so the summation order is irrelevant.
    positive = np.maximum(probe_certain[:, None] - total_mat, 0).sum(axis=0)
    negative = np.maximum(certain_mat - probe_total[:, None], 0).sum(axis=0)
    lower_fd = np.maximum(positive, negative)

    # E[nD]: probe pmf against each candidate's S2/S3. Lanes missing
    # the character have all-zero tails, so every offset contributes an
    # exact 0.0 — matching the scalar `total == 0` skip.
    contrib_nd = np.zeros((num_chars, count), dtype=np.float64)
    for offset in range(max_probe_pmf):
        mass = probe_pmf[:, offset]
        t = (probe_certain + (offset + 1))[:, None] - certain_mat
        gathered = np.take_along_axis(
            tail_cube, np.clip(t, 0, max_u)[:, :, None], axis=2
        )[:, :, 0]
        in_range = (t > 0) & (t <= uncertain_mat)
        excess = np.where(
            t <= 0,
            tail0_mat + (-t) * sv0_mat,
            np.where(in_range, gathered, 0.0),
        )
        contrib_nd = contrib_nd + mass[:, None] * excess

    # E[pD]: each candidate's pmf (zero-mass padding adds exact zeros)
    # against the probe's S2/S3; rows whose probe distribution is empty
    # are masked off, matching the scalar skip.
    contrib_pd = np.zeros((num_chars, count), dtype=np.float64)
    probe_tail0 = probe_tail[:, 0]
    for offset in range(max_u + 1):
        mass = pmf_cube[:, :, offset]
        t = (certain_mat + (offset + 1)) - probe_certain[:, None]
        gathered = np.take_along_axis(
            probe_tail, np.clip(t, 0, max_probe_u), axis=1
        )
        in_range = (t > 0) & (t <= probe_uncertain[:, None])
        excess = np.where(
            t <= 0,
            probe_tail0[:, None] + (-t) * probe_sv0[:, None],
            np.where(in_range, gathered, 0.0),
        )
        contrib_pd = contrib_pd + mass * excess
    contrib_pd = np.where(probe_total[:, None] > 0, contrib_pd, 0.0)

    # Cross-character accumulation: ascending character order, one
    # sequential add per character — the scalar `total += contribution`.
    expected_nd = np.zeros(count, dtype=np.float64)
    expected_pd = np.zeros(count, dtype=np.float64)
    for row in range(num_chars):
        expected_nd = expected_nd + contrib_nd[row]
        expected_pd = expected_pd + contrib_pd[row]

    rows: list[tuple[int, float]] = []
    for ci, right in enumerate(rights):
        upper = chebyshev_upper_bound(
            left,
            right,
            k,
            expectations=(float(expected_pd[ci]), float(expected_nd[ci])),
        )
        rows.append((int(lower_fd[ci]), upper))
    return rows
