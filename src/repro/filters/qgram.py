"""q-gram filtering integrated with probabilistic pruning (Section 3).

For a pair ``(R, S)`` with ``S`` partitioned into ``m > k`` disjoint
segments:

1. *Necessary condition* (Lemmas 2/4): ``R`` must contain substrings that
   match at least ``m - k`` segments of ``S`` with positive probability,
   otherwise ``Pr(ed(R, S) <= k) = 0``.
2. *Probabilistic pruning* (Theorems 1/2): ``Pr(ed(R, S) <= k)`` is upper
   bounded by the probability that at least ``m - k`` of the segment-match
   events happen, computed from the ``alpha_x`` by the counting DP of
   :mod:`repro.filters.events`. If that bound is ``<= tau`` the pair is
   pruned.

This module is the *pair-at-a-time* formulation used by tests, ablations,
and non-indexed joins; :mod:`repro.index` computes the same ``alpha_x``
values collection-at-a-time through inverted segment indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.filters.alpha import GroupMode, segment_match_probability
from repro.filters.base import FilterDecision, FilterVerdict
from repro.filters.events import markov_tail_bound, tail_probability
from repro.partition.even import partition_for
from repro.partition.selection import SelectionMode, substring_starts
from repro.uncertain.string import UncertainString

BoundMode = Literal["paper", "markov"]


@dataclass(frozen=True)
class QGramOutcome:
    """Everything the q-gram filter computed for one pair.

    ``alphas`` has one entry per segment of ``S``; ``matched_segments``
    counts the positive ones; ``required`` is the pigeonhole threshold
    ``m - k``; ``upper`` is the Theorem 2 bound (1.0 when ``required <= 0``
    and the filter is vacuous).
    """

    alphas: tuple[float, ...]
    matched_segments: int
    required: int
    upper: float

    @property
    def segment_count(self) -> int:
        return len(self.alphas)

    def decision(self, tau: float) -> FilterDecision:
        """Reject when the necessary condition or the bound fails ``tau``."""
        if self.matched_segments < self.required:
            return FilterDecision(
                FilterVerdict.REJECT,
                upper=0.0,
                reason=f"only {self.matched_segments} of >= {self.required} "
                "segments matched (Lemma 4)",
            )
        if self.upper <= tau:
            return FilterDecision(
                FilterVerdict.REJECT,
                upper=self.upper,
                reason=f"Theorem 2 upper bound {self.upper:.6g} <= tau",
            )
        return FilterDecision(FilterVerdict.UNDECIDED, upper=self.upper)


class QGramFilter:
    """Pair-at-a-time q-gram filter with probabilistic pruning.

    Parameters mirror the paper: ``q`` (segment length target), ``k``
    (edit threshold). ``selection`` picks the substring-selection window,
    ``group_mode`` the overlap-group probability estimator, and
    ``bound_mode`` the tail bound ("paper" = independence DP,
    "markov" = dependence-free bound; see DESIGN.md).
    """

    def __init__(
        self,
        k: int,
        q: int = 3,
        selection: SelectionMode = "shift",
        group_mode: GroupMode = "exact",
        bound_mode: BoundMode = "paper",
    ) -> None:
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if q <= 0:
            raise ValueError(f"q must be positive, got {q}")
        if bound_mode not in ("paper", "markov"):
            raise ValueError(f"unknown bound mode {bound_mode!r}")
        self.k = k
        self.q = q
        self.selection = selection
        self.group_mode = group_mode
        self.bound_mode = bound_mode

    def evaluate(self, left: UncertainString, right: UncertainString) -> QGramOutcome:
        """Compute ``alpha_x`` for every segment of ``right`` against ``left``.

        ``left`` plays the role of ``R`` (substring side), ``right`` of
        ``S`` (partitioned side).
        """
        if len(right) == 0:
            # No segments to match: the pigeonhole is vacuous (as for any
            # string shorter than k + 1).
            return QGramOutcome(
                alphas=(), matched_segments=0, required=-self.k, upper=1.0
            )
        segments = partition_for(len(right), self.q, self.k)
        m = len(segments)
        alphas: list[float] = []
        for segment in segments:
            starts = substring_starts(
                segment, len(left), len(right), self.k, m, self.selection
            )
            if not starts:
                alphas.append(0.0)
                continue
            piece = right.substring(segment.start, segment.length)
            alphas.append(
                segment_match_probability(left, starts, piece, self.group_mode)
            )
        required = m - self.k
        matched = sum(1 for alpha in alphas if alpha > 0.0)
        if required <= 0:
            upper = 1.0
        elif matched < required:
            upper = 0.0
        elif self.bound_mode == "markov":
            upper = markov_tail_bound(alphas, required)
        else:
            upper = tail_probability(alphas, required)
        return QGramOutcome(
            alphas=tuple(alphas),
            matched_segments=matched,
            required=required,
            upper=upper,
        )

    def decide(
        self, left: UncertainString, right: UncertainString, tau: float
    ) -> FilterDecision:
        """Length check + Lemma 4 + Theorem 2 in one call."""
        if abs(len(left) - len(right)) > self.k:
            return FilterDecision(
                FilterVerdict.REJECT, upper=0.0, reason="length gap exceeds k"
            )
        return self.evaluate(left, right).decision(tau)
