"""Shared filter vocabulary.

Every filter reduces to a three-way verdict on a candidate pair:
reject (provably dissimilar), accept (provably similar — only the CDF
lower bound can do this), or undecided (pass to the next, more expensive
stage).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FilterVerdict(enum.Enum):
    """Outcome of applying one filter to a candidate pair."""

    REJECT = "reject"
    ACCEPT = "accept"
    UNDECIDED = "undecided"


@dataclass(frozen=True)
class FilterDecision:
    """A verdict plus the bound(s) that produced it.

    ``upper``/``lower`` bound ``Pr(ed(R, S) <= k)``; either may be ``None``
    when the filter does not compute that side.
    """

    verdict: FilterVerdict
    upper: float | None = None
    lower: float | None = None
    reason: str = ""

    @property
    def rejected(self) -> bool:
        return self.verdict is FilterVerdict.REJECT

    @property
    def accepted(self) -> bool:
        return self.verdict is FilterVerdict.ACCEPT
