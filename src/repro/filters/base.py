"""Shared filter vocabulary.

Every filter reduces to a three-way verdict on a candidate pair:
reject (provably dissimilar), accept (provably similar — only the CDF
lower bound can do this), or undecided (pass to the next, more expensive
stage).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable


class FilterVerdict(enum.Enum):
    """Outcome of applying one filter to a candidate pair."""

    REJECT = "reject"
    ACCEPT = "accept"
    UNDECIDED = "undecided"


@dataclass(frozen=True)
class FilterDecision:
    """A verdict plus the bound(s) that produced it.

    ``upper``/``lower`` bound ``Pr(ed(R, S) <= k)``; either may be ``None``
    when the filter does not compute that side.
    """

    verdict: FilterVerdict
    upper: float | None = None
    lower: float | None = None
    reason: str = ""

    @property
    def rejected(self) -> bool:
        return self.verdict is FilterVerdict.REJECT

    @property
    def accepted(self) -> bool:
        return self.verdict is FilterVerdict.ACCEPT


@runtime_checkable
class PipelineStage(Protocol):
    """One filtering stage of the engine's refinement chain.

    ``name`` keys the stage's counters (``checked`` / ``rejected`` /
    ``accepted`` / ``undecided``) and its stopwatch in
    :class:`repro.core.stats.JoinStatistics`; ``apply`` issues the
    three-way :class:`FilterDecision` for one candidate pair. ``context``
    is the chain's per-query state (an opaque object from the stage's
    point of view — concrete stages downcast to the context type their
    chain builds); ``candidate`` is the earlier-indexed string being
    refined against the query, and ``tau`` the probability threshold in
    force for this candidate (fixed, or the adaptive top-N bound).
    """

    @property
    def name(self) -> str: ...

    def apply(self, context: Any, candidate_id: int, candidate: Any,
              tau: float) -> FilterDecision: ...
