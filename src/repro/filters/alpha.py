"""Segment match probabilities α_x (Sections 3.1–3.2).

``alpha_x = Pr(E_x)`` where ``E_x`` is the event that some substring of
``R`` drawn from the position-aware selection window matches segment
``S^x``. For deterministic ``r`` this is a plain sum of match
probabilities (distinct substrings are mutually exclusive values of
``S^x``). For uncertain ``R`` the same substring value can arise from
several overlapping windows of the *same* possible world, so summing
naively double-counts — the paper's Section 3.2 example where a naive sum
yields 1.32. The fix is the *equivalent set* ``q(r, x)``: per distinct
substring value ``w``, overlapping occurrences are grouped and each
group's probability is the chance that at least one of its occurrences
realizes ``w``.

Two group-probability modes are implemented:

* ``"beta"`` — the paper's chain recursion
  ``beta_j = beta_{j-1} + p(w_j) - Pr(w_j[1..ov] = R[y..z])``;
* ``"exact"`` — inclusion–exclusion over the (few) occurrence events,
  falling back to ``"beta"`` for groups larger than
  :data:`EXACT_GROUP_LIMIT`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal, Sequence

from repro.uncertain.string import UncertainString
from repro.uncertain.worlds import enumerate_worlds

GroupMode = Literal["beta", "exact"]

#: Inclusion–exclusion is exponential in group size; beyond this we fall
#: back to the paper's beta recursion.
EXACT_GROUP_LIMIT = 12


@dataclass(frozen=True)
class OccurrenceGroup:
    """Overlapping occurrences of one substring value ``w`` in ``R``.

    ``starts`` are sorted 0-based window starts; consecutive members overlap
    (``starts[i+1] <= starts[i] + len(w) - 1``).
    """

    word: str
    starts: tuple[int, ...]


def _split_into_groups(word: str, starts: Sequence[int]) -> list[OccurrenceGroup]:
    """Group sorted occurrence starts into maximal overlapping runs."""
    groups: list[OccurrenceGroup] = []
    run: list[int] = []
    reach = -1
    for start in sorted(starts):
        if run and start > reach:
            groups.append(OccurrenceGroup(word, tuple(run)))
            run = []
        run.append(start)
        reach = start + len(word) - 1
    if run:
        groups.append(OccurrenceGroup(word, tuple(run)))
    return groups


def _beta_group_probability(string: UncertainString, group: OccurrenceGroup) -> float:
    """The paper's β-recursion for one overlap group (Section 3.2, Step 1).

    ``beta_j = beta_{j-1} + p(occurrence_j) - Pr(w[0..ov) = R[start_j..])``
    where ``ov`` is the overlap with the previous occurrence. For the first
    occurrence the overlap is empty and the subtracted term is 1, so
    ``beta_1 = p(occurrence_1)``.
    """
    word = group.word
    length = len(word)
    beta = 1.0
    previous_start: int | None = None
    for start in group.starts:
        occurrence_prob = string.match_probability(word, start)
        if previous_start is None:
            overlap_prob = 1.0
        else:
            overlap = previous_start + length - start
            overlap_prob = (
                string.match_probability(word[:overlap], start)
                if overlap > 0
                else 1.0
            )
        beta = beta + occurrence_prob - overlap_prob
        previous_start = start
    return min(1.0, max(0.0, beta))


def _exact_group_probability(string: UncertainString, group: OccurrenceGroup) -> float:
    """Exact ``Pr(at least one occurrence in the group)`` by inclusion–exclusion.

    The intersection of occurrence events is a positionwise constraint:
    overlaying ``w`` at each selected start either conflicts (probability 0)
    or fixes a set of positions whose probabilities multiply.
    """
    word = group.word
    length = len(word)
    starts = group.starts
    n = len(starts)
    total = 0.0
    for mask in range(1, 1 << n):
        constraints: dict[int, str] = {}
        consistent = True
        bits = mask
        idx = 0
        while bits:
            if bits & 1:
                start = starts[idx]
                for offset in range(length):
                    pos = start + offset
                    want = word[offset]
                    have = constraints.get(pos)
                    if have is None:
                        constraints[pos] = want
                    elif have != want:
                        consistent = False
                        break
                if not consistent:
                    break
            bits >>= 1
            idx += 1
        if not consistent:
            continue
        prob = 1.0
        for pos, char in constraints.items():
            prob *= string[pos].probability(char)
            if prob == 0.0:
                break
        if prob == 0.0:
            continue
        sign = -1.0 if bin(mask).count("1") % 2 == 0 else 1.0
        total += sign * prob
    return min(1.0, max(0.0, total))


def group_probability(
    string: UncertainString, group: OccurrenceGroup, mode: GroupMode = "exact"
) -> float:
    """``Pr(at least one occurrence of group.word among group.starts)``."""
    if len(group.starts) == 1:
        return string.match_probability(group.word, group.starts[0])
    if mode == "exact" and len(group.starts) <= EXACT_GROUP_LIMIT:
        return _exact_group_probability(string, group)
    return _beta_group_probability(string, group)


def equivalent_substring_set(
    string: UncertainString,
    starts: Iterable[int],
    length: int,
    mode: GroupMode = "exact",
) -> dict[str, float]:
    """Build the equivalent set ``q(r, x)`` from windows of an uncertain ``R``.

    For every distinct instance value ``w`` of the windows
    ``R[start : start + length]``, returns ``p_r(w)``: the probability that
    at least one window realizes ``w``. Within one overlap group the events
    are combined by :func:`group_probability`; across groups (disjoint in
    ``R``) the events are independent, so
    ``p_r(w) = 1 - prod_g (1 - p(g))`` (Section 3.2, Step 2).

    For a deterministic ``r`` every present substring gets probability 1,
    recovering the plain substring set of Section 3.1.
    """
    start_list = sorted(set(starts))
    occurrences: dict[str, list[int]] = {}
    for start in start_list:
        if start < 0 or start + length > len(string):
            continue
        window = string.substring(start, length)
        for word, prob in enumerate_worlds(window, limit=None):
            if prob > 0.0:
                occurrences.setdefault(word, []).append(start)
    equivalent: dict[str, float] = {}
    for word, word_starts in occurrences.items():
        survive = 1.0
        for group in _split_into_groups(word, word_starts):
            survive *= 1.0 - group_probability(string, group, mode)
        prob = 1.0 - survive
        if prob > 0.0:
            equivalent[word] = min(1.0, prob)
    return equivalent


def segment_match_probability(
    string: UncertainString,
    starts: Iterable[int],
    segment: UncertainString,
    mode: GroupMode = "exact",
) -> float:
    """``alpha_x``: probability that some selected substring matches ``S^x``.

    ``alpha_x = sum_w p_r(w) * Pr(w = S^x)`` over the equivalent set — the
    corrected computation of Section 3.2 (0.68 on the paper's example, where
    the naive sum gives 1.32).
    """
    equivalent = equivalent_substring_set(string, starts, len(segment), mode)
    alpha = 0.0
    for word, prob in equivalent.items():
        segment_prob = segment.instance_probability(word)
        if segment_prob > 0.0:
            alpha += prob * segment_prob
    return min(1.0, alpha)
