"""Frequency-distance filtering for uncertain strings (Section 5).

Two bounds are derived from per-character occurrence-count distributions:

* **Lemma 6** — a deterministic lower bound on ``fd(R, S)`` (and hence on
  the edit distance of *every* joint world): prune when it exceeds ``k``.
* **Theorem 3** — a one-sided-Chebyshev upper bound on
  ``Pr(fd(R, S) <= k) >= Pr(ed(R, S) <= k)`` built from ``E[pD]`` and
  ``E[nD]``.

The count of character ``c_i`` in ``S`` is ``fS_i = fS_i^c + X`` where ``X``
is Poisson-binomial over the uncertain positions containing ``c_i``. The
paper's S1–S4 prefix arrays make each ``E[nD_i]`` term O(min(fS_i^u,
fR_i^u)) after O(fS_i^u ^ 2) preprocessing per string — preprocessing that
the join stores alongside its index.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

from repro.filters.base import FilterDecision, FilterVerdict
from repro.uncertain.string import UncertainString


def poisson_binomial_pmf(probs: Sequence[float]) -> list[float]:
    """PMF of the sum of independent Bernoulli(p_i) variables.

    Standard O(n^2) dynamic program; ``probs`` are the per-position
    probabilities of the character appearing at its uncertain positions.
    """
    pmf = [1.0]
    for p in probs:
        if not 0.0 <= p <= 1.0 + 1e-12:
            raise ValueError(f"Bernoulli probability {p!r} outside [0, 1]")
        p = min(p, 1.0)
        nxt = [0.0] * (len(pmf) + 1)
        for count, mass in enumerate(pmf):
            nxt[count] += mass * (1.0 - p)
            nxt[count + 1] += mass * p
        pmf = nxt
    return pmf


@dataclass(frozen=True)
class CharCountDistribution:
    """Distribution of one character's occurrence count in one string.

    ``certain`` (= ``f^c``) is the count contributed by deterministic
    positions; ``pmf[x] = Pr(count = certain + x)`` over the uncertain
    positions, ``x in [0, f^u]``. The paper's S1–S4 arrays are exposed as
    cached properties.
    """

    certain: int
    pmf: tuple[float, ...]

    @property
    def uncertain(self) -> int:
        """``f^u``: number of uncertain positions that may hold the char."""
        return len(self.pmf) - 1

    @property
    def total(self) -> int:
        """``f^t = f^c + f^u``: maximum possible occurrence count."""
        return self.certain + self.uncertain

    @cached_property
    def mean(self) -> float:
        """``E[count]``."""
        return self.certain + sum(x * p for x, p in enumerate(self.pmf))

    # S1 is ``pmf`` itself.

    @cached_property
    def survival(self) -> tuple[float, ...]:
        """S2: ``S2[x] = Pr(count >= certain + x)``."""
        out = [0.0] * (len(self.pmf) + 1)
        for x in range(len(self.pmf) - 1, -1, -1):
            out[x] = out[x + 1] + self.pmf[x]
        return tuple(out[:-1])

    @cached_property
    def scaled_tail(self) -> tuple[float, ...]:
        """S3: ``S3[x] = sum_{y >= x} (y - x + 1) * pmf[y]``.

        Equivalently ``E[(count - (certain + x - 1))^+]``, the building
        block for expected positive/negative frequency distances.
        """
        out = [0.0] * (len(self.pmf) + 1)
        running = 0.0
        for x in range(len(self.pmf) - 1, -1, -1):
            running += self.pmf[x]
            out[x] = out[x + 1] + running
        return tuple(out[:-1])

    @cached_property
    def scaled_head(self) -> tuple[float, ...]:
        """S4: ``S4[x] = sum_{y <= x} (x - y) * pmf[y]``."""
        # Incremental identity: S4[x] = S4[x-1] + Pr(count <= certain + x - 1).
        out: list[float] = []
        running_mass = 0.0
        for x, p in enumerate(self.pmf):
            out.append(0.0 if x == 0 else out[-1] + running_mass)
            running_mass += p
        return tuple(out)

    def expected_excess_over(self, threshold: int) -> float:
        """``E[(count - threshold)^+]`` for an absolute ``threshold``.

        Used as ``T(x)`` in the E[nD] computation with
        ``threshold = x`` (count of the other string).
        """
        t = threshold + 1 - self.certain
        if t <= 0:
            return self.scaled_tail[0] + (-t) * self.survival[0]
        if t > self.uncertain:
            return 0.0
        return self.scaled_tail[t]


class FrequencyProfile:
    """Per-character count distributions for one uncertain string.

    Built once per string (O(|S| * support + sum f^u ^2)) and kept as part
    of the join's index state, exactly as the paper prescribes at the end
    of Section 5.
    """

    __slots__ = (
        "length",
        "_by_char",
        "_chars",
        "_sorted_chars",
        "_plane_cache",
        "_native_pack",
    )

    _EMPTY = CharCountDistribution(certain=0, pmf=(1.0,))

    def __init__(self, string: UncertainString) -> None:
        self.length = len(string)
        by_char: dict[str, CharCountDistribution] = {}
        for char in sorted(string.support_alphabet()):
            certain = sum(
                1
                for pos in string
                if pos.is_certain and pos.top == char
            )
            probs = string.char_position_probs(char)
            by_char[char] = CharCountDistribution(
                certain=certain, pmf=tuple(poisson_binomial_pmf(probs))
            )
        self._by_char = by_char
        # Support is queried twice per pair by fd_lower_bound and again
        # by E[nD]/E[pD]; cache both views once instead of allocating a
        # fresh set per call. Insertion order above is sorted already.
        self._chars = frozenset(by_char)
        self._sorted_chars = tuple(by_char)
        # Opaque per-profile scratch for the optional numpy backend
        # (repro.filters.batch_numpy): flattened count-distribution
        # arrays, built lazily on first batched use. Always None on the
        # pure-python paths.
        self._plane_cache: object | None = None
        # Opaque per-profile scratch for the optional native backend
        # (repro.filters._native): the C-marshalled S1/S2/S3 planes,
        # built lazily on first native use. Always None otherwise.
        self._native_pack: object | None = None

    def chars(self) -> frozenset[str]:
        """Characters with positive occurrence probability.

        The same cached frozenset on every call — callers must not rely
        on getting a private mutable copy.
        """
        return self._chars

    @property
    def sorted_chars(self) -> tuple[str, ...]:
        """The support in ascending order (merge-iteration layout)."""
        return self._sorted_chars

    def distribution(self, char: str) -> CharCountDistribution:
        """The count distribution of ``char`` (a point mass at 0 if absent)."""
        return self._by_char.get(char, self._EMPTY)


def merged_support(
    left: FrequencyProfile, right: FrequencyProfile
) -> tuple[str, ...]:
    """Ascending union of two support alphabets, no set construction.

    A linear merge over the cached sorted tuples; this replaces the
    per-pair ``left.chars() | right.chars()`` unions that used to run
    up to three times per candidate pair (Lemma 6 + both E[nD] sides).
    """
    a, b = left._sorted_chars, right._sorted_chars
    if a == b:
        return a
    i = j = 0
    n, m = len(a), len(b)
    out: list[str] = []
    while i < n and j < m:
        x, y = a[i], b[j]
        if x == y:
            out.append(x)
            i += 1
            j += 1
        elif x < y:
            out.append(x)
            i += 1
        else:
            out.append(y)
            j += 1
    if i < n:
        out.extend(a[i:])
    elif j < m:
        out.extend(b[j:])
    return tuple(out)


def fd_lower_bound(
    left: FrequencyProfile,
    right: FrequencyProfile,
    support: Sequence[str] | None = None,
) -> int:
    """Lemma 6: a lower bound on ``fd(R, S)`` valid in every joint world.

    ``pD`` accumulates characters that ``R`` surely has more of than ``S``
    possibly can, ``nD`` the reverse; the bound is ``max(pD, nD)``.
    ``support`` lets callers share one precomputed
    :func:`merged_support` across the pair's filter bounds.
    """
    if support is None:
        support = merged_support(left, right)
    positive = 0
    negative = 0
    for char in support:
        l_dist = left.distribution(char)
        r_dist = right.distribution(char)
        if r_dist.total < l_dist.certain:
            positive += l_dist.certain - r_dist.total
        if l_dist.total < r_dist.certain:
            negative += r_dist.certain - l_dist.total
    return max(positive, negative)


def expected_negative(
    left: FrequencyProfile,
    right: FrequencyProfile,
    support: Sequence[str] | None = None,
) -> float:
    """``E[nD] = sum_c E[(fS_c - fR_c)^+]`` with R=left, S=right.

    Per character this walks the (usually tiny) support of ``fR_c`` and
    reads ``E[(fS_c - x)^+]`` from the S2/S3 arrays in O(1).
    Accumulation runs in ascending character order (deterministic,
    unlike the old set-union iteration).
    """
    if support is None:
        support = merged_support(left, right)
    total = 0.0
    for char in support:
        l_dist = left.distribution(char)
        r_dist = right.distribution(char)
        if r_dist.total == 0:
            continue
        contribution = 0.0
        for offset, mass in enumerate(l_dist.pmf):
            if mass == 0.0:
                continue
            x = l_dist.certain + offset
            contribution += mass * r_dist.expected_excess_over(x)
        total += contribution
    return total


def expected_positive_negative(
    left: FrequencyProfile,
    right: FrequencyProfile,
    support: Sequence[str] | None = None,
) -> tuple[float, float]:
    """``(E[pD], E[nD])`` between R=left and S=right."""
    if support is None:
        support = merged_support(left, right)
    return (
        expected_negative(right, left, support),
        expected_negative(left, right, support),
    )


def chebyshev_upper_bound(
    left: FrequencyProfile,
    right: FrequencyProfile,
    k: int,
    expectations: tuple[float, float] | None = None,
) -> float:
    """Theorem 3: upper bound on ``Pr(ed(R, S) <= k)`` via frequency distance.

    ``Pr(ed <= k) <= Pr(fd <= k) <= B^2 / (B^2 + (A - k)^2)`` whenever
    ``A > k`` (one-sided Chebyshev); otherwise the bound is vacuous (1.0).
    ``expectations`` lets callers reuse a precomputed ``(E[pD], E[nD])``.
    """
    if expectations is None:
        expectations = expected_positive_negative(left, right)
    expected_pd, expected_nd = expectations
    length_gap = abs(left.length - right.length)
    a = length_gap / 2.0 + (expected_pd + expected_nd) / 2.0
    if a <= k:
        return 1.0
    b_squared = (
        (left.length - right.length) ** 2 / 2.0
        + length_gap * (expected_pd + expected_nd) / 2.0
        + min(left.length * expected_nd, right.length * expected_pd)
        - a * a
    )
    if b_squared <= 0.0:
        return 0.0
    return b_squared / (b_squared + (a - k) ** 2)


def frequency_bounds(
    left: FrequencyProfile,
    right: FrequencyProfile,
    k: int,
) -> tuple[int, float | None]:
    """``(Lemma 6 lower bound, Theorem 3 upper bound)`` for one pair.

    The scalar reference entry point shared by the kernel backends
    (:mod:`repro.core.backends`): one merged-support walk feeds Lemma 6
    and both expectation sides, exactly like
    :meth:`FrequencyDistanceFilter.decide` — including its
    short-circuit: on a Lemma 6 reject (``lower > k``) the Theorem 3
    bound is never computed and ``None`` is returned in its place.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    support = merged_support(left, right)
    lower_fd = fd_lower_bound(left, right, support)
    if lower_fd > k:
        return lower_fd, None
    upper = chebyshev_upper_bound(
        left,
        right,
        k,
        expectations=expected_positive_negative(left, right, support),
    )
    return lower_fd, upper


def frequency_bounds_batch(
    left: FrequencyProfile,
    rights: Sequence[FrequencyProfile],
    k: int,
) -> list[tuple[int, float]]:
    """``(Lemma 6 lower bound, Theorem 3 upper bound)`` per candidate.

    The pure-python reference batch entry point for one probe profile
    against a block of candidate profiles: per pair one merged-support
    walk feeds Lemma 6 and both expectation sides, exactly like
    :meth:`FrequencyDistanceFilter.decide` (the upper bound is computed
    unconditionally here; ``decide`` merely short-circuits it after a
    Lemma 6 reject, which cannot change any verdict). Vectorized
    backends must reproduce these values bit-for-bit.
    """
    rows: list[tuple[int, float]] = []
    for right in rights:
        support = merged_support(left, right)
        lower_fd = fd_lower_bound(left, right, support)
        upper = chebyshev_upper_bound(
            left,
            right,
            k,
            expectations=expected_positive_negative(left, right, support),
        )
        rows.append((lower_fd, upper))
    return rows


class FrequencyDistanceFilter:
    """Lemma 6 + Theorem 3 packaged as a pair filter.

    Profiles may be passed pre-built (the join caches them); otherwise they
    are computed on the fly.
    """

    def __init__(self, k: int) -> None:
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        self.k = k

    def profile(self, string: UncertainString) -> FrequencyProfile:
        """Build (or rebuild) the per-string preprocessing."""
        return FrequencyProfile(string)

    def decide(
        self,
        left: UncertainString | FrequencyProfile,
        right: UncertainString | FrequencyProfile,
        tau: float,
    ) -> FilterDecision:
        """Reject if Lemma 6 exceeds ``k`` or Theorem 3's bound is ``<= tau``."""
        left_profile = left if isinstance(left, FrequencyProfile) else FrequencyProfile(left)
        right_profile = (
            right if isinstance(right, FrequencyProfile) else FrequencyProfile(right)
        )
        # One merged-support walk shared by Lemma 6 and both E[·] sides.
        support = merged_support(left_profile, right_profile)
        lower_fd = fd_lower_bound(left_profile, right_profile, support)
        if lower_fd > self.k:
            return FilterDecision(
                FilterVerdict.REJECT,
                upper=0.0,
                reason=f"Lemma 6 frequency distance >= {lower_fd} > k",
            )
        upper = chebyshev_upper_bound(
            left_profile,
            right_profile,
            self.k,
            expectations=expected_positive_negative(
                left_profile, right_profile, support
            ),
        )
        if upper <= tau:
            return FilterDecision(
                FilterVerdict.REJECT,
                upper=upper,
                reason=f"Theorem 3 upper bound {upper:.6g} <= tau",
            )
        return FilterDecision(FilterVerdict.UNDECIDED, upper=upper)
